#!/usr/bin/env python3
"""The wearIT@work firefighter scenario (the paper's future work, §7).

Three firefighters wear physiological sensors during a 10-minute rescue
operation; one encounters a severe stress episode.  The Ambient
Recommender System maps signals → emotional context → operational-fitness
advice for the commander.

Run with::

    python examples/firefighter_monitor.py
"""

from repro.physio import CommanderAdvisor, StressEpisode, generate_stream


def main() -> None:
    operation_seconds = 600
    crews = {
        1: [],  # steady
        2: [StressEpisode(180, 420, 0.95)],  # trapped in a flashover
        3: [StressEpisode(300, 380, 0.5)],  # brief strain
    }
    advisor = CommanderAdvisor()

    print("=== commander console: rescue operation, 10 minutes ===\n")
    streams = {
        fid: generate_stream(operation_seconds, episodes, firefighter_id=fid)
        for fid, episodes in crews.items()
    }
    assessments = {
        fid: advisor.assess_stream(fid, stream)
        for fid, stream in streams.items()
    }

    # Minute-by-minute board.
    print("minute | " + " | ".join(f"firefighter {fid}" for fid in crews))
    print("-------+" + "+".join(["-" * 15] * len(crews)))
    for minute in range(1, operation_seconds // 60 + 1):
        cells = []
        for fid in crews:
            window = [
                a for a in assessments[fid] if a.window_end <= minute * 60
            ]
            if window:
                latest = window[-1]
                cells.append(f"{latest.status:>8} {latest.fitness:.2f}")
            else:
                cells.append(" " * 13)
        print(f"  {minute:4d} | " + " | ".join(c.center(15) for c in cells))

    print("\n=== alerts ===")
    any_alert = False
    for fid in crews:
        for assessment in assessments[fid]:
            if assessment.alert:
                any_alert = True
                print(
                    f"t={assessment.window_end:5.0f}s  {assessment.alert}  "
                    f"(dominant: {', '.join(assessment.dominant_emotions)})"
                )
    if not any_alert:
        print("(none)")

    print("\n=== final emotional states ===")
    for fid in crews:
        state = advisor.states[fid]
        top = ", ".join(f"{n} {v:.2f}" for n, v in state.top(3) if v > 0.05)
        print(f"firefighter {fid}: mood {state.mood():+.2f}, top: {top or '(calm)'}")


if __name__ == "__main__":
    main()
