#!/usr/bin/env python3
"""Quickstart: build SPA, run the campaign plan, print the Fig. 6 numbers.

Run with::

    python examples/quickstart.py
"""

from repro import EngineConfig, SimulatedWorld, SmartPredictionAssistant
from repro.campaigns.reporting import format_table


def main() -> None:
    # 1. A simulated world: population + course catalog + behaviour model.
    #    This stands in for emagister.com (3.16M users in the paper; scale
    #    is a parameter here).
    world = SimulatedWorld.generate(n_users=2_000, n_courses=60, seed=7)

    # 2. The Smart Prediction Assistant: the five-agent platform of Fig. 3.
    spa = SmartPredictionAssistant(world, EngineConfig(seed=7))
    for line in spa.architecture():
        print(line)
    print()

    # 3. Bootstrap: register socio-demographics, ingest the organic
    #    browsing LifeLog, collect first Gradual EIT answers.
    spa.bootstrap()

    # 4. Run the paper's plan: warm-ups, then 8 push + 2 newsletters.
    results = spa.run_default_plan(n_warmups=2)

    # 5. Reports: the Fig. 6(b) table ...
    summary = spa.summary(results)
    print(format_table(summary.table_rows()))
    print(
        f"\naverage performance: {summary.average_performance:.1%} "
        f"(paper: {summary.paper_average_performance:.0%})"
    )

    # ... and the Fig. 6(a) cumulative redemption curve.
    print(f"impacts captured at 40% of action: {spa.redemption_at(results, 0.4):.1%}")
    print()
    print(spa.redemption_chart(results))


if __name__ == "__main__":
    main()
