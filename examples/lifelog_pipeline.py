#!/usr/bin/env python3
"""The raw LifeLog ingest path: weblog text → agents → features.

Demonstrates the substrate stack of Section 4/5.1: synthetic combined-log-
format weblogs are written to disk, the self-replicating LifeLogs
Pre-processor Agent parses them into the segmented event store, sessions
are cut, and per-user behavioural features are distilled.

Run with::

    python examples/lifelog_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.agents.lifelog_agent import LifeLogPreprocessorAgent
from repro.agents.messages import Message
from repro.agents.runtime import Agent, AgentRuntime
from repro.datagen import BehaviorModel, CourseCatalog, Population
from repro.datagen.weblog_gen import generate_population_weblog
from repro.lifelog.preprocess import LifeLogPreprocessor
from repro.lifelog.sessionizer import session_stats, sessionize
from repro.lifelog.store import EventLog


class Collector(Agent):
    def __init__(self, name):
        super().__init__(name)
        self.replies = []

    def handle(self, message, runtime):
        self.replies.append(message)
        return []


def main() -> None:
    population = Population.generate(400, seed=7)
    catalog = CourseCatalog.generate(60, seed=7)
    model = BehaviorModel(population, catalog, seed=7)

    with tempfile.TemporaryDirectory() as tmp:
        weblog_path = Path(tmp) / "access.log"
        lines_written = generate_population_weblog(model, population, weblog_path)
        size_kb = weblog_path.stat().st_size / 1024
        print(f"synthetic weblog: {lines_written} lines, {size_kb:.0f} KiB "
              f"(paper: ~50 GB/month at 3.16M users)")

        # -- agent-based ingest with proactive replication ----------------
        store = EventLog(segment_rows=2_000)
        runtime = AgentRuntime()
        runtime.register(
            LifeLogPreprocessorAgent("lifelog", store, replication_threshold=1_000)
        )
        runtime.register(Collector("operator"))
        lines = weblog_path.read_text().splitlines()
        runtime.send(Message("operator", "lifelog", "lifelog.ingest",
                             {"lines": lines}))
        runtime.run_until_idle()
        replicas = [n for n in runtime.agent_names() if n.startswith("lifelog.r")]
        print(f"ingested {len(store)} events into {store.segment_count} segments "
              f"using {len(replicas)} spawned replicas")

        # -- sessionization ------------------------------------------------
        events = list(store.events())
        sessions = sessionize(events)
        stats = session_stats(sessions)
        print(
            f"sessions: {stats['n_sessions']:.0f} across "
            f"{stats['n_users']:.0f} users, "
            f"mean {stats['mean_events']:.1f} events / "
            f"{stats['mean_duration']:.0f}s"
        )

        # -- feature distillation ----------------------------------------
        preprocessor = LifeLogPreprocessor()
        features = preprocessor.extract_all(events)
        matrix, user_ids = preprocessor.feature_matrix(features)
        print(f"feature matrix: {matrix.shape[0]} users × {matrix.shape[1]} features")
        busiest = max(features.values(), key=lambda f: f.n_sessions)
        print(
            f"busiest user {busiest.user_id}: {busiest.n_sessions} sessions, "
            f"{busiest.useful_impacts} useful impacts"
        )


if __name__ == "__main__":
    main()
