#!/usr/bin/env python3
"""Emotion-context-aware CF on a synthetic CoMoDa-style dataset.

Compares classical recommenders against contextual pre/post-filtering
where the context is the viewer's emotional state — the paper's thesis
transplanted to the rating-prediction task (experiment A5).

Run with::

    python examples/emotion_aware_movies.py
"""

import numpy as np

from repro.cf import (
    ContextualPostFilter,
    ContextualPreFilter,
    FunkSVD,
    ItemKNN,
    PopularityRecommender,
    RatingMatrix,
    UserKNN,
    evaluate_rmse_mae,
)
from repro.cf.context import emotion_context, mood_context
from repro.datagen.comoda import generate_comoda


def main() -> None:
    dataset = generate_comoda(
        n_users=300, n_items=120, ratings_per_user=30, seed=11
    )
    train, test = dataset.split(0.25, seed=11)
    matrix = RatingMatrix([(r.user_id, r.item_id, r.rating) for r in train])
    print(
        f"synthetic CoMoDa: {len(dataset.ratings)} ratings, "
        f"{dataset.n_users} users, {dataset.n_items} movies, "
        f"density {matrix.density():.1%}\n"
    )

    rows = []
    for name, model in [
        ("popularity", PopularityRecommender()),
        ("user-kNN", UserKNN(k=25)),
        ("item-kNN", ItemKNN(k=25)),
        ("FunkSVD", FunkSVD(rank=12, epochs=25)),
    ]:
        model.fit(matrix)
        rmse, mae = evaluate_rmse_mae(
            lambda u, i, c, m=model: m.predict(u, i), test, mood_context
        )
        rows.append((name, rmse, mae))

    def factory():
        return FunkSVD(rank=12, epochs=25)
    pre = ContextualPreFilter(factory, context_key=mood_context).fit(train)
    rmse, mae = evaluate_rmse_mae(pre.predict, test, mood_context)
    rows.append(("FunkSVD + mood pre-filter", rmse, mae))

    post_mood = ContextualPostFilter(
        factory, dataset.item_genres, context_key=mood_context
    ).fit(train)
    rmse, mae = evaluate_rmse_mae(post_mood.predict, test, mood_context)
    rows.append(("FunkSVD + mood post-filter", rmse, mae))

    post_emotion = ContextualPostFilter(
        factory, dataset.item_genres, context_key=emotion_context
    ).fit(train)
    rmse, mae = evaluate_rmse_mae(post_emotion.predict, test, emotion_context)
    rows.append(("FunkSVD + emotion post-filter", rmse, mae))

    print(f"{'model':32s} {'RMSE':>7s} {'MAE':>7s}")
    print("-" * 48)
    best = min(r[1] for r in rows)
    for name, rmse, mae in rows:
        marker = "  ◀ best" if np.isclose(rmse, best) else ""
        print(f"{name:32s} {rmse:7.3f} {mae:7.3f}{marker}")

    plain = [r for r in rows if r[0] == "FunkSVD"][0][1]
    context_best = min(r[1] for r in rows if "filter" in r[0])
    print(
        f"\nemotional context reduces RMSE by "
        f"{(plain - context_best) / plain:.1%} over the same model without it."
    )


if __name__ == "__main__":
    main()
