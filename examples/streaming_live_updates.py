#!/usr/bin/env python3
"""Live recommendation drift from streamed LifeLog traffic.

The streaming subsystem run end to end: a generated day of organic
browsing traffic replays through the event bus into hash-sharded
consumer workers, which apply incremental reward/punish updates to the
SUMs while the recommendation service keeps serving — from versioned
snapshots that go fresh the moment each update batch commits.

Watch three heavy browsers' top-3 course rankings drift as their morning
and afternoon traffic lands, with the served ``sum_version`` telling you
exactly how many update batches each response reflects.

Run with::

    python examples/streaming_live_updates.py
"""

from collections import Counter

from repro import SimulatedWorld, SmartPredictionAssistant
from repro.serving import RecommendationRequest
from repro.streaming import ReplayDriver


def rankings(service, spa, user_ids, k=3):
    out = {}
    for uid in user_ids:
        response = service.recommend(RecommendationRequest(
            user_id=uid, items=spa.world.catalog.course_ids(),
            k=k, scorer="appeal",
        ))
        out[uid] = (response.items, response.sum_version)
    return out


def show(label, ranked):
    print(f"\n{label}")
    for uid, (items, version) in ranked.items():
        print(f"  user {uid:>4}  top-3 {items}  (sum_version={version})")


def main() -> None:
    world = SimulatedWorld.generate(n_users=2_000, n_courses=60, seed=7)
    spa = SmartPredictionAssistant(world)
    spa.engine.register_population()

    # -- one generated day of organic LifeLog traffic --------------------
    day = []
    for user in world.population:
        day.extend(world.behavior.generate_browsing_events(
            user, start_ts=1_141_000_000.0, horizon_days=1.0,
        ))
    day.sort(key=lambda e: e.timestamp)
    heaviest = [uid for uid, __ in
                Counter(e.user_id for e in day).most_common(3)]
    print(f"generated day: {len(day)} events from "
          f"{len({e.user_id for e in day})} users; watching {heaviest}")

    # -- the live loop: sharded updates + versioned serving --------------
    updater = spa.streaming_updater(n_shards=4)
    service = spa.live_service(updater)

    before = rankings(service, spa, heaviest)
    show("before any traffic (all versions 0, multipliers neutral):", before)

    morning, afternoon = day[: len(day) // 2], day[len(day) // 2:]
    with updater:
        driver = ReplayDriver(updater, rate=2_000.0)
        driver.replay(morning)
        updater.drain()
        midday = rankings(service, spa, heaviest)
        show(f"after the morning ({len(morning)} events):", midday)

        driver.replay(afternoon)
        updater.drain()
        evening = rankings(service, spa, heaviest)
        show(f"after the full day ({len(day)} events):", evening)

    drifted = [uid for uid in heaviest if evening[uid][0] != before[uid][0]]
    stats = updater.stats()
    print(f"\nrankings drifted for {len(drifted)}/{len(heaviest)} watched "
          f"users: {drifted}")
    print(f"stream stats: {stats.applied} events applied in {stats.batches} "
          f"batches, {stats.ops_applied} SUM ops, "
          f"{stats.flushed_events} events persisted write-behind "
          f"({stats.flush_count} flushes), {stats.redelivered} redeliveries")
    print(f"event log now holds {len(spa.engine.event_log)} events in "
          f"{spa.engine.event_log.segment_count} segments")


if __name__ == "__main__":
    main()
