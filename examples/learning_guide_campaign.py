#!/usr/bin/env python3
"""The Intelligent Learning Guide business case (Section 5), end to end.

Reproduces the full experiment of the paper's evaluation — ten campaigns
over a synthetic emagister.com — and prints every quantity Section 5.4
reports, side by side with the paper's numbers.

Run with::

    python examples/learning_guide_campaign.py [n_users]
"""

import sys

from repro.campaigns.redemption import ascii_curve
from repro.campaigns.reporting import format_table
from repro.experiments import run_business_case


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 4_000
    print(f"running the ten-campaign business case on {n_users} users ...")
    run = run_business_case(n_users=n_users, seed=7, n_warmups=3)

    print("\n=== Fig. 6(b): predictive scores per campaign ===")
    print(format_table(run.summary.table_rows()))
    print(
        f"\naverage performance : {run.summary.average_performance:.1%}"
        f"   (paper: 21%)"
    )
    print(
        "projected impacts at paper scale (1,340,432 targets): "
        f"{run.summary.projected_total_impacts_paper_scale:,}"
        "   (paper: 282,938)"
    )

    print("\n=== Fig. 6(a): cumulative redemption curve ===")
    fractions, captured = run.gain_curve
    print(ascii_curve(fractions, captured))
    print(f"\nimpacts captured at 40% of commercial action: {run.gain_at_40:.1%}"
          "   (paper: >76%)")

    base = run.baseline_summary.average_performance
    print(
        f"\nstandard-message baseline rate : {base:.1%}"
        f"\npersonalized (SPA) rate        : {run.summary.average_performance:.1%}"
        f"\nredemption improvement         : {run.improvement:+.0%}   (paper: +90%)"
    )
    print(f"\npropensity ranking quality: pooled AUC {run.pooled_auc():.3f}, "
          f"mean per-campaign AUC "
          f"{sum(run.per_campaign_auc()) / len(run.per_campaign_auc()):.3f}")


if __name__ == "__main__":
    main()
