"""Gap-based sessionization of click-streams.

Implicit feedback in the paper "is acquired via click-stream analysis"
(Section 5).  Sessions are the unit the analysis runs over: consecutive
events of one user with inter-event gaps below a timeout (the industry-
standard 30 minutes by default).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lifelog.events import Event

DEFAULT_TIMEOUT_SECONDS = 30.0 * 60.0


@dataclass
class Session:
    """One user session: a maximal gap-bounded run of events."""

    user_id: int
    events: list[Event] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.events:
            raise ValueError("session needs at least one event")
        for event in self.events:
            if event.user_id != self.user_id:
                raise ValueError(
                    f"event user {event.user_id} in session of {self.user_id}"
                )

    @property
    def start(self) -> float:
        """Timestamp of the first event."""
        return self.events[0].timestamp

    @property
    def end(self) -> float:
        """Timestamp of the last event."""
        return self.events[-1].timestamp

    @property
    def duration(self) -> float:
        """Seconds between first and last event (0 for singletons)."""
        return self.end - self.start

    def __len__(self) -> int:
        return len(self.events)

    def action_counts(self) -> dict[str, int]:
        """Event counts per action name within the session."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.action] = counts.get(event.action, 0) + 1
        return counts


def sessionize(
    events: list[Event],
    timeout: float = DEFAULT_TIMEOUT_SECONDS,
) -> list[Session]:
    """Split events into per-user sessions at gaps larger than ``timeout``.

    Events may arrive unsorted and interleaved across users; the result is
    ordered by (user, session start).  Invariants (property-tested):

    * every event lands in exactly one session;
    * within a session, consecutive gaps are <= ``timeout``;
    * across consecutive sessions of one user, the gap is > ``timeout``.
    """
    if timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    by_user: dict[int, list[Event]] = {}
    for event in events:
        by_user.setdefault(event.user_id, []).append(event)

    sessions: list[Session] = []
    for user_id in sorted(by_user):
        stream = sorted(by_user[user_id], key=lambda e: (e.timestamp, e.action))
        current: list[Event] = [stream[0]]
        for event in stream[1:]:
            if event.timestamp - current[-1].timestamp > timeout:
                sessions.append(Session(user_id, current))
                current = [event]
            else:
                current.append(event)
        sessions.append(Session(user_id, current))
    return sessions


def session_stats(sessions: list[Session]) -> dict[str, float]:
    """Aggregate statistics: counts, mean length, mean duration."""
    if not sessions:
        return {
            "n_sessions": 0.0,
            "mean_events": 0.0,
            "mean_duration": 0.0,
            "n_users": 0.0,
        }
    n = len(sessions)
    return {
        "n_sessions": float(n),
        "mean_events": sum(len(s) for s in sessions) / n,
        "mean_duration": sum(s.duration for s in sessions) / n,
        "n_users": float(len({s.user_id for s in sessions})),
    }
