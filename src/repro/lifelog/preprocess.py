"""LifeLog cleaning and per-user feature extraction.

This is the computational content of the LifeLogs Pre-processor Agent
(Section 4, component 1): "Its function is to pre-process raw data in
on-line and off-line environments" — deduplicate, drop malformed records,
and distil the raw stream into per-user behavioural features for the
Smart Component.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lifelog.events import ActionCategory, Event, USEFUL_IMPACT_CATEGORIES
from repro.lifelog.sessionizer import DEFAULT_TIMEOUT_SECONDS, sessionize

#: Category order used for feature vector layout.
CATEGORY_ORDER: tuple[ActionCategory, ...] = tuple(ActionCategory)


@dataclass(frozen=True)
class UserFeatures:
    """Distilled behavioural features of one user.

    All counts are raw; :meth:`as_vector` applies a log1p squash so heavy
    users do not dominate linear models.
    """

    user_id: int
    category_counts: dict[str, int] = field(default_factory=dict)
    n_sessions: int = 0
    mean_session_events: float = 0.0
    mean_session_duration: float = 0.0
    recency: float = 0.0  # seconds since last event, relative to `now`
    useful_impacts: int = 0

    @staticmethod
    def feature_names() -> list[str]:
        """Column names of :meth:`as_vector`, stable across versions."""
        names = [f"log1p_count[{c.value}]" for c in CATEGORY_ORDER]
        names += [
            "log1p_n_sessions",
            "mean_session_events",
            "log1p_mean_session_duration",
            "log1p_recency_hours",
            "log1p_useful_impacts",
        ]
        return names

    def as_vector(self) -> np.ndarray:
        """Numeric feature vector (see :meth:`feature_names`)."""
        counts = np.asarray(
            [self.category_counts.get(c.value, 0) for c in CATEGORY_ORDER],
            dtype=np.float64,
        )
        extras = np.asarray(
            [
                np.log1p(self.n_sessions),
                self.mean_session_events,
                np.log1p(max(self.mean_session_duration, 0.0)),
                np.log1p(max(self.recency, 0.0) / 3600.0),
                np.log1p(self.useful_impacts),
            ],
            dtype=np.float64,
        )
        return np.concatenate([np.log1p(counts), extras])


class LifeLogPreprocessor:
    """Cleaning + distillation over raw event lists."""

    def __init__(self, session_timeout: float = DEFAULT_TIMEOUT_SECONDS) -> None:
        if session_timeout <= 0:
            raise ValueError(f"session_timeout must be positive, got {session_timeout}")
        self.session_timeout = session_timeout

    # -- cleaning ------------------------------------------------------------

    def clean(self, events: list[Event]) -> tuple[list[Event], dict[str, int]]:
        """Deduplicate and drop invalid events.

        Returns ``(clean_events, drop_counts)`` where ``drop_counts``
        records how many events each rule removed (the pre-processor's
        audit trail).
        """
        drops = {"duplicate": 0, "negative_ts": 0}
        seen: set[tuple[float, int, str]] = set()
        cleaned: list[Event] = []
        for event in sorted(events, key=lambda e: (e.timestamp, e.user_id, e.action)):
            key = (event.timestamp, event.user_id, event.action)
            if key in seen:
                drops["duplicate"] += 1
                continue
            seen.add(key)
            cleaned.append(event)
        return cleaned, drops

    # -- distillation -----------------------------------------------------------

    def extract_user(
        self, user_id: int, events: list[Event], now: float | None = None
    ) -> UserFeatures:
        """Features for one user from their (cleaned) events."""
        own = [e for e in events if e.user_id == user_id]
        if not own:
            return UserFeatures(user_id=user_id)
        own.sort(key=lambda e: e.timestamp)
        if now is None:
            now = own[-1].timestamp
        category_counts: dict[str, int] = {}
        useful = 0
        for event in own:
            category_counts[event.category.value] = (
                category_counts.get(event.category.value, 0) + 1
            )
            if event.category in USEFUL_IMPACT_CATEGORIES:
                useful += 1
        sessions = sessionize(own, timeout=self.session_timeout)
        mean_events = sum(len(s) for s in sessions) / len(sessions)
        mean_duration = sum(s.duration for s in sessions) / len(sessions)
        return UserFeatures(
            user_id=user_id,
            category_counts=category_counts,
            n_sessions=len(sessions),
            mean_session_events=mean_events,
            mean_session_duration=mean_duration,
            recency=max(0.0, now - own[-1].timestamp),
            useful_impacts=useful,
        )

    def extract_all(
        self, events: list[Event], now: float | None = None
    ) -> dict[int, UserFeatures]:
        """Features for every user appearing in ``events``."""
        by_user: dict[int, list[Event]] = {}
        for event in events:
            by_user.setdefault(event.user_id, []).append(event)
        if now is None and events:
            now = max(e.timestamp for e in events)
        return {
            user_id: self.extract_user(user_id, user_events, now=now)
            for user_id, user_events in sorted(by_user.items())
        }

    def feature_matrix(
        self, features: dict[int, UserFeatures]
    ) -> tuple[np.ndarray, list[int]]:
        """Stack features into a matrix; returns ``(matrix, user_ids)``."""
        user_ids = sorted(features)
        if not user_ids:
            return np.zeros((0, len(UserFeatures.feature_names()))), []
        matrix = np.vstack([features[uid].as_vector() for uid in user_ids])
        return matrix, user_ids
