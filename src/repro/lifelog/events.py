"""The LifeLog event model.

Section 5.1: "The set of possible on-line user's actions on the web of
emagister.com was 984."  Actions are strings from a large vocabulary (the
generator in :mod:`repro.datagen.actions` builds the full 984); every
action belongs to one :class:`ActionCategory`, which is what the feature
extractor aggregates over.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any

from repro.db.schema import Column, ColumnType, Schema


class ActionCategory(enum.Enum):
    """Coarse families of on-line actions."""

    NAVIGATION = "navigation"          # views, searches, list browsing
    INFO_REQUEST = "info_request"      # course information requests
    ENROLLMENT = "enrollment"          # course sign-ups (transactions)
    RATING = "rating"                  # explicit feedback
    OPINION = "opinion"                # free-text opinions / reviews
    CAMPAIGN = "campaign"              # push/newsletter opens and clicks
    EIT_ANSWER = "eit_answer"          # Gradual EIT question answers
    ACCOUNT = "account"                # profile edits, logins

    @classmethod
    def from_value(cls, value: str) -> "ActionCategory":
        """Parse a category from its string value."""
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"unknown action category {value!r}; "
                f"have {[c.value for c in cls]}"
            ) from None


#: Categories that count as "transactions" in the paper's sense (§5.4):
#: "actions such as click streams, information requirement about training
#: courses, enrollments, opinions, etc."  We treat the *commercial* subset
#: — info requests, enrollments and opinions — as useful impacts.
USEFUL_IMPACT_CATEGORIES: frozenset[ActionCategory] = frozenset(
    {
        ActionCategory.INFO_REQUEST,
        ActionCategory.ENROLLMENT,
        ActionCategory.OPINION,
    }
)


@dataclass(frozen=True)
class Event:
    """One LifeLog event.

    Parameters
    ----------
    timestamp:
        Seconds since epoch (float; sub-second resolution allowed).
    user_id:
        The acting user.
    action:
        Fine-grained action name from the 984-action vocabulary.
    category:
        The action's :class:`ActionCategory`.
    domain:
        Interaction domain (e.g. ``"training"``); SUMs are cross-domain.
    payload:
        Small JSON-serializable details (course id, rating value, ...).
    """

    timestamp: float
    user_id: int
    action: str
    category: ActionCategory
    domain: str = "training"
    payload: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError(f"negative timestamp {self.timestamp}")
        if not self.action:
            raise ValueError("event needs an action name")

    def to_row(self) -> dict[str, Any]:
        """The event as a row of :data:`EVENT_SCHEMA`."""
        return {
            "ts": float(self.timestamp),
            "user_id": int(self.user_id),
            "action": self.action,
            "category": self.category.value,
            "domain": self.domain,
            "payload": json.dumps(self.payload, sort_keys=True),
        }

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "Event":
        """Inverse of :meth:`to_row`."""
        return cls(
            timestamp=float(row["ts"]),
            user_id=int(row["user_id"]),
            action=str(row["action"]),
            category=ActionCategory.from_value(str(row["category"])),
            domain=str(row["domain"]),
            payload=json.loads(row["payload"]) if row.get("payload") else {},
        )


#: Storage schema for LifeLog events in the :mod:`repro.db` engine.
EVENT_SCHEMA = Schema(
    [
        Column("ts", ColumnType.FLOAT64, "seconds since epoch"),
        Column("user_id", ColumnType.INT64, "acting user"),
        Column("action", ColumnType.STRING, "fine-grained action name"),
        Column("category", ColumnType.STRING, "ActionCategory value"),
        Column("domain", ColumnType.STRING, "interaction domain"),
        Column("payload", ColumnType.STRING, "JSON details"),
    ]
)
