"""Combined-log-format weblogs: the 50 GB/month source of Section 5.1.

emagister.com's raw web-usage data arrives as Apache "combined" access-log
lines.  The generator (:mod:`repro.datagen.weblog_gen`) emits lines in this
exact format and this module parses them back into LifeLog events, so the
ingest path the paper describes — raw weblog text → pre-processor → event
store — is exercised end to end.

URL conventions (synthetic but realistic)::

    /course/<id>/view            course page view          (navigation)
    /course/<id>/info            information request       (info_request)
    /course/<id>/enroll          enrolment                 (enrollment)
    /course/<id>/rate?value=<r>  explicit rating           (rating)
    /course/<id>/opinion         opinion posted            (opinion)
    /search?q=<terms>            catalogue search          (navigation)
    /category/<name>             category browsing         (navigation)
    /push/<campaign>/open        push communication opened (campaign)
    /newsletter/<campaign>/open  newsletter opened         (campaign)
    /eit/<qid>/answer?opt=<k>    Gradual EIT answer        (eit_answer)
    /account/<op>                profile/login             (account)

The authenticated-user field carries ``u<user_id>``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from datetime import datetime, timezone
from urllib.parse import parse_qs, urlsplit

from repro.lifelog.events import ActionCategory, Event

_LINE_RE = re.compile(
    r'^(?P<host>\S+) (?P<ident>\S+) (?P<user>\S+) '
    r'\[(?P<time>[^\]]+)\] '
    r'"(?P<method>[A-Z]+) (?P<path>\S+) (?P<protocol>[^"]+)" '
    r'(?P<status>\d{3}) (?P<size>\d+|-)'
    r'(?: "(?P<referer>[^"]*)" "(?P<agent>[^"]*)")?\s*$'
)

_TIME_FORMAT = "%d/%b/%Y:%H:%M:%S %z"


class WeblogParseError(ValueError):
    """Raised for lines that do not match the combined log format."""


@dataclass(frozen=True)
class WeblogRecord:
    """One parsed access-log line."""

    host: str
    user_id: int | None
    timestamp: float
    method: str
    path: str
    status: int
    size: int
    referer: str = ""
    agent: str = ""


def parse_line(line: str) -> WeblogRecord:
    """Parse one combined-log-format line.

    Raises :class:`WeblogParseError` on malformed lines (the pre-processor
    counts and skips them rather than aborting a 50 GB ingest).
    """
    match = _LINE_RE.match(line)
    if match is None:
        raise WeblogParseError(f"unparseable weblog line: {line[:120]!r}")
    fields = match.groupdict()
    user_field = fields["user"]
    user_id: int | None = None
    if user_field.startswith("u") and user_field[1:].isdigit():
        user_id = int(user_field[1:])
    try:
        timestamp = datetime.strptime(fields["time"], _TIME_FORMAT).timestamp()
    except ValueError as exc:
        raise WeblogParseError(f"bad timestamp {fields['time']!r}") from exc
    size_field = fields["size"]
    return WeblogRecord(
        host=fields["host"],
        user_id=user_id,
        timestamp=timestamp,
        method=fields["method"],
        path=fields["path"],
        status=int(fields["status"]),
        size=0 if size_field == "-" else int(size_field),
        referer=fields.get("referer") or "",
        agent=fields.get("agent") or "",
    )


#: path-prefix → (action template, category); ``{id}`` substitutes the
#: second path component.
_PATH_RULES: list[tuple[re.Pattern, str, ActionCategory]] = [
    (re.compile(r"^/course/(\d+)/view$"), "course_view", ActionCategory.NAVIGATION),
    (re.compile(r"^/course/(\d+)/info$"), "course_info", ActionCategory.INFO_REQUEST),
    (re.compile(r"^/course/(\d+)/enroll$"), "course_enroll", ActionCategory.ENROLLMENT),
    (re.compile(r"^/course/(\d+)/rate$"), "course_rate", ActionCategory.RATING),
    (re.compile(r"^/course/(\d+)/opinion$"), "course_opinion", ActionCategory.OPINION),
    (re.compile(r"^/search$"), "catalog_search", ActionCategory.NAVIGATION),
    (re.compile(r"^/category/([\w-]+)$"), "category_browse", ActionCategory.NAVIGATION),
    (re.compile(r"^/push/([\w-]+)/open$"), "push_open", ActionCategory.CAMPAIGN),
    (re.compile(r"^/push/([\w-]+)/click$"), "push_click", ActionCategory.CAMPAIGN),
    (re.compile(r"^/newsletter/([\w-]+)/open$"), "newsletter_open", ActionCategory.CAMPAIGN),
    (re.compile(r"^/newsletter/([\w-]+)/click$"), "newsletter_click", ActionCategory.CAMPAIGN),
    (re.compile(r"^/eit/([\w-]+)/answer$"), "eit_answer", ActionCategory.EIT_ANSWER),
    (re.compile(r"^/account/([\w-]+)$"), "account_op", ActionCategory.ACCOUNT),
]


def record_to_event(record: WeblogRecord) -> Event | None:
    """Map one parsed record to a LifeLog event.

    Returns ``None`` for records that carry no user id, failed requests
    (non-2xx/3xx) or paths outside the conventions — the cleaning the
    pre-processor agent performs on raw logs.
    """
    if record.user_id is None:
        return None
    if not 200 <= record.status < 400:
        return None
    parts = urlsplit(record.path)
    for pattern, action, category in _PATH_RULES:
        match = pattern.match(parts.path)
        if match is None:
            continue
        payload: dict = {}
        if match.groups():
            payload["target"] = match.group(1)
        query = parse_qs(parts.query)
        for key in ("value", "opt", "q"):
            if key in query:
                payload[key] = query[key][0]
        return Event(
            timestamp=record.timestamp,
            user_id=record.user_id,
            action=action,
            category=category,
            payload=payload,
        )
    return None


def records_to_events(records: list[WeblogRecord]) -> list[Event]:
    """Batch :func:`record_to_event`, dropping non-events."""
    events = []
    for record in records:
        event = record_to_event(record)
        if event is not None:
            events.append(event)
    return events


def event_to_line(event: Event, host: str = "10.0.0.1") -> str:
    """Render an event back to a combined-log-format line (the generator).

    Only events representable under the URL conventions are supported;
    unknown actions raise ``ValueError``.
    """
    target = str(event.payload.get("target", "0"))
    query = ""
    if event.action == "course_rate" and "value" in event.payload:
        query = f"?value={event.payload['value']}"
    elif event.action == "eit_answer" and "opt" in event.payload:
        query = f"?opt={event.payload['opt']}"
    elif event.action == "catalog_search" and "q" in event.payload:
        query = f"?q={event.payload['q']}"
    paths = {
        "course_view": f"/course/{target}/view",
        "course_info": f"/course/{target}/info",
        "course_enroll": f"/course/{target}/enroll",
        "course_rate": f"/course/{target}/rate{query}",
        "course_opinion": f"/course/{target}/opinion",
        "catalog_search": f"/search{query}",
        "category_browse": f"/category/{target}",
        "push_open": f"/push/{target}/open",
        "push_click": f"/push/{target}/click",
        "newsletter_open": f"/newsletter/{target}/open",
        "newsletter_click": f"/newsletter/{target}/click",
        "eit_answer": f"/eit/{target}/answer{query}",
        "account_op": f"/account/{target}",
    }
    if event.action not in paths:
        raise ValueError(f"action {event.action!r} has no weblog representation")
    moment = datetime.fromtimestamp(event.timestamp, tz=timezone.utc)
    time_str = moment.strftime(_TIME_FORMAT)
    return (
        f'{host} - u{event.user_id} [{time_str}] '
        f'"GET {paths[event.action]} HTTP/1.1" 200 512 "-" "Mozilla/5.0"'
    )
