"""Append-only segmented event log with compaction.

The continuous raw stream of Section 4 lands here.  Events append to an
active in-memory segment (a :class:`~repro.db.table.Table`); when the
segment reaches ``segment_rows`` it is sealed and a new one opens.  Sealed
segments are immutable, so per-segment hash indexes on ``user_id`` stay
valid forever — the classic LSM-lite layout.

:meth:`EventLog.compact` merges all segments into one time-ordered segment
(cheap at simulation scale, and it keeps query code simple).  The whole
log persists through a :class:`~repro.db.catalog.Catalog` directory.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.analysis.contracts import declare_lock, guarded_by, requires_lock
from repro.db.catalog import Catalog
from repro.db.index import HashIndex
from repro.db.table import Table
from repro.lifelog.events import EVENT_SCHEMA, Event

declare_lock("EventLog._write_lock", reentrant=True)


@guarded_by("_write_lock", "_sealed", "_sealed_indexes", "_active")
class EventLog:
    """Segmented, append-only storage for LifeLog events."""

    def __init__(self, segment_rows: int = 50_000) -> None:
        if segment_rows < 1:
            raise ValueError(f"segment_rows must be >= 1, got {segment_rows}")
        self.segment_rows = segment_rows
        self._sealed: list[Table] = []
        self._sealed_indexes: list[HashIndex] = []
        self._active = Table(EVENT_SCHEMA, name="segment-active")
        #: serializes mutations (append/extend/seal/compact/save) so
        #: streaming write-behind flushes can land while other threads
        #: ingest; readers take it only long enough to snapshot the
        #: segment list, then scan lock-free (rows written before the
        #: length bump are the only ones a concurrent scan can see).
        self._write_lock = threading.RLock()

    # -- ingestion -----------------------------------------------------------

    def append(self, event: Event) -> None:
        """Append one event (a one-element batch through :meth:`extend`)."""
        self.extend((event,))

    def extend(self, events: Iterable[Event]) -> int:
        """Append many events; returns how many were written.

        The batched ingestion path (the streaming write-behind lands
        here): rows go into the active segment in chunks sized to the
        remaining segment room, so the segment-roll check runs once per
        chunk instead of once per event.
        """
        rows = [event.to_row() for event in events]
        written = 0
        with self._write_lock:
            while written < len(rows):
                room = self.segment_rows - len(self._active)
                chunk = rows[written:written + room]
                self._active.extend(chunk)
                written += len(chunk)
                if len(self._active) >= self.segment_rows:
                    self._seal()
        return written

    @requires_lock("_write_lock")
    def _seal(self) -> None:
        if len(self._active) == 0:
            return
        self._active.name = f"segment-{len(self._sealed):05d}"
        # Index before table: a reader driving off _sealed must never
        # see a sealed segment whose index doesn't exist yet.
        self._sealed_indexes.append(HashIndex(self._active, "user_id"))
        self._sealed.append(self._active)
        self._active = Table(EVENT_SCHEMA, name="segment-active")

    # -- stats -----------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(s) for s in self._all_segments())

    @property
    def segment_count(self) -> int:
        """Sealed segments plus the active one (if non-empty)."""
        return len(self._all_segments())

    # -- reads -------------------------------------------------------------

    def _all_segments(self) -> list[Table]:
        """Consistent snapshot of the segment list (no torn seal views)."""
        with self._write_lock:
            segments = list(self._sealed)
            if len(self._active):
                segments.append(self._active)
            return segments

    def events(self) -> Iterator[Event]:
        """All events in append order."""
        for segment in self._all_segments():
            for row in segment.rows():
                yield Event.from_row(row)

    def events_for_user(self, user_id: int) -> list[Event]:
        """All events of one user, time-ordered."""
        with self._write_lock:
            sealed = list(zip(self._sealed, self._sealed_indexes))
            active = self._active
        collected: list[Event] = []
        for segment, index in sealed:
            ids = index.lookup(int(user_id))
            for row_id in ids.tolist():
                collected.append(Event.from_row(segment.row(row_id)))
        if len(active):
            user_col = active.column("user_id")
            for row_id in np.nonzero(user_col == int(user_id))[0].tolist():
                collected.append(Event.from_row(active.row(row_id)))
        collected.sort(key=lambda e: (e.timestamp, e.action))
        return collected

    def events_in_window(self, start: float, end: float) -> list[Event]:
        """Events with ``start <= ts < end``, time-ordered."""
        if end < start:
            raise ValueError(f"window end {end} before start {start}")
        collected: list[Event] = []
        for segment in self._all_segments():
            ts = segment.column("ts")
            mask = (ts >= start) & (ts < end)
            for row_id in np.nonzero(mask)[0].tolist():
                collected.append(Event.from_row(segment.row(row_id)))
        collected.sort(key=lambda e: (e.timestamp, e.user_id, e.action))
        return collected

    def user_ids(self) -> list[int]:
        """Distinct user ids seen in the log, sorted."""
        seen: set[int] = set()
        for segment in self._all_segments():
            seen.update(int(u) for u in segment.column("user_id").tolist())
        return sorted(seen)

    def count_by_category(self) -> dict[str, int]:
        """Event counts per action category."""
        counts: dict[str, int] = {}
        for segment in self._all_segments():
            for category in segment.column("category").tolist():
                counts[category] = counts.get(category, 0) + 1
        return counts

    # -- maintenance -------------------------------------------------------

    def compact(self) -> int:
        """Merge all segments into one time-ordered segment.

        Returns the number of events in the compacted log.  Ordering is by
        ``(ts, user_id, action)`` so compaction is deterministic.
        """
        with self._write_lock:
            rows = [event.to_row() for event in self.events()]
            rows.sort(key=lambda r: (r["ts"], r["user_id"], r["action"]))
            merged = Table.from_rows(EVENT_SCHEMA, rows, name="segment-00000")
            self._sealed = [merged] if len(merged) else []
            self._sealed_indexes = (
                [HashIndex(merged, "user_id")] if len(merged) else []
            )
            self._active = Table(EVENT_SCHEMA, name="segment-active")
            return len(merged)

    # -- persistence -----------------------------------------------------------

    def save(self, directory: str | Path) -> Path:
        """Persist all segments (the active one is sealed first).

        Holds the write lock for the whole snapshot so concurrent
        ingestion (e.g. a streaming write-behind flush) cannot reshape
        the segment list mid-save; writers simply queue behind the save.
        """
        with self._write_lock:
            self._seal()
            catalog = Catalog()
            for segment in self._sealed:
                catalog.register(segment)
            return catalog.save(directory)

    @classmethod
    def load(cls, directory: str | Path, segment_rows: int = 50_000) -> "EventLog":
        """Load a log written by :meth:`save`."""
        catalog = Catalog.load(directory)
        log = cls(segment_rows=segment_rows)
        for name in catalog.table_names():
            table = catalog.get(name)
            log._sealed.append(table)
            log._sealed_indexes.append(HashIndex(table, "user_id"))
        return log
