"""Append-only segmented event log with compaction.

The continuous raw stream of Section 4 lands here.  Events append to an
active in-memory segment (a :class:`~repro.db.table.Table`); when the
segment reaches ``segment_rows`` it is sealed and a new one opens.  Sealed
segments are immutable, so per-segment hash indexes on ``user_id`` stay
valid forever — the classic LSM-lite layout.

:meth:`EventLog.compact` merges all segments into one time-ordered segment
(cheap at simulation scale, and it keeps query code simple).  The whole
log persists through a :class:`~repro.db.catalog.Catalog` directory.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.db.catalog import Catalog
from repro.db.index import HashIndex
from repro.db.table import Table
from repro.lifelog.events import EVENT_SCHEMA, Event


class EventLog:
    """Segmented, append-only storage for LifeLog events."""

    def __init__(self, segment_rows: int = 50_000) -> None:
        if segment_rows < 1:
            raise ValueError(f"segment_rows must be >= 1, got {segment_rows}")
        self.segment_rows = segment_rows
        self._sealed: list[Table] = []
        self._sealed_indexes: list[HashIndex] = []
        self._active = Table(EVENT_SCHEMA, name="segment-active")

    # -- ingestion -----------------------------------------------------------

    def append(self, event: Event) -> None:
        """Append one event (seals the active segment when full)."""
        self._active.append(event.to_row())
        if len(self._active) >= self.segment_rows:
            self._seal()

    def extend(self, events: Iterable[Event]) -> int:
        """Append many events; returns how many were written."""
        count = 0
        for event in events:
            self.append(event)
            count += 1
        return count

    def _seal(self) -> None:
        if len(self._active) == 0:
            return
        self._active.name = f"segment-{len(self._sealed):05d}"
        self._sealed.append(self._active)
        self._sealed_indexes.append(HashIndex(self._active, "user_id"))
        self._active = Table(EVENT_SCHEMA, name="segment-active")

    # -- stats -----------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(s) for s in self._sealed) + len(self._active)

    @property
    def segment_count(self) -> int:
        """Sealed segments plus the active one (if non-empty)."""
        return len(self._sealed) + (1 if len(self._active) else 0)

    # -- reads -------------------------------------------------------------

    def _all_segments(self) -> list[Table]:
        segments = list(self._sealed)
        if len(self._active):
            segments.append(self._active)
        return segments

    def events(self) -> Iterator[Event]:
        """All events in append order."""
        for segment in self._all_segments():
            for row in segment.rows():
                yield Event.from_row(row)

    def events_for_user(self, user_id: int) -> list[Event]:
        """All events of one user, time-ordered."""
        collected: list[Event] = []
        for i, segment in enumerate(self._sealed):
            ids = self._sealed_indexes[i].lookup(int(user_id))
            for row_id in ids.tolist():
                collected.append(Event.from_row(segment.row(row_id)))
        if len(self._active):
            user_col = self._active.column("user_id")
            for row_id in np.nonzero(user_col == int(user_id))[0].tolist():
                collected.append(Event.from_row(self._active.row(row_id)))
        collected.sort(key=lambda e: (e.timestamp, e.action))
        return collected

    def events_in_window(self, start: float, end: float) -> list[Event]:
        """Events with ``start <= ts < end``, time-ordered."""
        if end < start:
            raise ValueError(f"window end {end} before start {start}")
        collected: list[Event] = []
        for segment in self._all_segments():
            ts = segment.column("ts")
            mask = (ts >= start) & (ts < end)
            for row_id in np.nonzero(mask)[0].tolist():
                collected.append(Event.from_row(segment.row(row_id)))
        collected.sort(key=lambda e: (e.timestamp, e.user_id, e.action))
        return collected

    def user_ids(self) -> list[int]:
        """Distinct user ids seen in the log, sorted."""
        seen: set[int] = set()
        for segment in self._all_segments():
            seen.update(int(u) for u in segment.column("user_id").tolist())
        return sorted(seen)

    def count_by_category(self) -> dict[str, int]:
        """Event counts per action category."""
        counts: dict[str, int] = {}
        for segment in self._all_segments():
            for category in segment.column("category").tolist():
                counts[category] = counts.get(category, 0) + 1
        return counts

    # -- maintenance -------------------------------------------------------

    def compact(self) -> int:
        """Merge all segments into one time-ordered segment.

        Returns the number of events in the compacted log.  Ordering is by
        ``(ts, user_id, action)`` so compaction is deterministic.
        """
        rows = [event.to_row() for event in self.events()]
        rows.sort(key=lambda r: (r["ts"], r["user_id"], r["action"]))
        merged = Table.from_rows(EVENT_SCHEMA, rows, name="segment-00000")
        self._sealed = [merged] if len(merged) else []
        self._sealed_indexes = [HashIndex(merged, "user_id")] if len(merged) else []
        self._active = Table(EVENT_SCHEMA, name="segment-active")
        return len(merged)

    # -- persistence -----------------------------------------------------------

    def save(self, directory: str | Path) -> Path:
        """Persist all segments (the active one is sealed first)."""
        self._seal()
        catalog = Catalog()
        for segment in self._sealed:
            catalog.register(segment)
        return catalog.save(directory)

    @classmethod
    def load(cls, directory: str | Path, segment_rows: int = 50_000) -> "EventLog":
        """Load a log written by :meth:`save`."""
        catalog = Catalog.load(directory)
        log = cls(segment_rows=segment_rows)
        for name in catalog.table_names():
            table = catalog.get(name)
            log._sealed.append(table)
            log._sealed_indexes.append(HashIndex(table, "user_id"))
        return log
