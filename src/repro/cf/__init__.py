"""Collaborative filtering: classical baselines and emotion-aware CF.

Fig. 1 places the paper's contribution on top of Burke's (2001) hybrid
recommender taxonomy; this subpackage supplies that baseline layer —
neighbourhood CF, matrix factorization, popularity, content-based and
Burke-style hybrids — plus the *contextual* wrappers that inject emotional
context (pre-filtering and post-filtering), evaluated on the synthetic
CoMoDa dataset in bench A5.
"""

from repro.cf.content import ContentBasedRecommender
from repro.cf.context import ContextualPostFilter, ContextualPreFilter
from repro.cf.eval import evaluate_rmse_mae, precision_at_k
from repro.cf.hybrid import SwitchingHybrid, WeightedHybrid
from repro.cf.mf import FunkSVD
from repro.cf.neighborhood import ItemKNN, UserKNN
from repro.cf.popularity import PopularityRecommender
from repro.cf.ratings import RatingMatrix

__all__ = [
    "ContentBasedRecommender",
    "ContextualPostFilter",
    "ContextualPreFilter",
    "FunkSVD",
    "ItemKNN",
    "PopularityRecommender",
    "RatingMatrix",
    "SwitchingHybrid",
    "UserKNN",
    "WeightedHybrid",
    "evaluate_rmse_mae",
    "precision_at_k",
]
