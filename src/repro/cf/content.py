"""Content-based recommendation over item feature vectors.

One of Burke's knowledge sources (Fig. 1): score an item by its similarity
to the feature-weighted centroid of the user's liked items.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.cf.ratings import RatingMatrix


class ContentBasedRecommender:
    """Profile-centroid content scoring.

    ``item_features[item_id]`` is a dense feature vector (e.g. one-hot
    genre); the user profile is the rating-weighted mean of the vectors of
    items they rated above their own mean.
    """

    def __init__(self, item_features: Mapping[int, np.ndarray]) -> None:
        if not item_features:
            raise ValueError("need item features")
        lengths = {len(np.asarray(v)) for v in item_features.values()}
        if len(lengths) != 1:
            raise ValueError(f"ragged feature vectors: lengths {sorted(lengths)}")
        self.item_features = {
            int(k): np.asarray(v, dtype=np.float64) for k, v in item_features.items()
        }
        self.dim = lengths.pop()
        self.ratings: RatingMatrix | None = None
        self._profiles: dict[int, np.ndarray] = {}

    def fit(self, ratings: RatingMatrix) -> "ContentBasedRecommender":
        """Build per-user preference centroids."""
        self.ratings = ratings
        self._profiles = {}
        for user_id in ratings.user_ids:
            mean = ratings.user_mean(user_id)
            profile = np.zeros(self.dim)
            weight_sum = 0.0
            row = ratings.user_index(user_id)
            user_row = ratings.matrix.getrow(row)
            for col, value in zip(user_row.indices, user_row.data):
                item_id = ratings.item_ids[col]
                features = self.item_features.get(item_id)
                if features is None:
                    continue
                weight = max(0.0, value - mean) + 0.1
                profile += weight * features
                weight_sum += weight
            if weight_sum > 0:
                self._profiles[user_id] = profile / weight_sum
        return self

    def score(self, user_id: int, item_id: int) -> float:
        """Cosine similarity of the user profile to the item, in [-1, 1]."""
        if self.ratings is None:
            raise RuntimeError("ContentBasedRecommender.score before fit")
        profile = self._profiles.get(int(user_id))
        features = self.item_features.get(int(item_id))
        if profile is None or features is None:
            return 0.0
        denominator = np.linalg.norm(profile) * np.linalg.norm(features)
        if denominator == 0:
            return 0.0
        return float(profile @ features / denominator)

    def predict(self, user_id: int, item_id: int) -> float:
        """Rating-scale projection of :meth:`score` around the user mean."""
        if self.ratings is None:
            raise RuntimeError("ContentBasedRecommender.predict before fit")
        base = self.ratings.user_mean(
            user_id, default=self.ratings.global_mean()
        )
        return float(np.clip(base + self.score(user_id, item_id), 1.0, 5.0))
