"""Rating-prediction and top-k evaluation for the CF benches."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.datagen.comoda import ComodaRating

#: prediction callable: (user, item, context) -> estimate
ContextPredictor = Callable[[int, int, str], float]


def evaluate_rmse_mae(
    predict: ContextPredictor,
    test: list[ComodaRating],
    context_key: Callable[[ComodaRating], str],
    clip: tuple[float, float] = (1.0, 5.0),
) -> tuple[float, float]:
    """RMSE and MAE of a contextual predictor on held-out ratings."""
    if not test:
        raise ValueError("empty test set")
    errors = []
    for rating in test:
        estimate = predict(rating.user_id, rating.item_id, context_key(rating))
        estimate = float(np.clip(estimate, *clip))
        errors.append(estimate - rating.rating)
    errors_arr = np.asarray(errors)
    rmse = float(np.sqrt(np.mean(errors_arr**2)))
    mae = float(np.mean(np.abs(errors_arr)))
    return rmse, mae


def precision_at_k(
    predict: ContextPredictor,
    test: list[ComodaRating],
    context_key: Callable[[ComodaRating], str],
    k: int = 5,
    like_threshold: float = 4.0,
) -> float:
    """Mean per-user precision@k over the held-out ratings.

    For each user, rank their test items by prediction and count how many
    of the top-k they actually rated ≥ ``like_threshold``.  Users with
    fewer than ``k`` test ratings are skipped.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    by_user: dict[int, list[ComodaRating]] = {}
    for rating in test:
        by_user.setdefault(rating.user_id, []).append(rating)
    precisions = []
    for user_id, rows in sorted(by_user.items()):
        if len(rows) < k:
            continue
        scored = sorted(
            rows,
            key=lambda r: -predict(r.user_id, r.item_id, context_key(r)),
        )
        hits = sum(1 for r in scored[:k] if r.rating >= like_threshold)
        precisions.append(hits / k)
    if not precisions:
        raise ValueError(f"no user has >= {k} test ratings")
    return float(np.mean(precisions))
