"""Burke-style hybrid recommenders (Fig. 1 lineage).

Burke (2001) catalogues hybridization strategies; the two that matter for
our benches are implemented: *weighted* (convex score combination) and
*switching* (per-user choice by rating-history depth).
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.cf.ratings import RatingMatrix


class Predictor(Protocol):
    """Anything with a ``predict(user_id, item_id) -> float``."""

    def predict(self, user_id: int, item_id: int) -> float: ...


class WeightedHybrid:
    """Convex combination of component predictions."""

    def __init__(
        self, components: Sequence[Predictor], weights: Sequence[float]
    ) -> None:
        if len(components) != len(weights):
            raise ValueError(
                f"{len(components)} components vs {len(weights)} weights"
            )
        if not components:
            raise ValueError("need at least one component")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = float(sum(weights))
        if total == 0:
            raise ValueError("weights sum to zero")
        self.components = list(components)
        self.weights = [w / total for w in weights]

    def predict(self, user_id: int, item_id: int) -> float:
        """Weighted mean of component predictions."""
        return float(
            sum(
                w * c.predict(user_id, item_id)
                for c, w in zip(self.components, self.weights)
            )
        )


class SwitchingHybrid:
    """Cold-start switching: thin users go to the fallback component.

    Users with fewer than ``min_ratings`` ratings are served by
    ``cold_component`` (typically popularity or content-based), everyone
    else by ``warm_component`` (typically CF) — Burke's "switching" hybrid.
    """

    def __init__(
        self,
        ratings: RatingMatrix,
        warm_component: Predictor,
        cold_component: Predictor,
        min_ratings: int = 5,
    ) -> None:
        if min_ratings < 0:
            raise ValueError(f"min_ratings must be >= 0, got {min_ratings}")
        self.ratings = ratings
        self.warm_component = warm_component
        self.cold_component = cold_component
        self.min_ratings = min_ratings

    def predict(self, user_id: int, item_id: int) -> float:
        """Route to warm/cold component by rating-history depth."""
        n = len(self.ratings.items_of(user_id))
        component = (
            self.warm_component if n >= self.min_ratings else self.cold_component
        )
        return float(component.predict(user_id, item_id))
