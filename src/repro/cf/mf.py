"""FunkSVD matrix factorization (biased SGD)."""

from __future__ import annotations

import numpy as np

from repro.cf.ratings import RatingMatrix


class FunkSVD:
    """Biased MF: r̂ = μ + b_u + b_i + p_u·q_i, trained by SGD."""

    def __init__(
        self,
        rank: int = 16,
        lr: float = 0.01,
        reg: float = 0.05,
        epochs: int = 25,
        seed: int = 0,
    ) -> None:
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self.lr = lr
        self.reg = reg
        self.epochs = epochs
        self.seed = seed
        self.ratings: RatingMatrix | None = None
        self.mu_: float = 0.0
        self.user_bias_: np.ndarray | None = None
        self.item_bias_: np.ndarray | None = None
        self.user_factors_: np.ndarray | None = None
        self.item_factors_: np.ndarray | None = None

    def fit(self, ratings: RatingMatrix) -> "FunkSVD":
        """Train on all stored ratings."""
        self.ratings = ratings
        rng = np.random.default_rng(self.seed)
        n_users, n_items = ratings.n_users, ratings.n_items
        self.mu_ = ratings.global_mean()
        self.user_bias_ = np.zeros(n_users)
        self.item_bias_ = np.zeros(n_items)
        self.user_factors_ = rng.normal(0.0, 0.1, size=(n_users, self.rank))
        self.item_factors_ = rng.normal(0.0, 0.1, size=(n_items, self.rank))

        coo = ratings.matrix.tocoo()
        samples = np.column_stack([coo.row, coo.col]).astype(np.int64)
        values = coo.data.astype(np.float64)
        for __ in range(self.epochs):
            order = rng.permutation(len(values))
            for position in order:
                u, i = samples[position]
                r = values[position]
                prediction = (
                    self.mu_
                    + self.user_bias_[u]
                    + self.item_bias_[i]
                    + self.user_factors_[u] @ self.item_factors_[i]
                )
                error = r - prediction
                self.user_bias_[u] += self.lr * (error - self.reg * self.user_bias_[u])
                self.item_bias_[i] += self.lr * (error - self.reg * self.item_bias_[i])
                pu = self.user_factors_[u].copy()
                self.user_factors_[u] += self.lr * (
                    error * self.item_factors_[i] - self.reg * pu
                )
                self.item_factors_[i] += self.lr * (
                    error * pu - self.reg * self.item_factors_[i]
                )
        return self

    def predict(self, user_id: int, item_id: int) -> float:
        """Predicted rating with bias-only fallbacks for unseen ids."""
        if self.ratings is None:
            raise RuntimeError("FunkSVD.predict before fit")
        row = self.ratings.user_index(user_id)
        col = self.ratings.item_index(item_id)
        estimate = self.mu_
        if row is not None:
            estimate += self.user_bias_[row]
        if col is not None:
            estimate += self.item_bias_[col]
        if row is not None and col is not None:
            estimate += float(self.user_factors_[row] @ self.item_factors_[col])
        return float(estimate)
