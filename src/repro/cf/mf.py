"""FunkSVD matrix factorization (biased SGD)."""

from __future__ import annotations

import numpy as np

from repro.cf.ratings import RatingMatrix
from repro.ml.preprocessing import NotFittedError


class FunkSVD:
    """Biased MF: r̂ = μ + b_u + b_i + p_u·q_i, trained by SGD.

    After :meth:`fit`, the learned factors double as user/item
    *embeddings* for the retrieval layer — read them through the public
    :meth:`user_embeddings` / :meth:`item_embeddings` accessors (typed
    :class:`~repro.ml.preprocessing.NotFittedError` before training)
    rather than the trailing-underscore attributes.
    """

    def __init__(
        self,
        rank: int = 16,
        lr: float = 0.01,
        reg: float = 0.05,
        epochs: int = 25,
        seed: int = 0,
    ) -> None:
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self.lr = lr
        self.reg = reg
        self.epochs = epochs
        self.seed = seed
        self.ratings: RatingMatrix | None = None
        self.mu_: float = 0.0
        self.user_bias_: np.ndarray | None = None
        self.item_bias_: np.ndarray | None = None
        self.user_factors_: np.ndarray | None = None
        self.item_factors_: np.ndarray | None = None

    def fit(self, ratings: RatingMatrix) -> "FunkSVD":
        """Train on all stored ratings."""
        self.ratings = ratings
        rng = np.random.default_rng(self.seed)
        n_users, n_items = ratings.n_users, ratings.n_items
        self.mu_ = ratings.global_mean()
        self.user_bias_ = np.zeros(n_users)
        self.item_bias_ = np.zeros(n_items)
        self.user_factors_ = rng.normal(0.0, 0.1, size=(n_users, self.rank))
        self.item_factors_ = rng.normal(0.0, 0.1, size=(n_items, self.rank))

        coo = ratings.matrix.tocoo()
        samples = np.column_stack([coo.row, coo.col]).astype(np.int64)
        values = coo.data.astype(np.float64)
        for __ in range(self.epochs):
            order = rng.permutation(len(values))
            for position in order:
                u, i = samples[position]
                r = values[position]
                prediction = (
                    self.mu_
                    + self.user_bias_[u]
                    + self.item_bias_[i]
                    + self.user_factors_[u] @ self.item_factors_[i]
                )
                error = r - prediction
                self.user_bias_[u] += self.lr * (error - self.reg * self.user_bias_[u])
                self.item_bias_[i] += self.lr * (error - self.reg * self.item_bias_[i])
                pu = self.user_factors_[u].copy()
                self.user_factors_[u] += self.lr * (
                    error * self.item_factors_[i] - self.reg * pu
                )
                self.item_factors_[i] += self.lr * (
                    error * pu - self.reg * self.item_factors_[i]
                )
        return self

    def _require_fitted(self, what: str) -> RatingMatrix:
        """The fitted rating matrix, or a typed error naming the caller.

        Every consumer of the trained state funnels through this guard so
        an unfitted model fails as :class:`NotFittedError` (a
        ``RuntimeError`` subclass, so legacy handlers keep working)
        instead of an attribute-shaped ``TypeError`` on ``None`` factors.
        """
        if self.ratings is None:
            raise NotFittedError(f"FunkSVD.{what} before fit")
        return self.ratings

    def user_embeddings(self) -> tuple[list[int], np.ndarray, np.ndarray]:
        """``(user_ids, factors, biases)`` of the fitted model, read-only.

        Rows of ``factors`` (and entries of ``biases``) align with
        ``user_ids``, which follow the rating matrix's sorted-id order.
        The arrays are views over the trained state with the write flag
        cleared — callers index or copy, never mutate.
        """
        ratings = self._require_fitted("user_embeddings")
        factors = self.user_factors_.view()
        factors.setflags(write=False)
        biases = self.user_bias_.view()
        biases.setflags(write=False)
        return list(ratings.user_ids), factors, biases

    def item_embeddings(self) -> tuple[list[int], np.ndarray, np.ndarray]:
        """``(item_ids, factors, biases)`` of the fitted model, read-only.

        The item-side twin of :meth:`user_embeddings`; the retrieval
        layer builds its ANN index directly over these rows.
        """
        ratings = self._require_fitted("item_embeddings")
        factors = self.item_factors_.view()
        factors.setflags(write=False)
        biases = self.item_bias_.view()
        biases.setflags(write=False)
        return list(ratings.item_ids), factors, biases

    def predict(self, user_id: int, item_id: int) -> float:
        """Predicted rating with bias-only fallbacks for unseen ids."""
        self._require_fitted("predict")
        row = self.ratings.user_index(user_id)
        col = self.ratings.item_index(item_id)
        estimate = self.mu_
        if row is not None:
            estimate += self.user_bias_[row]
        if col is not None:
            estimate += self.item_bias_[col]
        if row is not None and col is not None:
            estimate += float(self.user_factors_[row] @ self.item_factors_[col])
        return float(estimate)
