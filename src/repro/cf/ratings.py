"""The sparse rating matrix shared by all CF models."""

from __future__ import annotations

from typing import Iterable

import numpy as np
import scipy.sparse as sp

Triplet = tuple[int, int, float]


class RatingMatrix:
    """User × item ratings in CSR form with id ↔ index maps.

    External user/item ids can be arbitrary ints; rows/columns are dense
    internal indices.  Duplicate (user, item) pairs keep the *last* rating
    (re-rates overwrite).
    """

    def __init__(self, triplets: Iterable[Triplet]) -> None:
        latest: dict[tuple[int, int], float] = {}
        for user, item, rating in triplets:
            latest[(int(user), int(item))] = float(rating)
        if not latest:
            raise ValueError("rating matrix needs at least one rating")
        self.user_ids = sorted({u for u, __ in latest})
        self.item_ids = sorted({i for __, i in latest})
        self._user_pos = {u: k for k, u in enumerate(self.user_ids)}
        self._item_pos = {i: k for k, i in enumerate(self.item_ids)}
        rows = [self._user_pos[u] for (u, __) in latest]
        cols = [self._item_pos[i] for (__, i) in latest]
        data = list(latest.values())
        self.matrix = sp.csr_matrix(
            (data, (rows, cols)),
            shape=(len(self.user_ids), len(self.item_ids)),
            dtype=np.float64,
        )

    @property
    def n_users(self) -> int:
        """Number of distinct users."""
        return len(self.user_ids)

    @property
    def n_items(self) -> int:
        """Number of distinct items."""
        return len(self.item_ids)

    @property
    def n_ratings(self) -> int:
        """Number of stored ratings."""
        return int(self.matrix.nnz)

    def density(self) -> float:
        """Filled fraction of the matrix."""
        return self.n_ratings / (self.n_users * self.n_items)

    def user_index(self, user_id: int) -> int | None:
        """Internal row of a user (None if unseen)."""
        return self._user_pos.get(int(user_id))

    def item_index(self, item_id: int) -> int | None:
        """Internal column of an item (None if unseen)."""
        return self._item_pos.get(int(item_id))

    def rating(self, user_id: int, item_id: int) -> float | None:
        """Stored rating or None."""
        row = self.user_index(user_id)
        col = self.item_index(item_id)
        if row is None or col is None:
            return None
        value = self.matrix[row, col]
        return float(value) if value != 0 else None

    def user_mean(self, user_id: int, default: float = 0.0) -> float:
        """Mean of the user's ratings (default when the user is unseen)."""
        row = self.user_index(user_id)
        if row is None:
            return default
        data = self.matrix.getrow(row).data
        return float(data.mean()) if len(data) else default

    def global_mean(self) -> float:
        """Mean of all stored ratings."""
        return float(self.matrix.data.mean())

    def items_of(self, user_id: int) -> list[int]:
        """External item ids the user rated."""
        row = self.user_index(user_id)
        if row is None:
            return []
        return [self.item_ids[j] for j in self.matrix.getrow(row).indices]
