"""Emotion-context-aware CF: pre-filtering and post-filtering.

Adomavicius & Tuzhilin's survey (the paper's reference [1]) defines the
two classic ways to inject context into a 2-D recommender:

* **contextual pre-filtering** — train one model per context segment and
  answer queries from the matching segment's model;
* **contextual post-filtering** — train one context-free model and adjust
  its output by the context's empirical deviation for that item (here:
  the mean rating shift of the item's genre under the query context).

Context here is the viewer's *emotional* state (mood + induced emotion),
which is exactly the emotional-context thesis of the paper transplanted
onto the CoMoDa-style rating task of bench A5.
"""

from __future__ import annotations

from typing import Callable

from repro.cf.ratings import RatingMatrix
from repro.datagen.comoda import ComodaRating

#: context key extractor: mood is the primary CoMoDa context dimension
ContextKey = Callable[[ComodaRating], str]


def mood_context(rating: ComodaRating) -> str:
    """Context = viewer mood."""
    return rating.mood


def emotion_context(rating: ComodaRating) -> str:
    """Context = dominant induced emotion."""
    return rating.emotion


class ContextualPreFilter:
    """One CF model per context segment, with a global fallback.

    ``model_factory`` builds a fresh fit-able model; segments with fewer
    than ``min_segment`` ratings fall back to the global model (exact
    pre-filtering would starve them — the classic sparsity trade-off).
    """

    def __init__(
        self,
        model_factory: Callable[[], object],
        context_key: ContextKey = mood_context,
        min_segment: int = 50,
    ) -> None:
        if min_segment < 1:
            raise ValueError(f"min_segment must be >= 1, got {min_segment}")
        self.model_factory = model_factory
        self.context_key = context_key
        self.min_segment = min_segment
        self._segment_models: dict[str, object] = {}
        self._global_model: object | None = None

    def fit(self, train: list[ComodaRating]) -> "ContextualPreFilter":
        """Fit the global model and one model per viable context segment."""
        if not train:
            raise ValueError("empty training set")
        triplets = [(r.user_id, r.item_id, r.rating) for r in train]
        self._global_model = self.model_factory()
        self._global_model.fit(RatingMatrix(triplets))

        segments: dict[str, list[ComodaRating]] = {}
        for rating in train:
            segments.setdefault(self.context_key(rating), []).append(rating)
        for key, rows in segments.items():
            if len(rows) < self.min_segment:
                continue
            model = self.model_factory()
            model.fit(
                RatingMatrix([(r.user_id, r.item_id, r.rating) for r in rows])
            )
            self._segment_models[key] = model
        return self

    def predict(self, user_id: int, item_id: int, context: str) -> float:
        """Prediction from the context's segment model (global fallback)."""
        if self._global_model is None:
            raise RuntimeError("ContextualPreFilter.predict before fit")
        model = self._segment_models.get(context, self._global_model)
        return float(model.predict(user_id, item_id))


class ContextualPostFilter:
    """Context-free model plus per-(context, genre) rating adjustments."""

    def __init__(
        self,
        model_factory: Callable[[], object],
        item_genres: dict[int, str],
        context_key: ContextKey = mood_context,
        min_cell: int = 20,
        shrink: float = 10.0,
    ) -> None:
        self.model_factory = model_factory
        self.item_genres = dict(item_genres)
        self.context_key = context_key
        self.min_cell = min_cell
        self.shrink = shrink
        self._model: object | None = None
        self._adjustments: dict[tuple[str, str], float] = {}

    def fit(self, train: list[ComodaRating]) -> "ContextualPostFilter":
        """Fit the base model and estimate (context, genre) deviations."""
        if not train:
            raise ValueError("empty training set")
        triplets = [(r.user_id, r.item_id, r.rating) for r in train]
        self._model = self.model_factory()
        self._model.fit(RatingMatrix(triplets))

        # Deviation of each (context, genre) cell from the genre mean,
        # shrunk toward zero by cell size.
        genre_sums: dict[str, list[float]] = {}
        cell_sums: dict[tuple[str, str], list[float]] = {}
        for rating in train:
            genre = self.item_genres.get(rating.item_id)
            if genre is None:
                continue
            genre_sums.setdefault(genre, []).append(rating.rating)
            key = (self.context_key(rating), genre)
            cell_sums.setdefault(key, []).append(rating.rating)
        genre_means = {g: sum(v) / len(v) for g, v in genre_sums.items()}
        for (context, genre), values in cell_sums.items():
            if len(values) < self.min_cell:
                continue
            deviation = sum(values) / len(values) - genre_means[genre]
            weight = len(values) / (len(values) + self.shrink)
            self._adjustments[(context, genre)] = deviation * weight
        return self

    def predict(self, user_id: int, item_id: int, context: str) -> float:
        """Base prediction plus the context's deviation for this genre."""
        if self._model is None:
            raise RuntimeError("ContextualPostFilter.predict before fit")
        estimate = float(self._model.predict(user_id, item_id))
        genre = self.item_genres.get(int(item_id))
        if genre is not None:
            estimate += self._adjustments.get((context, genre), 0.0)
        return estimate
