"""Memory-based (neighbourhood) collaborative filtering.

User-kNN and item-kNN with shrunk cosine similarity and mean-centering —
the classical CF layer the paper's emotional context extends.
"""

from __future__ import annotations

import numpy as np

from repro.cf.ratings import RatingMatrix


def _shrunk_cosine(matrix, shrink: float) -> np.ndarray:
    """Pairwise column cosine with shrinkage toward 0 for thin overlaps."""
    dense = np.asarray(matrix.todense(), dtype=np.float64)
    norms = np.linalg.norm(dense, axis=0)
    norms[norms == 0.0] = 1.0
    gram = dense.T @ dense
    similarity = gram / np.outer(norms, norms)
    if shrink > 0:
        overlap = (dense != 0).astype(np.float64)
        counts = overlap.T @ overlap
        similarity = similarity * (counts / (counts + shrink))
    np.fill_diagonal(similarity, 0.0)
    return similarity


class ItemKNN:
    """Item-based kNN with mean-centered weighted aggregation."""

    def __init__(self, k: int = 20, shrink: float = 10.0) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.shrink = shrink
        self.ratings: RatingMatrix | None = None
        self._similarity: np.ndarray | None = None

    def fit(self, ratings: RatingMatrix) -> "ItemKNN":
        """Precompute the item-item similarity matrix."""
        self.ratings = ratings
        self._similarity = _shrunk_cosine(ratings.matrix, self.shrink)
        return self

    def predict(self, user_id: int, item_id: int) -> float:
        """Predicted rating; falls back to user/global mean off-support."""
        if self.ratings is None or self._similarity is None:
            raise RuntimeError("ItemKNN.predict before fit")
        fallback = self.ratings.user_mean(
            user_id, default=self.ratings.global_mean()
        )
        row = self.ratings.user_index(user_id)
        col = self.ratings.item_index(item_id)
        if row is None or col is None:
            return fallback
        user_row = self.ratings.matrix.getrow(row)
        rated_cols = user_row.indices
        if len(rated_cols) == 0:
            return fallback
        similarities = self._similarity[col, rated_cols]
        top = np.argsort(-similarities)[: self.k]
        sims = similarities[top]
        values = user_row.data[top]
        mask = sims > 0
        if not mask.any():
            return fallback
        return float(np.dot(sims[mask], values[mask]) / sims[mask].sum())


class UserKNN:
    """User-based kNN with mean-centered weighted aggregation."""

    def __init__(self, k: int = 20, shrink: float = 10.0) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.shrink = shrink
        self.ratings: RatingMatrix | None = None
        self._similarity: np.ndarray | None = None
        self._means: np.ndarray | None = None

    def fit(self, ratings: RatingMatrix) -> "UserKNN":
        """Precompute the user-user similarity matrix and user means."""
        self.ratings = ratings
        self._similarity = _shrunk_cosine(ratings.matrix.T, self.shrink)
        means = []
        for row in range(ratings.n_users):
            data = ratings.matrix.getrow(row).data
            means.append(float(data.mean()) if len(data) else 0.0)
        self._means = np.asarray(means)
        return self

    def predict(self, user_id: int, item_id: int) -> float:
        """Mean-centered neighbour aggregation with fallbacks."""
        if self.ratings is None or self._similarity is None:
            raise RuntimeError("UserKNN.predict before fit")
        global_mean = self.ratings.global_mean()
        row = self.ratings.user_index(user_id)
        col = self.ratings.item_index(item_id)
        if row is None:
            return global_mean
        own_mean = self._means[row]
        if col is None:
            return float(own_mean)
        item_col = self.ratings.matrix.getcol(col).tocoo()
        raters = item_col.row
        values = item_col.data
        if len(raters) == 0:
            return float(own_mean)
        similarities = self._similarity[row, raters]
        top = np.argsort(-similarities)[: self.k]
        sims = similarities[top]
        mask = sims > 0
        if not mask.any():
            return float(own_mean)
        centered = values[top][mask] - self._means[raters[top][mask]]
        estimate = own_mean + np.dot(sims[mask], centered) / sims[mask].sum()
        return float(estimate)
