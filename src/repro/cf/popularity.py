"""Popularity and item-mean baselines — the floor every CF should beat."""

from __future__ import annotations

import numpy as np

from repro.cf.ratings import RatingMatrix


class PopularityRecommender:
    """Predicts the (damped) item mean; ranks items by rating count."""

    def __init__(self, damping: float = 5.0) -> None:
        if damping < 0:
            raise ValueError(f"damping must be >= 0, got {damping}")
        self.damping = damping
        self.ratings: RatingMatrix | None = None
        self._item_means: np.ndarray | None = None
        self._item_counts: np.ndarray | None = None

    def fit(self, ratings: RatingMatrix) -> "PopularityRecommender":
        """Compute damped item means and counts."""
        self.ratings = ratings
        mu = ratings.global_mean()
        csc = ratings.matrix.tocsc()
        means, counts = [], []
        for col in range(ratings.n_items):
            data = csc.getcol(col).data
            n = len(data)
            counts.append(n)
            means.append((data.sum() + self.damping * mu) / (n + self.damping))
        self._item_means = np.asarray(means)
        self._item_counts = np.asarray(counts, dtype=np.int64)
        return self

    def predict(self, user_id: int, item_id: int) -> float:
        """The damped item mean (global mean for unseen items)."""
        if self.ratings is None or self._item_means is None:
            raise RuntimeError("PopularityRecommender.predict before fit")
        col = self.ratings.item_index(item_id)
        if col is None:
            return self.ratings.global_mean()
        return float(self._item_means[col])

    def top_items(self, k: int = 10) -> list[int]:
        """Most-rated items, external ids."""
        if self.ratings is None or self._item_counts is None:
            raise RuntimeError("PopularityRecommender.top_items before fit")
        order = np.argsort(-self._item_counts)[:k]
        return [self.ratings.item_ids[i] for i in order]
