"""Reproduction experiment harnesses shared by benches and examples.

Each function runs one paper artifact's experiment at a configurable scale
and returns plain data structures; the benchmarks print them as the
table/figure rows and assert the qualitative shape (see DESIGN.md §4 for
the experiment index and EXPERIMENTS.md for paper-vs-measured numbers).
"""

from repro.experiments.business_case import BusinessCaseRun, run_business_case

__all__ = ["BusinessCaseRun", "run_business_case"]
