"""The Section 5 business case, end to end (experiments E1, E2, A1, A2).

One call runs the full emagister.com-style experiment: generate the world,
bootstrap SPA, run warm-ups plus the ten reported campaigns, and compute
every quantity Figs. 6(a)/6(b) report, alongside the standard-message
baseline needed for the "+90% redemption improvement" claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campaigns.campaign import CampaignResult
from repro.campaigns.delivery import EngineConfig
from repro.campaigns.redemption import combined_gain_curve, gain_at_fraction
from repro.campaigns.reporting import CampaignSummary, build_summary
from repro.ml.metrics import roc_auc
from repro.spa import SimulatedWorld, SmartPredictionAssistant


@dataclass
class BusinessCaseRun:
    """Everything the Fig. 6 benches need from one experiment run."""

    spa: SmartPredictionAssistant
    results: list[CampaignResult]
    summary: CampaignSummary
    baseline_summary: CampaignSummary
    gain_curve: tuple[np.ndarray, np.ndarray]

    @property
    def gain_at_40(self) -> float:
        """Fig. 6(a) operating point: impacts captured at 40% of action."""
        return gain_at_fraction(self.results, 0.40)

    @property
    def improvement(self) -> float:
        """Redemption improvement over the standard-message baseline."""
        base = self.baseline_summary.average_performance
        return self.summary.average_performance / base - 1.0

    def pooled_auc(self) -> float:
        """AUC of the propensity scores pooled over all ten campaigns."""
        scores, outcomes = [], []
        for result in self.results:
            s, o = result.scores_and_outcomes()
            scores.append(s)
            outcomes.append(o)
        return roc_auc(np.concatenate(outcomes), np.concatenate(scores))

    def per_campaign_auc(self) -> list[float]:
        """Within-campaign propensity AUCs (skips degenerate campaigns)."""
        aucs = []
        for result in self.results:
            scores, outcomes = result.scores_and_outcomes()
            if 0 < outcomes.sum() < len(outcomes):
                aucs.append(roc_auc(outcomes, scores))
        return aucs


def run_business_case(
    n_users: int = 6_000,
    n_courses: int = 120,
    seed: int = 7,
    n_warmups: int = 3,
    config: EngineConfig | None = None,
) -> BusinessCaseRun:
    """Run the full ten-campaign business case plus its baseline."""
    world = SimulatedWorld.generate(n_users=n_users, n_courses=n_courses, seed=seed)
    spa = SmartPredictionAssistant(world, config or EngineConfig(seed=seed))
    spa.bootstrap()
    results = spa.run_default_plan(n_warmups=n_warmups)
    summary = build_summary(results)
    baseline_summary = build_summary(spa.run_baseline_plan())
    return BusinessCaseRun(
        spa=spa,
        results=results,
        summary=summary,
        baseline_summary=baseline_summary,
        gain_curve=combined_gain_curve(results),
    )
