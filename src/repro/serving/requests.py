"""Typed request/response envelopes of the serving layer.

The paper's two delivery functions become two request types:

* :class:`RecommendationRequest` — "send in an individualized manner the
  action with most probabilities of execution by the user";
* :class:`SelectionRequest` — "choose the user with greater propensity to
  follow a course".

Responses carry per-item score breakdowns (base score, emotional
multiplier, adjusted score) so callers can audit exactly what the Advice
stage did to the ranking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.serving.scorer import ItemId, validate_k


@dataclass(frozen=True)
class RecommendationRequest:
    """Rank ``items`` for one user.

    Parameters
    ----------
    user_id:
        The user to serve.
    items:
        Candidate item ids (course ids, slugs, …).  ``None`` means "the
        whole served catalog": the service then requires an attached
        :class:`~repro.retrieval.retriever.CandidateRetriever`, whose
        indexed catalog defines the item universe — the O(k) hot path,
        since no per-item list is ever materialized on a retrieval hit.
    k:
        Ranking depth, >= 1.
    scorer:
        Registered scorer name (service default when omitted).
    adjust:
        Apply the emotional Advice stage on top of the base scores.
    deadline_s:
        Latency budget in seconds: the service checks it between
        pipeline stages and raises
        :class:`~repro.serving.budget.DeadlineExceeded` once exhausted.
        ``None`` (default) serves without a deadline.
    partial_ok:
        With a deadline, opt in to degraded responses: a budget
        exhausted after base scoring skips the emotional Advice stage
        (``response.degraded`` is then ``True``) instead of failing.
    """

    user_id: int
    items: Sequence[ItemId] | None = None
    k: int = 5
    scorer: str | None = None
    adjust: bool = True
    deadline_s: float | None = None
    partial_ok: bool = False

    def __post_init__(self) -> None:
        validate_k(self.k)
        if self.items is not None and len(self.items) == 0:
            raise ValueError(
                "no items to recommend from (pass None for the full catalog)"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be > 0 (or None), got {self.deadline_s}"
            )


@dataclass(frozen=True)
class SelectionRequest:
    """Rank users by propensity for one ``item``.

    ``user_ids=None`` means every user the service's SUM repository
    knows; ``k=None`` returns the full ranking.
    """

    item: ItemId
    user_ids: Sequence[int] | None = None
    k: int | None = None
    scorer: str | None = None
    adjust: bool = True
    #: latency budget + degradation opt-in; see RecommendationRequest
    deadline_s: float | None = None
    partial_ok: bool = False

    def __post_init__(self) -> None:
        validate_k(self.k, allow_none=True)
        if self.user_ids is not None and len(self.user_ids) == 0:
            raise ValueError("empty user_ids; pass None for all users")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be > 0 (or None), got {self.deadline_s}"
            )


@dataclass(frozen=True)
class ScoredItem:
    """One ranked item with its full score breakdown."""

    item: ItemId
    base_score: float
    multiplier: float
    adjusted_score: float


@dataclass(frozen=True)
class RecommendationResponse:
    """Top-``k`` ranking for one user, best first.

    ``sum_version`` is the user's emotional-state version when the
    service's ``sums`` is a versioned resolver (the streaming layer's
    :class:`~repro.streaming.cache.SumCache`); ``None`` on plain
    repositories.  It makes staleness observable as a freshness floor:
    a response at version *v* reflects at least every update batch
    published up to *v* (batches committed while the response was being
    scored may additionally be included).

    ``generation`` is the checkpoint generation of the SUM store the
    response was served from — stamped when the resolver is a
    generation-loaded replica (see :class:`~repro.serving.replica.
    ReplicaRefresher`), ``None`` when serving live state.  Both stamps
    are captured from the *same* resolver snapshot the scores came from,
    so a replica swap mid-request can never produce a torn pair.

    ``trace_id`` is the request's telemetry trace id — minted at request
    arrival when the service runs with an enabled tracer (its per-stage
    spans land under this id), ``None`` when tracing is off.
    """

    user_id: int
    scorer: str
    ranked: tuple[ScoredItem, ...] = field(default_factory=tuple)
    sum_version: int | None = None
    generation: int | None = None
    trace_id: int | None = None
    #: the deadline budget ran out after base scoring and the request
    #: opted into partial results: the emotional Advice stage was
    #: skipped, so every multiplier is 1.0 (base ranking only)
    degraded: bool = False

    @property
    def items(self) -> list[ItemId]:
        """Ranked item ids, best first."""
        return [entry.item for entry in self.ranked]

    @property
    def best(self) -> ScoredItem:
        """The single most-probable item (the paper's k=1 case)."""
        if not self.ranked:
            raise ValueError("empty recommendation response")
        return self.ranked[0]


@dataclass(frozen=True)
class SelectedUser:
    """One selected user with the score breakdown for the target item."""

    user_id: int
    base_score: float
    multiplier: float
    adjusted_score: float


@dataclass(frozen=True)
class SelectionResponse:
    """Users ranked by adjusted propensity for one item, best first.

    ``sum_version`` carries the resolver's *global* version (total
    published update batches, a freshness floor captured before scoring)
    when the service serves from a versioned resolver; ``None`` on plain
    repositories.  ``generation`` is the checkpoint generation when the
    resolver is a generation-loaded replica — captured from the same
    resolver snapshot the scores came from (never a torn pair).
    ``trace_id`` matches :class:`RecommendationResponse`.
    """

    item: ItemId
    scorer: str
    ranked: tuple[SelectedUser, ...] = field(default_factory=tuple)
    sum_version: int | None = None
    generation: int | None = None
    trace_id: int | None = None
    #: Advice stage skipped under an exhausted budget (partial_ok)
    degraded: bool = False

    def pairs(self) -> list[tuple[int, float]]:
        """Legacy ``(user_id, adjusted_score)`` view, best first."""
        return [(entry.user_id, entry.adjusted_score) for entry in self.ranked]
