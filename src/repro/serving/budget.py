"""Per-request deadline budgets for the serving path.

A :class:`Budget` is the request-scoped half of the tail-latency control
plane: the caller states how long a response is worth waiting for, and
the service checks the budget between stages (resolve → retrieve →
score → advice, with the retrieval stage additionally *shrinking* its
probe and candidate knobs under a tight-but-alive budget),
aborting with a typed :class:`DeadlineExceeded` instead of silently
serving an arbitrarily late response.  Requests that prefer a degraded
answer over none opt in with ``partial_ok`` — an exhausted budget then
skips the emotional Advice stage (the response says so via
``degraded=True``) rather than failing.

Budgets use :func:`time.monotonic` so wall-clock adjustments never
shorten or extend a request, and they are plain immutable values — no
locks, no thread affinity, safe to hand through any call chain.
"""

from __future__ import annotations

from time import monotonic


class DeadlineExceeded(RuntimeError):
    """A request ran out of deadline budget mid-pipeline.

    ``stage`` names the pipeline stage whose completion overshot the
    budget (``"resolve"``, ``"retrieve"`` or ``"score"``);
    ``overshoot_s`` is how far past the deadline the check ran, in
    seconds.
    """

    def __init__(self, stage: str, overshoot_s: float) -> None:
        super().__init__(
            f"deadline exceeded after stage {stage!r} "
            f"({overshoot_s * 1000:.1f}ms over budget)"
        )
        self.stage = str(stage)
        self.overshoot_s = float(overshoot_s)


class Budget:
    """A monotonic-clock deadline threaded through one request.

    Built once at request arrival (:meth:`from_timeout`) and consulted
    between stages: :meth:`check` raises :class:`DeadlineExceeded`,
    :meth:`expired` answers quietly for callers that degrade instead of
    aborting.
    """

    __slots__ = ("deadline", "started")

    def __init__(self, deadline: float, started: float | None = None) -> None:
        self.deadline = float(deadline)
        self.started = float(started) if started is not None else monotonic()

    @classmethod
    def from_timeout(cls, seconds: float) -> "Budget":
        """A budget expiring ``seconds`` from now."""
        if seconds <= 0:
            raise ValueError(f"budget seconds must be > 0, got {seconds}")
        now = monotonic()
        return cls(now + float(seconds), started=now)

    def remaining(self) -> float:
        """Seconds left before the deadline (negative once past it)."""
        return self.deadline - monotonic()

    def expired(self) -> bool:
        return monotonic() >= self.deadline

    def check(self, stage: str) -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        over = monotonic() - self.deadline
        if over >= 0:
            raise DeadlineExceeded(stage, over)
