"""The batch-first scoring contract every scorer family plugs into.

The paper's SPA serves two functions (recommend items to a user, select
users for an item); the seed grew one incompatible call signature per
scorer family, all scored one ``(user, item)`` pair at a time.  The
:class:`Scorer` protocol fixes the contract the serving layer builds on:

``score_batch(user_ids, items) -> ndarray`` of shape
``(len(user_ids), len(items))``, higher meaning more appealing, with a
single-pair ``score`` convenience derived from it.

Anything implementing the protocol — vectorized matrix math, a wrapped
legacy callable, a remote model — composes identically under
:class:`~repro.serving.service.RecommendationService` and the vectorized
Advice stage.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from typing import Hashable, Protocol, Sequence, runtime_checkable

import numpy as np

#: Item identifiers are opaque to the serving layer (course ids, slugs …).
ItemId = Hashable


def validate_k(k: int | None, *, allow_none: bool = False) -> int | None:
    """Uniform ``k`` validation shared by every ranking API.

    The seed validated ``k`` in ``recommend`` but silently sliced with
    ``[:k]`` in ``select_users``, so a negative ``k`` returned a wrong
    truncation instead of an error.  All ranking entry points now funnel
    through this helper.
    """
    if k is None:
        if allow_none:
            return None
        raise ValueError("k must be an integer >= 1, got None")
    if isinstance(k, bool):
        raise TypeError("k must be an int, got bool")
    try:
        k = operator.index(k)  # accepts any integral type (int, np.int64, …)
    except TypeError:
        raise TypeError(
            f"k must be an int, got {type(k).__name__}"
        ) from None
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return k


@runtime_checkable
class Scorer(Protocol):
    """Structural type of a batch-first scorer.

    Implementations may additionally accept an optional
    ``budget=None`` keyword on ``score_batch`` (a
    :class:`~repro.serving.budget.Budget`): the service probes for it
    (:func:`~repro.serving.adapters.accepts_budget`) and passes the
    request deadline through, so slow scorers can cut candidate work
    cooperatively instead of blowing the budget after the fact.
    """

    def score_batch(
        self, user_ids: Sequence[int], items: Sequence[ItemId]
    ) -> np.ndarray:
        """Scores for the full ``user_ids × items`` grid."""
        ...

    def score(self, user_id: int, item: ItemId) -> float:
        """Single-pair convenience."""
        ...


class ScorerBase(ABC):
    """Base class supplying the single-pair default from the batch path."""

    @abstractmethod
    def score_batch(
        self, user_ids: Sequence[int], items: Sequence[ItemId]
    ) -> np.ndarray:
        """Scores for the full ``user_ids × items`` grid."""

    def score(self, user_id: int, item: ItemId) -> float:
        """Single-pair convenience, derived from :meth:`score_batch`."""
        return float(self.score_batch([user_id], [item])[0, 0])

    def _as_grid(
        self,
        values: np.ndarray,
        user_ids: Sequence[int],
        items: Sequence[ItemId],
    ) -> np.ndarray:
        """Validate and coerce a score grid to the contract shape/dtype."""
        grid = np.asarray(values, dtype=np.float64)
        expected = (len(user_ids), len(items))
        if grid.shape != expected:
            raise ValueError(
                f"{type(self).__name__} produced shape {grid.shape}, "
                f"expected {expected}"
            )
        return grid
