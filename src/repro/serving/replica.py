"""The replica refresh protocol: primary checkpoints, replicas swap.

PR 4 gave replicas memory-mapped, read-only column pages — point in
time, frozen at load.  This module closes the loop (the ROADMAP
"replica refresh protocol" item) with two small drivers around the
generation-stamped layout of :mod:`repro.core.sharded_store`:

* :class:`Checkpointer` — the **primary** side.  On demand (or on a
  cadence) it calls :meth:`~repro.core.sharded_store.ShardedSumStore.
  save`, which writes one complete new generation directory and
  atomically republishes ``manifest.json``.  Given the streaming
  layer's :class:`~repro.streaming.cache.SumCache` it stamps the
  checkpoint with the cache's per-user version counters, so replicas
  report real version floors.

* :class:`ReplicaRefresher` — the **replica** side.  It polls the
  manifest; on a new generation it ``load(mmap=True)``-s the pages in
  the background (requests keep serving the old store the whole time)
  and then :meth:`~repro.serving.service.RecommendationService.
  swap_sums` — one atomic attribute store.  In-flight requests hold
  the resolver they captured at entry (the old mmap stays valid), new
  requests see the new generation: bounded staleness with no restart,
  no torn reads, and monotonically non-decreasing generation stamps on
  served responses.

Both drivers work synchronously (``checkpoint()`` / ``poll()``) for
deterministic tests and offline pipelines, or as daemon threads
(``start()`` with an ``interval``) for live deployments.
"""

from __future__ import annotations

import shutil
import threading
from pathlib import Path
from time import perf_counter
from typing import Callable

from repro.analysis.contracts import declare_lock, guarded_by
from repro.core.sharded_store import (
    ShardedSumStore,
    generation_dirs,
    read_manifest,
)
from repro.obs.metrics import MetricsRegistry, NullRegistry, resolve_registry
from repro.serving.service import RecommendationService


declare_lock("Checkpointer._checkpoint_lock")
declare_lock("ReplicaRefresher._poll_lock")


class _Cadence(threading.Thread):
    """Run ``tick`` every ``interval`` seconds until stopped (daemon)."""

    def __init__(self, tick: Callable[[], object], interval: float, name: str) -> None:
        super().__init__(name=name, daemon=True)
        self._tick = tick
        self._interval = float(interval)
        self._stop_event = threading.Event()

    def run(self) -> None:  # pragma: no cover - timing loop
        while not self._stop_event.wait(self._interval):
            try:
                self._tick()
            except Exception:
                # A failed checkpoint/poll must not kill the cadence; the
                # next tick retries (the manifest swap is atomic, so a
                # half-written generation is never observable anyway).
                continue

    def stop(self, timeout: float | None = 5.0) -> None:
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout)


class Checkpointer:
    """Primary-side cadence: persist new generations of the SUM plane.

    Parameters
    ----------
    store:
        The writable :class:`~repro.core.sharded_store.ShardedSumStore`
        (the generation-stamped save layout lives there).
    directory:
        Checkpoint root; each :meth:`checkpoint` adds a ``gen-XXXXXX``
        directory and republishes ``manifest.json``.
    cache:
        Optional :class:`~repro.streaming.cache.SumCache` over ``store``;
        when given, each checkpoint is stamped with the cache's per-user
        version counters and global version, so replicas serve real
        version floors instead of bare generation numbers.
    retain:
        Keep at most this many generation directories (older ones are
        pruned after each checkpoint; the manifest's current generation
        is always kept).  ``None`` keeps everything.  On POSIX, pruning
        a generation a replica still has mapped is safe — the pages stay
        alive until unmapped.  A replica *mid-load* of a pruned
        generation fails that one refresh and retries at the newer
        manifest on its next poll (see :meth:`ReplicaRefresher.poll`);
        keep ``retain >= 2`` when replicas poll on a cadence so the
        window stays one-checkpoint wide.
    interval:
        Cadence in seconds for :meth:`start`; ``None`` (default) means
        checkpoints only happen on explicit :meth:`checkpoint` calls.
    """

    def __init__(
        self,
        store: ShardedSumStore,
        directory: str | Path,
        *,
        cache=None,
        retain: int | None = None,
        interval: float | None = None,
        telemetry: MetricsRegistry | NullRegistry | None = None,
    ) -> None:
        if retain is not None and retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self.store = store
        self.directory = Path(directory)
        self.cache = cache
        self.retain = retain
        self.interval = interval
        self._thread: _Cadence | None = None
        self._checkpoint_lock = threading.Lock()
        registry = resolve_registry(telemetry)
        self._m_checkpoints = registry.counter("replica.checkpoints")
        self._m_checkpoint_seconds = registry.histogram(
            "replica.checkpoint_seconds"
        )
        self._g_generation = registry.gauge("replica.checkpoint_generation")

    def checkpoint(self) -> int:
        """Write one new generation; returns its generation number."""
        started = perf_counter()
        with self._checkpoint_lock:
            versions = global_version = None
            if self.cache is not None:
                versions = self.cache.versions_snapshot()
                global_version = self.cache.global_version
            written = self.store.save(
                self.directory,
                versions=versions,
                global_version=global_version,
            )
            generation = int(written.name[len("gen-"):])
            self._prune(generation)
        # instruments record after the lock releases (leaf-lock rule)
        self._m_checkpoints.inc()
        self._m_checkpoint_seconds.observe(perf_counter() - started)
        self._g_generation.set(float(generation))
        return generation

    def _prune(self, current: int) -> None:
        if self.retain is None:
            return
        floor = current - self.retain + 1
        for generation, path in generation_dirs(self.directory):
            if generation < floor and generation != current:
                shutil.rmtree(path, ignore_errors=True)

    # -- cadence -------------------------------------------------------------

    def start(self) -> "Checkpointer":
        """Start checkpointing on the configured ``interval``."""
        if self.interval is None:
            raise ValueError("no interval configured; call checkpoint() instead")
        if self._thread is None or not self._thread.is_alive():
            self._thread = _Cadence(
                self.checkpoint, self.interval, "sum-checkpointer"
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._thread.stop()
            self._thread = None

    def __enter__(self) -> "Checkpointer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@guarded_by("_poll_lock", "generation", "_manifest_target")
class ReplicaRefresher:
    """Replica-side cadence: poll the manifest, load, atomically swap.

    Parameters
    ----------
    directory:
        The checkpoint root a :class:`Checkpointer` publishes to (shared
        filesystem, rsync target, ...).
    service:
        The live :class:`~repro.serving.service.RecommendationService`
        to refresh; its ``sums`` is replaced via
        :meth:`~repro.serving.service.RecommendationService.swap_sums`.
    mmap:
        Load generations as read-only memory maps (the replica layout;
        default) or as in-process copies.
    interval:
        Poll cadence in seconds for :meth:`start`; ``None`` (default)
        means refreshes only happen on explicit :meth:`poll` calls.
    loader:
        Store loader, ``(directory, mmap=...) -> store`` — defaults to
        :meth:`~repro.core.sharded_store.ShardedSumStore.load`.
    """

    def __init__(
        self,
        directory: str | Path,
        service: RecommendationService,
        *,
        mmap: bool = True,
        interval: float | None = None,
        loader: Callable[..., object] | None = None,
        telemetry: MetricsRegistry | NullRegistry | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.service = service
        self.mmap = bool(mmap)
        self.interval = interval
        self._loader = loader if loader is not None else ShardedSumStore.load
        #: generation currently served (seeded from the service's sums
        #: when it already holds a generation-loaded store)
        self.generation: int | None = service.sum_generation()
        #: newest manifest generation seen by poll() (drives the lag gauge)
        self._manifest_target: int | None = self.generation
        self._thread: _Cadence | None = None
        self._poll_lock = threading.Lock()
        registry = resolve_registry(telemetry)
        self._m_refreshes = registry.counter("replica.refreshes")
        self._m_swap_seconds = registry.histogram("replica.swap_seconds")
        registry.gauge(
            "replica.generation",
            fn=lambda: float(self.generation if self.generation is not None else -1),
        )
        # generation age: how many checkpoints the served store is behind
        # the newest manifest this replica has observed
        registry.gauge(
            "replica.generation_lag",
            fn=lambda: float(
                (self._manifest_target or 0) - (self.generation or 0)
            ),
        )

    def poll(self) -> int | None:
        """Refresh if the manifest advanced; returns the new generation.

        The expensive part — loading the new generation's pages — runs
        *before* the swap, with the service still serving the old store;
        the swap itself is one atomic attribute store.  Returns ``None``
        when there is no manifest yet or the served generation is
        already current.  Served stamps are monotonic: the manifest's
        generation counter only ever increases, and a stale manifest
        read simply refreshes one poll later.

        A load that races the checkpointer's retention pruning (the
        generation vanished between the manifest read and the page
        reads) is swallowed: the service keeps serving its current
        store and the next poll follows the newer manifest.
        """
        started = perf_counter()
        refreshed = None
        with self._poll_lock:
            manifest = read_manifest(self.directory)
            if manifest is None:
                return None
            target = int(manifest["generation"])
            self._manifest_target = target
            if self.generation is not None and target <= self.generation:
                return None
            try:
                store = self._loader(self.directory, mmap=self.mmap)
            except (OSError, ValueError, KeyError):
                # pruned mid-load (or a torn copy on a non-atomic
                # transport): never tear down serving over a refresh
                return None
            generation = getattr(store, "snapshot_generation", None)
            self.service.swap_sums(store)
            self.generation = (
                int(generation) if generation is not None else target
            )
            refreshed = self.generation
        # instruments record after the lock releases (leaf-lock rule)
        self._m_refreshes.inc()
        self._m_swap_seconds.observe(perf_counter() - started)
        return refreshed

    # -- cadence -------------------------------------------------------------

    def start(self) -> "ReplicaRefresher":
        """Start polling on the configured ``interval``."""
        if self.interval is None:
            raise ValueError("no interval configured; call poll() instead")
        if self._thread is None or not self._thread.is_alive():
            self._thread = _Cadence(
                self.poll, self.interval, "sum-replica-refresher"
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._thread.stop()
            self._thread = None

    def __enter__(self) -> "ReplicaRefresher":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
