"""Batch-first serving layer: one scoring contract for every scorer family.

The redesign of the delivery API around the context-aware-RS shape the
literature converges on (Santana & Domingues 2020; Zheng 2017): a uniform
:class:`~repro.serving.scorer.Scorer` protocol over which contextual
pre-/post-filters and the paper's emotional Advice adjustments compose as
matrix operations.

* :mod:`repro.serving.scorer` — the ``score_batch`` protocol, the
  :class:`ScorerBase` convenience base and the shared ``k`` validation;
* :mod:`repro.serving.adapters` — adapters wrapping every existing
  scorer family (FunkSVD, kNN, popularity, content, campaign propensity,
  legacy ``BaseScorer`` callables, precomputed matrices);
* :mod:`repro.serving.requests` — typed request/response envelopes with
  per-item score breakdowns;
* :mod:`repro.serving.service` — the :class:`RecommendationService`
  facade implementing both paper functions on the batch path;
* :mod:`repro.serving.replica` — the replica refresh protocol
  (:class:`Checkpointer` on the primary, :class:`ReplicaRefresher`
  swapping generation-stamped mmap stores under a live service).
"""

from repro.serving.adapters import (
    ContentScorer,
    FunkSVDScorer,
    LegacyScorerAdapter,
    MatrixScorer,
    PopularityScorer,
    PropensityScorer,
    RatingModelScorer,
    as_scorer,
)
from repro.serving.requests import (
    RecommendationRequest,
    RecommendationResponse,
    ScoredItem,
    SelectedUser,
    SelectionRequest,
    SelectionResponse,
)
from repro.serving.replica import Checkpointer, ReplicaRefresher
from repro.serving.scorer import ItemId, Scorer, ScorerBase, validate_k
from repro.serving.service import RecommendationService
from repro.core.sum_model import UnknownUserError

__all__ = [
    "Checkpointer",
    "ContentScorer",
    "FunkSVDScorer",
    "ItemId",
    "LegacyScorerAdapter",
    "MatrixScorer",
    "PopularityScorer",
    "PropensityScorer",
    "RatingModelScorer",
    "RecommendationRequest",
    "RecommendationResponse",
    "RecommendationService",
    "ReplicaRefresher",
    "Scorer",
    "ScorerBase",
    "ScoredItem",
    "SelectedUser",
    "SelectionRequest",
    "SelectionResponse",
    "UnknownUserError",
    "as_scorer",
    "validate_k",
]
