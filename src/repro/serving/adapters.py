"""Adapters putting every existing scorer family behind the batch contract.

Each adapter wraps one seed scorer family and exposes
:meth:`~repro.serving.scorer.ScorerBase.score_batch`.  Families with
linear-algebra structure (FunkSVD, popularity, content centroids, a
precomputed matrix) get genuinely vectorized paths; inherently pairwise
models (kNN aggregation, legacy ``BaseScorer`` callables) are wrapped in a
single tight loop so callers still program against one contract.

The adapters deliberately duck-type their wrapped models (``.predict``,
``.user_factors_`` …) instead of importing the concrete classes, so the
serving layer stays dependency-light and anything shaped like a seed
model — including user code — plugs in.
"""

from __future__ import annotations

import inspect
from typing import Callable, Sequence

import numpy as np

from repro.core.sum_model import SmartUserModel
from repro.serving.budget import Budget
from repro.serving.scorer import ItemId, ScorerBase

#: cached result of the accepts_budget signature probe
_ACCEPTS_BUDGET_ATTR = "__accepts_budget__"


def accepts_budget(scorer: object) -> bool:
    """Whether ``scorer.score_batch`` takes an optional ``budget`` hint.

    Probed once per scorer via :func:`inspect.signature` and cached on
    the instance, so the serving hot path pays one attribute read.  The
    hint is advisory: scorers that accept it may cut work cooperatively
    when the request deadline runs low (see :class:`RatingModelScorer`),
    while the service still enforces the hard checks between stages.
    """
    cached = getattr(scorer, _ACCEPTS_BUDGET_ATTR, None)
    if cached is not None:
        return bool(cached)
    try:
        parameters = inspect.signature(scorer.score_batch).parameters
        result = "budget" in parameters
    except (TypeError, ValueError, AttributeError):
        result = False
    try:
        setattr(scorer, _ACCEPTS_BUDGET_ATTR, result)
    except (AttributeError, TypeError):
        pass  # slotted/frozen scorers just re-probe next time
    return result


class RatingModelScorer(ScorerBase):
    """Generic adapter around any ``model.predict(user_id, item_id)``.

    Covers :class:`~repro.cf.neighborhood.ItemKNN`,
    :class:`~repro.cf.neighborhood.UserKNN` and any other pairwise rating
    model; the batch is a single tight loop over the grid.

    The pairwise loop is the slowest scorer shape in the repo, so it
    honours the serving layer's ``budget`` hint: when the deadline runs
    out mid-grid, the remaining cells are filled with the mean of the
    cells scored so far (rank-neutral — they all tie) instead of blowing
    the budget after the fact.  The service's post-score deadline check
    still runs, so a cut grid only ever reaches the caller under
    ``partial_ok`` (and is flagged ``degraded``).
    """

    def __init__(self, model: object) -> None:
        predict = getattr(model, "predict", None)
        if not callable(predict):
            raise TypeError(
                f"{type(model).__name__} has no callable .predict(user, item)"
            )
        self.model = model
        self._predict = predict

    def score_batch(
        self,
        user_ids: Sequence[int],
        items: Sequence[ItemId],
        budget: Budget | None = None,
    ) -> np.ndarray:
        grid = np.empty((len(user_ids), len(items)), dtype=np.float64)
        predict = self._predict
        for row, user_id in enumerate(user_ids):
            if budget is not None and budget.expired():
                return _neutral_fill(grid, row, len(items))
            for col, item in enumerate(items):
                grid[row, col] = predict(user_id, item)
        return grid

    def score(self, user_id: int, item: ItemId) -> float:
        return float(self._predict(user_id, item))


def _neutral_fill(grid: np.ndarray, rows_done: int, n_items: int) -> np.ndarray:
    """Fill unscored rows with the mean of the scored ones (tie scores)."""
    fill = float(grid[:rows_done].mean()) if rows_done and n_items else 0.0
    grid[rows_done:] = fill
    return grid


class FunkSVDScorer(ScorerBase):
    """Vectorized adapter for a fitted :class:`~repro.cf.mf.FunkSVD`.

    ``r̂ = μ + b_u + b_i + p_u·q_i`` for the whole grid in four ndarray
    ops, with the same bias-only fallbacks for unseen ids as
    ``FunkSVD.predict``.
    """

    def __init__(self, model: object) -> None:
        if getattr(model, "ratings", None) is None:
            raise ValueError("FunkSVDScorer needs a fitted FunkSVD")
        self.model = model

    def score_batch(
        self, user_ids: Sequence[int], items: Sequence[ItemId]
    ) -> np.ndarray:
        model = self.model
        ratings = model.ratings
        rows = np.asarray(
            [
                -1 if (p := ratings.user_index(u)) is None else p
                for u in user_ids
            ],
            dtype=np.int64,
        )
        cols = np.asarray(
            [
                -1 if (p := ratings.item_index(i)) is None else p
                for i in items
            ],
            dtype=np.int64,
        )
        grid = np.full((len(user_ids), len(items)), model.mu_)
        known_u = rows >= 0
        known_i = cols >= 0
        if known_u.any():
            grid[known_u] += model.user_bias_[rows[known_u]][:, None]
        if known_i.any():
            grid[:, known_i] += model.item_bias_[cols[known_i]][None, :]
        if known_u.any() and known_i.any():
            grid[np.ix_(known_u, known_i)] += (
                model.user_factors_[rows[known_u]]
                @ model.item_factors_[cols[known_i]].T
            )
        return grid


class PopularityScorer(ScorerBase):
    """Vectorized adapter for a fitted popularity/item-mean baseline.

    One damped-mean row broadcast to every user (the scorer is
    user-independent by construction).
    """

    def __init__(self, model: object) -> None:
        if getattr(model, "ratings", None) is None:
            raise ValueError("PopularityScorer needs a fitted recommender")
        self.model = model

    def score_batch(
        self, user_ids: Sequence[int], items: Sequence[ItemId]
    ) -> np.ndarray:
        model = self.model
        ratings = model.ratings
        global_mean = ratings.global_mean()
        row = np.asarray(
            [
                global_mean
                if (col := ratings.item_index(i)) is None
                else model._item_means[col]
                for i in items
            ]
        )
        return np.tile(row, (len(user_ids), 1))


class ContentScorer(ScorerBase):
    """Vectorized adapter for a fitted content-based recommender.

    Stacks the user profile centroids and item feature vectors once;
    cosine similarities for the whole grid are one normalized matmul.
    With ``rating_scale=True`` (default) it matches ``predict`` (user-mean
    anchored, clipped to [1, 5]); otherwise it matches raw ``score``.
    """

    def __init__(self, model: object, rating_scale: bool = True) -> None:
        if getattr(model, "ratings", None) is None:
            raise ValueError("ContentScorer needs a fitted recommender")
        self.model = model
        self.rating_scale = rating_scale

    @staticmethod
    def _normalized(rows: np.ndarray) -> np.ndarray:
        norms = np.linalg.norm(rows, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return rows / norms

    def score_batch(
        self, user_ids: Sequence[int], items: Sequence[ItemId]
    ) -> np.ndarray:
        model = self.model
        zero = np.zeros(model.dim)
        profiles = self._normalized(
            np.vstack(
                [model._profiles.get(int(u), zero) for u in user_ids]
            )
        )
        features = self._normalized(
            np.vstack(
                [model.item_features.get(int(i), zero) for i in items]
            )
        )
        cosine = profiles @ features.T
        if not self.rating_scale:
            return cosine
        ratings = model.ratings
        global_mean = ratings.global_mean()
        base = np.asarray(
            [ratings.user_mean(u, default=global_mean) for u in user_ids]
        )
        return np.clip(base[:, None] + cosine, 1.0, 5.0)


class LegacyScorerAdapter(ScorerBase):
    """Adapter for legacy ``BaseScorer`` callables ``(model, item) -> float``.

    ``resolver`` maps user ids to :class:`SmartUserModel` instances — a
    :class:`~repro.core.sum_model.SumRepository` or anything with ``.get``.
    The wrapped callable is resolved per *user* (not per pair), so the
    batch makes exactly ``len(user_ids)`` model lookups.
    """

    def __init__(
        self,
        base_scorer: Callable[[SmartUserModel, ItemId], float],
        resolver: object,
    ) -> None:
        if not callable(base_scorer):
            raise TypeError("base_scorer must be callable")
        getter = getattr(resolver, "get", None)
        if not callable(getter):
            raise TypeError(
                f"{type(resolver).__name__} cannot resolve user ids: "
                "needs .get(user_id)"
            )
        self.base_scorer = base_scorer
        self._get = getter

    def score_batch(
        self, user_ids: Sequence[int], items: Sequence[ItemId]
    ) -> np.ndarray:
        grid = np.empty((len(user_ids), len(items)), dtype=np.float64)
        base_scorer = self.base_scorer
        for row, user_id in enumerate(user_ids):
            model = self._get(user_id)
            for col, item in enumerate(items):
                grid[row, col] = base_scorer(model, item)
        return grid

    def score(self, user_id: int, item: ItemId) -> float:
        return float(self.base_scorer(self._get(user_id), item))


class PropensityScorer(ScorerBase):
    """Adapter for the campaign propensity stack.

    Items are course ids; each column is one calibrated
    ``engine.score_users`` pass (already batched over users inside the
    :class:`~repro.campaigns.propensity.FeatureBuilder`).

    Each column is a full feature-build + model pass, so the adapter
    honours the ``budget`` hint: once the deadline expires, remaining
    columns are filled with the mean of the scored ones (rank-neutral
    among themselves) — see :class:`RatingModelScorer` for the contract.
    """

    def __init__(self, engine: object) -> None:
        if not callable(getattr(engine, "score_users", None)):
            raise TypeError(
                f"{type(engine).__name__} has no .score_users(user_ids, course)"
            )
        self.engine = engine

    def score_batch(
        self,
        user_ids: Sequence[int],
        items: Sequence[ItemId],
        budget: Budget | None = None,
    ) -> np.ndarray:
        ids = [int(u) for u in user_ids]
        if not items:
            return np.zeros((len(ids), 0))
        catalog = self.engine.world.catalog
        columns: list[np.ndarray] = []
        for item in items:
            if budget is not None and budget.expired() and columns:
                fill = float(np.mean(columns))
                columns.extend(
                    [np.full(len(ids), fill)] * (len(items) - len(columns))
                )
                break
            columns.append(self.engine.score_users(ids, catalog.get(int(item))))
        return np.column_stack(columns)


class MatrixScorer(ScorerBase):
    """Adapter for a precomputed score matrix (cache / offline batch).

    Useful for serving scores materialized ahead of time; unknown users
    or items fall back to ``fill``.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        user_ids: Sequence[int],
        items: Sequence[ItemId],
        fill: float = 0.0,
    ) -> None:
        self.matrix = np.asarray(matrix, dtype=np.float64)
        if self.matrix.shape != (len(user_ids), len(items)):
            raise ValueError(
                f"matrix shape {self.matrix.shape} does not match "
                f"({len(user_ids)}, {len(items)})"
            )
        self._rows = {int(u): r for r, u in enumerate(user_ids)}
        self._cols = {i: c for c, i in enumerate(items)}
        self.fill = float(fill)

    def score_batch(
        self, user_ids: Sequence[int], items: Sequence[ItemId]
    ) -> np.ndarray:
        rows = np.asarray(
            [self._rows.get(int(u), -1) for u in user_ids], dtype=np.int64
        )
        cols = np.asarray(
            [self._cols.get(i, -1) for i in items], dtype=np.int64
        )
        grid = np.full((len(user_ids), len(items)), self.fill)
        known_u = rows >= 0
        known_i = cols >= 0
        if known_u.any() and known_i.any():
            grid[np.ix_(known_u, known_i)] = self.matrix[
                np.ix_(rows[known_u], cols[known_i])
            ]
        return grid


def as_scorer(candidate: object, resolver: object | None = None) -> ScorerBase:
    """Coerce anything scorer-shaped to the batch contract.

    Accepts an object already implementing ``score_batch``, a pairwise
    rating model with ``.predict``, or (given ``resolver``) a legacy
    ``BaseScorer`` callable.
    """
    if isinstance(candidate, ScorerBase):
        return candidate
    if callable(getattr(candidate, "score_batch", None)):
        return candidate  # type: ignore[return-value]
    if callable(getattr(candidate, "predict", None)):
        return RatingModelScorer(candidate)
    if callable(candidate):
        if resolver is None:
            raise TypeError(
                "legacy scorer callables need a resolver (SumRepository)"
            )
        return LegacyScorerAdapter(candidate, resolver)
    raise TypeError(f"cannot adapt {type(candidate).__name__} to a Scorer")
