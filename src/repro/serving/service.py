"""The batch-first recommendation service facade.

:class:`RecommendationService` holds a named registry of
:class:`~repro.serving.scorer.Scorer` implementations plus the emotional
configuration of the Advice stage (SUM repository, domain profile, item
attributes), and serves the paper's two delivery functions on the batch
path:

* :meth:`RecommendationService.recommend` — the *recommendation
  function* (top-k items for one user);
* :meth:`RecommendationService.select_users` — the *selection function*
  (users ranked by propensity for one item).

Both run as ``score_batch`` + one vectorized
:meth:`~repro.core.advice.AdviceEngine.multiplier_matrix` pass — no
per-pair dict churn anywhere on the serving path.

With a :class:`~repro.retrieval.retriever.CandidateRetriever` attached,
``recommend`` inserts a retrieval stage between resolve and score
(resolve → retrieve → score → advice): the ANN index proposes an
oversampled candidate set and the scorer re-ranks *only* those items,
so the hot path is O(k) in the catalog instead of O(items).  The
retriever falls back to the exact full scan whenever it cannot
guarantee coverage, and ``select_users`` always scans exactly (its
grid is users × 1, already narrow).
"""

from __future__ import annotations

from time import perf_counter
from typing import Mapping, Sequence

import numpy as np

from repro.core.advice import AdviceEngine, DomainProfile
from repro.core.sum_model import SmartUserModel, UnknownUserError
from repro.obs.metrics import (
    SIZE_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    labelled,
    resolve_registry,
)
from repro.obs.tracing import NullTracer, Tracer, next_trace_id, resolve_tracer
from repro.retrieval.retriever import CandidateRetriever
from repro.serving.adapters import accepts_budget, as_scorer
from repro.serving.budget import Budget, DeadlineExceeded
from repro.serving.requests import (
    RecommendationRequest,
    RecommendationResponse,
    ScoredItem,
    SelectedUser,
    SelectionRequest,
    SelectionResponse,
)
from repro.serving.scorer import ItemId, Scorer


class RecommendationService:
    """Named-scorer registry + emotional adjustment, batch-first.

    Parameters
    ----------
    sums:
        User-model resolver (``.get(user_id)`` and ``.user_ids()``),
        typically a :class:`~repro.core.sum_model.SumRepository`.
        Optional for services that never adjust emotionally and always
        receive explicit user lists.
    domain_profile:
        Excitatory links of the interaction domain; omit for a plain
        (emotion-free) ranking service.
    item_attributes:
        ``item -> {attribute: presence}`` metadata for the Advice stage.
    advice:
        The advice engine (default configuration if omitted).
    create_missing:
        First-contact policy.  The streaming path auto-creates a SUM on
        a user's first event (``get_or_create``); by default the serving
        path instead raises :class:`~repro.core.sum_model.
        UnknownUserError` naming every unknown id in the batch.  Pass
        ``True`` to opt in to the streaming semantics — unknown users
        get an empty (neutral) SUM and score unadjusted.
    telemetry:
        A :class:`~repro.obs.metrics.MetricsRegistry` for serving
        metrics: per-stage latency (resolve/score/advice/respond),
        request latency, batch width, request and unknown-user counts.
        Default ``None`` serves on null instruments (no locks, no
        timestamps).
    tracer:
        A :class:`~repro.obs.tracing.Tracer`; when enabled, each request
        mints a trace id at arrival, stamps its stage spans under it,
        and returns it on the response (``response.trace_id``).
    retriever:
        A :class:`~repro.retrieval.retriever.CandidateRetriever`; when
        attached, ``recommend`` retrieves an oversampled candidate set
        from its ANN index and re-ranks only those items.  ``None``
        (default) serves every request as an exact full scan.
    """

    def __init__(
        self,
        sums: object | None = None,
        domain_profile: DomainProfile | None = None,
        item_attributes: Mapping[ItemId, Mapping[str, float]] | None = None,
        advice: AdviceEngine | None = None,
        create_missing: bool = False,
        telemetry: MetricsRegistry | NullRegistry | None = None,
        tracer: Tracer | NullTracer | None = None,
        retriever: CandidateRetriever | None = None,
    ) -> None:
        self.sums = sums
        self.retriever = retriever
        self.domain_profile = domain_profile
        self.item_attributes = dict(item_attributes or {})
        self.advice = advice or AdviceEngine()
        self.create_missing = bool(create_missing)
        self._scorers: dict[str, Scorer] = {}
        self._default: str | None = None
        # Instruments resolve once; request paths never consult the
        # registry, and the null defaults make every record a no-op.
        registry = resolve_registry(telemetry)
        if tracer is None and registry.enabled:
            # enabled telemetry implies tracing (mirrors StreamingUpdater):
            # ids minted at request arrival, echoed on response.trace_id
            self.tracer: Tracer | NullTracer = Tracer()
        else:
            self.tracer = resolve_tracer(tracer)
        self._obs_on = registry.enabled or self.tracer.enabled
        self._m_recommends = registry.counter(
            labelled("serving.requests", kind="recommend")
        )
        self._m_selections = registry.counter(
            labelled("serving.requests", kind="select")
        )
        self._m_unknown = registry.counter("serving.unknown_user_errors")
        self._m_request_seconds = registry.histogram("serving.request_seconds")
        self._m_batch_width = registry.histogram(
            "serving.batch_width", SIZE_BUCKETS
        )
        self._m_resolve = registry.histogram(
            labelled("serving.stage_seconds", stage="resolve")
        )
        self._m_retrieve = registry.histogram(
            labelled("serving.stage_seconds", stage="retrieve")
        )
        self._m_score = registry.histogram(
            labelled("serving.stage_seconds", stage="score")
        )
        self._m_advice = registry.histogram(
            labelled("serving.stage_seconds", stage="advice")
        )
        self._m_respond = registry.histogram(
            labelled("serving.stage_seconds", stage="respond")
        )
        # deadline-budget accounting: exact counts per abort stage, plus
        # degraded (advice-skipped) responses served under partial_ok
        self._m_deadline = {
            stage: registry.counter(
                labelled("serving.deadline_exceeded", stage=stage)
            )
            for stage in ("resolve", "retrieve", "score")
        }
        self._m_degraded = registry.counter("serving.degraded")

    def set_retriever(self, retriever: CandidateRetriever | None) -> None:
        """Attach (or detach, with ``None``) the retrieval stage.

        One GIL-atomic attribute store, same discipline as
        :meth:`swap_sums`: in-flight requests keep the retriever they
        captured at entry, the next request sees the new one.
        """
        self.retriever = retriever

    # -- registry ----------------------------------------------------------

    def register(
        self, name: str, scorer: object, *, default: bool = False
    ) -> Scorer:
        """Register a scorer under ``name``; first registration is default.

        ``scorer`` may be anything :func:`~repro.serving.adapters.as_scorer`
        can coerce: a batch scorer, a pairwise ``.predict`` model, or a
        legacy ``BaseScorer`` callable (resolved against ``sums``).
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"scorer name must be a non-empty str, got {name!r}")
        adapted = as_scorer(scorer, resolver=self.sums)
        self._scorers[name] = adapted
        if default or self._default is None:
            self._default = name
        return adapted

    def scorer(self, name: str | None = None) -> Scorer:
        """Look up a registered scorer (the default when ``name`` is None)."""
        key = name if name is not None else self._default
        if key is None:
            raise KeyError("no scorers registered")
        try:
            return self._scorers[key]
        except KeyError:
            raise KeyError(
                f"unknown scorer {key!r}; registered: {self.scorer_names()}"
            ) from None

    def scorer_names(self) -> list[str]:
        """Registered scorer names, registration order."""
        return list(self._scorers)

    def __contains__(self, name: object) -> bool:
        return name in self._scorers

    def __len__(self) -> int:
        return len(self._scorers)

    # -- batch scoring -----------------------------------------------------

    def _resolve_models(
        self, user_ids: Sequence[int], sums: object | None = None
    ) -> Sequence[SmartUserModel]:
        """User models for one batch — columnar zero-copy when possible.

        ``sums`` is the request's captured resolver (see :meth:`swap_sums`
        — every read of one request must come from the same resolver
        object, so a concurrent replica swap can never mix generations
        within a response).  A columnar resolver (``sums.batch``) returns
        a :class:`~repro.core.sum_store.SumBatch` whose intensity and
        sensibility blocks the Advice stage slices directly; object
        repositories resolve model by model.  Either way, unknown users
        raise one :class:`~repro.core.sum_model.UnknownUserError` naming
        every offending id (unless :attr:`create_missing` opts into the
        streaming path's first-contact auto-create).
        """
        if sums is None:
            sums = self.sums
        if sums is None:
            raise RuntimeError(
                "service has no SUM repository; cannot resolve user models "
                "for emotional adjustment"
            )
        batch = getattr(sums, "batch", None)
        if callable(batch):
            return batch(user_ids, create=self.create_missing)
        models: list[SmartUserModel] = []
        missing: list[int] = []
        if self.create_missing:
            for uid in user_ids:
                models.append(sums.get_or_create(int(uid)))
            return models
        for uid in user_ids:
            try:
                models.append(sums.get(int(uid)))
            except KeyError:
                missing.append(int(uid))
        if missing:
            raise UnknownUserError(missing)
        return models

    def _validate_users(
        self, user_ids: Sequence[int], sums: object | None = None
    ) -> None:
        """Batch-validate ``user_ids`` without materializing any models.

        The no-adjust path owes callers the same typed-error contract as
        the adjusting one: every unknown id in the batch named in one
        :class:`~repro.core.sum_model.UnknownUserError` — but it has no
        use for the models themselves, so this is membership checks only
        (no snapshot builds, no object rebuilds).  Under
        :attr:`create_missing`, unknown users are instead created empty,
        matching streaming first contact.
        """
        if sums is None:
            sums = self.sums
        if sums is None:
            return
        if self.create_missing:
            for uid in user_ids:
                sums.get_or_create(int(uid))
            return
        # Columnar backends (bare or behind a SumCache) validate the
        # whole batch at C speed with the same one-typed-error contract.
        bulk = getattr(sums, "rows_for", None)
        if not callable(bulk):
            bulk = getattr(
                getattr(sums, "repository", None), "rows_for", None
            )
        if callable(bulk):
            bulk(list(user_ids))
            return
        if not hasattr(type(sums), "__contains__"):
            # A bare resolver (e.g. the legacy shim's single-model
            # indirection) cannot answer membership; scoring proceeds as
            # before rather than iterating it by accident.
            return
        missing = [int(uid) for uid in user_ids if int(uid) not in sums]
        if missing:
            raise UnknownUserError(missing)

    def _grids(
        self,
        user_ids: Sequence[int],
        items: Sequence[ItemId] | None,
        scorer_name: str | None,
        adjust: bool,
        known_users: bool = False,
        sums: object | None = None,
        stamps: list[float] | None = None,
        budget: Budget | None = None,
        partial_ok: bool = False,
        retrieve_k: int | None = None,
    ) -> tuple[str, list[ItemId], np.ndarray, np.ndarray, np.ndarray, bool]:
        """(resolved name, items, base, multiplier, adjusted, degraded).

        ``known_users=True`` skips the no-adjust membership validation —
        for callers whose ids were just sourced from ``sums`` itself and
        therefore cannot be unknown (select-all over ``user_ids()``).
        ``sums`` is the caller's captured resolver; defaults to a capture
        taken here (direct ``score_matrix`` calls).  ``stamps``, when
        given, receives five ``perf_counter()`` marks — start, resolved,
        retrieved, scored, advised — the instrumented request paths turn
        into stage histograms and trace spans.

        ``retrieve_k`` arms the retrieval stage: with a retriever
        attached and a single-user batch, the ANN index proposes the
        candidate set the scorer re-ranks; the returned ``items`` are
        then the *effective* (retrieved or fallback) items the grids are
        over.  ``items=None`` means "the retriever's indexed catalog".

        ``budget`` threads the request's deadline through the pipeline:
        checked after resolve (abort — nothing useful exists yet), on
        retrieval entry (the retriever additionally *shrinks* its knobs
        under a tight-but-alive budget), and after base scoring (abort,
        unless ``partial_ok`` degrades the response by skipping the
        Advice stage; the returned ``degraded`` flag is then ``True``
        and every multiplier is 1.0).  Scorers that accept a ``budget``
        hint receive it so they can cut work cooperatively.  The checks
        sit between stages, so a response is either complete, degraded,
        or a typed :class:`~repro.serving.budget.DeadlineExceeded` —
        never silently late without the caller having asked for it.
        """
        if sums is None:
            sums = self.sums
        name = scorer_name if scorer_name is not None else self._default
        scorer = self.scorer(scorer_name)
        # Resolve — or at minimum validate — the whole user batch
        # *before* scoring, on every path: unknown users fail as one
        # typed error naming every offending id (or, under
        # create_missing, exist by the time any scorer resolves them).
        # adjust=False used to skip this entirely and let unknown ids
        # leak into scorers as untyped per-scorer KeyErrors.
        adjusting = adjust and self.domain_profile is not None
        if stamps is not None:
            stamps.append(perf_counter())
        models = None
        if adjusting:
            models = self._resolve_models(user_ids, sums)
        elif sums is not None and not known_users:
            self._validate_users(user_ids, sums)
        if stamps is not None:
            stamps.append(perf_counter())
        if budget is not None:
            budget.check("resolve")
        retriever = self.retriever
        if retrieve_k is not None and retriever is not None and len(user_ids) == 1:
            candidates = retriever.retrieve(
                user_ids, items, retrieve_k, context=models, budget=budget
            )
            if candidates is not None:
                items = candidates
        if items is None:
            # full-scan fallback of an items-free request: the universe
            # is the indexed catalog (only retrieval-armed requests may
            # omit items, so a retriever is known to exist here)
            if retriever is None:
                raise RuntimeError(
                    "request without items needs a retriever whose index "
                    "defines the catalog"
                )
            items = list(retriever.catalog_items())
        else:
            items = list(items)
        if stamps is not None:
            stamps.append(perf_counter())
        if accepts_budget(scorer):
            base = np.asarray(
                scorer.score_batch(list(user_ids), items, budget=budget),
                dtype=np.float64,
            )
        else:
            base = np.asarray(
                scorer.score_batch(list(user_ids), items), dtype=np.float64
            )
        if base.shape != (len(user_ids), len(items)):
            raise ValueError(
                f"scorer {name!r} returned shape {base.shape}, expected "
                f"({len(user_ids)}, {len(items)})"
            )
        if stamps is not None:
            stamps.append(perf_counter())
        degraded = False
        if budget is not None and adjusting and budget.expired():
            if partial_ok:
                # degrade instead of abort: serve the base ranking now,
                # skip the Advice multiplier pass
                adjusting = False
                degraded = True
            else:
                budget.check("score")
        if adjusting:
            multiplier = self.advice.multiplier_matrix(
                models,
                items,
                self.item_attributes,
                self.domain_profile,
            )
        else:
            multiplier = np.ones_like(base)
        if stamps is not None:
            stamps.append(perf_counter())
        return str(name), items, base, multiplier, base * multiplier, degraded

    def score_matrix(
        self,
        user_ids: Sequence[int],
        items: Sequence[ItemId],
        scorer: str | None = None,
        adjust: bool = True,
    ) -> np.ndarray:
        """Adjusted scores for the full ``user_ids × items`` grid."""
        __, __items, __base, __mult, adjusted, __deg = self._grids(
            user_ids, items, scorer, adjust
        )
        return adjusted

    # -- freshness ---------------------------------------------------------

    def sum_version(
        self, user_id: int | None = None, sums: object | None = None
    ) -> int | None:
        """The served emotional-state version, if the resolver exposes one.

        With a versioned resolver (the streaming layer's
        :class:`~repro.streaming.cache.SumCache`, or a replica store
        loaded from a generation-stamped checkpoint) this is the user's
        monotonic snapshot version — or the resolver's global version
        when ``user_id`` is ``None``.  Plain live repositories return
        ``None``: their reads are unversioned.  ``sums`` is the caller's
        captured resolver (defaults to the current one).
        """
        resolver = self.sums if sums is None else sums
        if user_id is not None:
            version = getattr(resolver, "version", None)
            if callable(version):
                value = version(int(user_id))
                return int(value) if value is not None else None
            return None
        global_version = getattr(resolver, "global_version", None)
        return int(global_version) if global_version is not None else None

    def sum_generation(self, sums: object | None = None) -> int | None:
        """Checkpoint generation of the served SUM state, if any.

        Stamped on resolvers loaded from a generation-stamped checkpoint
        (:meth:`~repro.core.sharded_store.ShardedSumStore.load` /
        :meth:`~repro.core.sum_store.ColumnarSumStore.load`), probed on
        the resolver itself or — for a cache-wrapped replica — on its
        ``repository``.  ``None`` when serving live state.
        """
        resolver = self.sums if sums is None else sums
        for candidate in (resolver, getattr(resolver, "repository", None)):
            generation = getattr(candidate, "snapshot_generation", None)
            if generation is not None:
                return int(generation)
        return None

    def swap_sums(self, sums: object) -> None:
        """Atomically replace the SUM resolver under live traffic.

        The refresh protocol's serving-side step: one attribute store
        (GIL-atomic), no lock.  Requests capture ``self.sums`` exactly
        once, so an in-flight request keeps reading the resolver it
        started with (old generations stay valid — mmap pages remain
        mapped) and the next request sees the new one; served generation
        stamps are therefore monotonic per caller.

        Scorers that bound a resolver at :meth:`register` time (legacy
        per-model callables resolved against ``sums``) keep their
        original binding — re-register them after a swap if their scores
        must track the replica, or use batch scorers, which receive ids
        only.
        """
        self.sums = sums

    # -- the two paper functions -------------------------------------------

    def _record_request(
        self,
        trace_id: int | None,
        stamps: list[float],
        finished: float,
        width: int,
        counter: object,
    ) -> None:
        """Turn one request's stage marks into histograms and spans.

        Called only on instrumented services, strictly after the response
        is built — the request hot path itself records nothing.
        """
        started, resolved, retrieved, scored, advised = stamps
        self._m_resolve.observe(resolved - started)
        self._m_retrieve.observe(retrieved - resolved)
        self._m_score.observe(scored - retrieved)
        self._m_advice.observe(advised - scored)
        self._m_respond.observe(finished - advised)
        self._m_request_seconds.observe(finished - started)
        self._m_batch_width.observe(width)
        counter.inc()  # type: ignore[attr-defined]
        tracer = self.tracer
        if tracer.enabled and trace_id is not None:
            tracer.add(trace_id, "serving.resolve", started, resolved)
            tracer.add(trace_id, "serving.retrieve", resolved, retrieved)
            tracer.add(trace_id, "serving.score", retrieved, scored)
            tracer.add(trace_id, "serving.advice", scored, advised)
            tracer.add(trace_id, "serving.respond", advised, finished)

    def recommend(self, request: RecommendationRequest) -> RecommendationResponse:
        """The paper's recommendation function, served on the batch path."""
        # The resolver is captured exactly once per request: stamps and
        # scores all come from this object, so a concurrent swap_sums
        # (replica refresh) can never tear a response across generations.
        resolver = self.sums
        # trace id minted at request arrival; stamped on the response
        trace_id = next_trace_id() if self.tracer.enabled else None
        stamps: list[float] | None = [] if self._obs_on else None
        # Captured before scoring so the reported version is a freshness
        # *floor*: the served state reflects at least every batch up to
        # it (a concurrent publish during scoring can only add batches).
        sum_version = self.sum_version(request.user_id, sums=resolver)
        generation = self.sum_generation(resolver)
        budget = (
            Budget.from_timeout(request.deadline_s)
            if request.deadline_s is not None else None
        )
        try:
            name, items, base, multiplier, adjusted, degraded = self._grids(
                [request.user_id], request.items, request.scorer,
                request.adjust, sums=resolver, stamps=stamps,
                budget=budget, partial_ok=request.partial_ok,
                retrieve_k=request.k,
            )
        except UnknownUserError:
            self._m_unknown.inc()
            raise
        except DeadlineExceeded as exc:
            self._m_deadline[exc.stage].inc()
            raise
        if degraded:
            self._m_degraded.inc()
        entries = [
            ScoredItem(
                item=item,
                base_score=float(base[0, col]),
                multiplier=float(multiplier[0, col]),
                adjusted_score=float(adjusted[0, col]),
            )
            for col, item in enumerate(items)
        ]
        entries.sort(key=lambda entry: (-entry.adjusted_score, entry.item))
        response = RecommendationResponse(
            user_id=int(request.user_id),
            scorer=name,
            ranked=tuple(entries[: request.k]),
            sum_version=sum_version,
            generation=generation,
            trace_id=trace_id,
            degraded=degraded,
        )
        if stamps is not None:
            self._record_request(
                trace_id, stamps, perf_counter(),
                len(items), self._m_recommends,
            )
        return response

    def select_users(self, request: SelectionRequest) -> SelectionResponse:
        """The paper's selection function, served on the batch path."""
        resolver = self.sums  # one capture per request; see recommend()
        trace_id = next_trace_id() if self.tracer.enabled else None
        stamps: list[float] | None = [] if self._obs_on else None
        if request.user_ids is not None:
            ids = [int(uid) for uid in request.user_ids]
        elif resolver is not None:
            ids = list(resolver.user_ids())
        else:
            raise RuntimeError(
                "selection over all users needs a SUM repository; pass "
                "explicit user_ids or attach sums to the service"
            )
        # freshness floor; see recommend()
        sum_version = self.sum_version(sums=resolver)
        generation = self.sum_generation(resolver)
        budget = (
            Budget.from_timeout(request.deadline_s)
            if request.deadline_s is not None else None
        )
        try:
            name, __items, base, multiplier, adjusted, degraded = self._grids(
                ids, [request.item], request.scorer, request.adjust,
                known_users=request.user_ids is None,
                sums=resolver, stamps=stamps,
                budget=budget, partial_ok=request.partial_ok,
            )
        except UnknownUserError:
            self._m_unknown.inc()
            raise
        except DeadlineExceeded as exc:
            self._m_deadline[exc.stage].inc()
            raise
        if degraded:
            self._m_degraded.inc()
        entries = [
            SelectedUser(
                user_id=uid,
                base_score=float(base[row, 0]),
                multiplier=float(multiplier[row, 0]),
                adjusted_score=float(adjusted[row, 0]),
            )
            for row, uid in enumerate(ids)
        ]
        entries.sort(key=lambda entry: (-entry.adjusted_score, entry.user_id))
        if request.k is not None:
            entries = entries[: request.k]
        response = SelectionResponse(
            item=request.item, scorer=name, ranked=tuple(entries),
            sum_version=sum_version, generation=generation,
            trace_id=trace_id, degraded=degraded,
        )
        if stamps is not None:
            self._record_request(
                trace_id, stamps, perf_counter(), len(ids),
                self._m_selections,
            )
        return response
