"""The campaign engine: targeting, delivery, redemption, reporting.

Section 5.4's experiment: eight Push and two newsletter campaigns, each
targeting a random 42.4% of the population, scored by an SVM propensity
model, messaged by the Messaging Agent, with outcomes feeding back into
the SUMs.  The reproduction benches (Fig. 6a/6b) are built directly on
this package.
"""

from repro.campaigns.campaign import CampaignResult, TouchRecord
from repro.campaigns.delivery import CampaignEngine
from repro.campaigns.propensity import FeatureBuilder, PropensityModel
from repro.campaigns.redemption import (
    ascii_curve,
    combined_gain_curve,
    redemption_improvement,
)
from repro.campaigns.reporting import CampaignReport, CampaignSummary, build_summary
from repro.campaigns.targeting import select_random_targets

__all__ = [
    "CampaignEngine",
    "CampaignReport",
    "CampaignResult",
    "CampaignSummary",
    "FeatureBuilder",
    "PropensityModel",
    "TouchRecord",
    "ascii_curve",
    "build_summary",
    "combined_gain_curve",
    "redemption_improvement",
    "select_random_targets",
]
