"""Campaign delivery: the Fig. 4 loop run at population scale.

:class:`CampaignEngine` owns the SPA-side state (SUMs, Gradual EIT,
reinforcement, messaging, propensity model) and runs campaigns against a
"world" — the :class:`~repro.datagen.behavior.BehaviorModel` that stands
in for emagister.com's real users.  The engine only ever sees outcomes,
never latent traits.

Campaign sequence semantics (matching Section 5.2's narrative):

1. an optional *warm-up* campaign bootstraps SUMs and training data with
   standard messages and no model scores;
2. before each reported campaign, the propensity model retrains on all
   previously observed touches (incremental learning across campaigns);
3. every touch delivers one message (Messaging Agent), at most one EIT
   question (Gradual EIT), collects the outcome, writes LifeLog events
   and applies reward/punish updates.
"""

from __future__ import annotations

import contextlib
import weakref
from dataclasses import dataclass

import numpy as np

from repro.campaigns.campaign import CampaignResult, TouchRecord
from repro.campaigns.propensity import (
    EstimatorName,
    FeatureBuilder,
    PropensityModel,
    estimated_appeal,
)
from repro.campaigns.targeting import select_random_targets
from repro.core.advice import DomainProfile
from repro.core.gradual_eit import GradualEIT, QuestionBank
from repro.core.reward import ReinforcementPolicy
from repro.core.sensibility import SensibilityAnalyzer
from repro.core.sharded_store import ShardedSumStore
from repro.core.sum_model import SumRepository
from repro.core.sum_store import ColumnarSumStore
from repro.datagen.behavior import BehaviorModel
from repro.datagen.campaigns_plan import CampaignSpec
from repro.datagen.catalog import AFFINITY_LINKS, emotions_linked_to
from repro.lifelog.events import ActionCategory, Event
from repro.lifelog.preprocess import LifeLogPreprocessor, UserFeatures
from repro.lifelog.store import EventLog
from repro.ml.svd import TruncatedSVD
from repro.messaging.assigner import MessageAssigner
from repro.messaging.templates import default_template_bank
from repro.serving.adapters import PropensityScorer
from repro.serving.service import RecommendationService


@dataclass
class EngineConfig:
    """Tunable knobs of the campaign engine."""

    estimator: EstimatorName = "svm"
    include_demographics: bool = True
    include_behavior: bool = True
    include_emotional: bool = True
    include_subjective: bool = True
    svd_rank: int = 8  # Section 5.2: SVD over the sparse answer matrix
    eit_questions_per_user: int | None = None  # None = unlimited (bank size)
    reward_transaction: float = 1.0
    reward_click: float = 0.6
    reward_open: float = 0.3
    punish_ignore: float = 0.3
    seed: int = 7
    #: SUM storage backend: "object" (dict of SmartUserModels),
    #: "columnar" (struct-of-arrays ColumnarSumStore; same semantics,
    #: batch reads and updates become array slices) or "sharded"
    #: (``n_shards`` columnar partitions behind a hash router — per-shard
    #: write locks, per-shard vocabularies, generation-stamped
    #: checkpoints for the replica refresh protocol) or "multiproc"
    #: (sharded, with every column page on shared memory so per-shard
    #: writer *processes* can own mutation — see repro.streaming.procplane)
    sum_backend: str = "object"
    #: partition count of the "sharded" backend (ignored otherwise);
    #: match the streaming updater's ``n_shards`` so each shard worker
    #: is pinned to exactly one store partition
    n_shards: int = 4
    #: a :class:`~repro.obs.metrics.MetricsRegistry` to instrument every
    #: subsystem this engine builds (serving facade, streaming updater,
    #: checkpointer); ``None`` (default) runs on null instruments with
    #: zero hot-path cost
    telemetry: object | None = None
    #: a :class:`~repro.streaming.control.ControlPlaneConfig` enabling
    #: the tail-latency control plane (adaptive commit batching,
    #: two-class shedding, droppable decay ticks) on every streaming
    #: updater this engine builds; ``None`` (default) keeps the legacy
    #: never-shed behavior
    control_plane: object | None = None


class CampaignEngine:
    """SPA-side campaign execution against a simulated world."""

    def __init__(
        self,
        world: BehaviorModel,
        config: EngineConfig | None = None,
        question_bank: QuestionBank | None = None,
    ) -> None:
        self.world = world
        self.config = config or EngineConfig()
        if self.config.sum_backend == "object":
            self.sums = SumRepository()
        elif self.config.sum_backend == "columnar":
            self.sums = ColumnarSumStore()
        elif self.config.sum_backend == "sharded":
            self.sums = ShardedSumStore(n_shards=self.config.n_shards)
        elif self.config.sum_backend == "multiproc":
            # sharded semantics on shared-memory column pages; worker
            # processes attach via repro.streaming.procplane
            from repro.core.shm_store import MultiProcSumStore

            self.sums = MultiProcSumStore(n_shards=self.config.n_shards)
        else:
            raise ValueError(
                f"unknown sum_backend {self.config.sum_backend!r}; "
                "expected 'object', 'columnar', 'sharded' or 'multiproc'"
            )
        self.eit = GradualEIT(question_bank or QuestionBank.default_bank(per_task=5))
        self.policy = ReinforcementPolicy()
        self.analyzer = SensibilityAnalyzer()
        self.assigner = MessageAssigner(default_template_bank())
        self.event_log = EventLog()
        self.preprocessor = LifeLogPreprocessor()
        self.builder = FeatureBuilder(
            include_demographics=self.config.include_demographics,
            include_behavior=self.config.include_behavior,
            include_emotional=self.config.include_emotional,
            svd_rank=self.config.svd_rank,
            include_subjective=self.config.include_subjective,
        )
        self._embeddings: dict[int, np.ndarray] = {}
        #: retargeting evidence from organic browsing (user → course/area → weight)
        self._course_engagement: dict[int, dict[int, float]] = {}
        self._area_engagement: dict[int, dict[str, float]] = {}
        self.model: PropensityModel | None = None
        self._serving: RecommendationService | None = None
        #: versioned SUM caches spawned by streaming_updater(); the
        #: offline loop invalidates them after writing SUMs directly
        self._live_caches: "weakref.WeakSet" = weakref.WeakSet()
        self.history: list[CampaignResult] = []
        #: (user_id, course_id, transacted) per delivered touch
        self._training_rows: list[tuple[int, int, bool]] = []
        self._behavior_features: dict[int, UserFeatures] = {}
        self._clock = 1_143_000_000.0  # advances per campaign

    # -- bootstrap ---------------------------------------------------------

    def register_population(self) -> None:
        """Create SUMs with objective attributes for the whole population."""
        for user in self.world.population:
            model = self.sums.get_or_create(user.user_id)
            for key, value in user.demographics().items():
                model.set_objective(key, value)
        self.builder.fit(self.sums)

    def ingest_browsing(self, horizon_days: float = 30.0) -> int:
        """Simulate and ingest organic browsing for everyone (LifeLog).

        Active visitors also meet the portal's question-of-the-day: users
        with heavier browsing answer up to three Gradual EIT questions —
        the "common day to day situations" collection channel of Section
        5.2 that runs alongside push/newsletter delivery.
        """
        count = 0
        for user in self.world.population:
            events = self.world.generate_browsing_events(
                user, start_ts=self._clock - 30 * 86_400.0,
                horizon_days=horizon_days,
            )
            count += self.event_log.extend(events)
            model = self.sums.get_or_create(user.user_id)
            n_portal_questions = min(20, (len(events) + 1) // 2)
            rng = self.world._touch_rng("portal-eit", user.user_id)
            with self._sum_write_guard(user.user_id):
                for __ in range(n_portal_questions):
                    question = self.eit.ask(model)
                    if question is None:
                        break
                    option = self.world.choose_eit_option(user, question, rng)
                    self.eit.record_answer(model, question, option)
        self._refresh_behavior_features()
        for cache in self._live_caches:
            cache.invalidate()
        return count

    def _refresh_behavior_features(self) -> None:
        events = list(self.event_log.events())
        self._behavior_features = self.preprocessor.extract_all(events)
        self._update_revealed_preferences(events)

    #: weight of each action kind as revealed-preference evidence
    _REVEALED_WEIGHTS = {"course_view": 1.0, "course_info": 3.0,
                         "course_enroll": 5.0, "course_rate": 2.0}

    def _update_revealed_preferences(self, events: list[Event]) -> None:
        """Distil implicit navigation habits into SUM subjective attributes.

        Section 5.1: subjective attributes are "discovered from WebLogs of
        user's implicit navigation habits".  A user's revealed preference
        for each product attribute is the engagement-weighted mean of the
        attribute presences of the courses they viewed, requested info on,
        rated or enrolled in.  Stored on the SUM as ``pref[attribute]``.
        """
        from repro.datagen.catalog import PRODUCT_ATTRIBUTES

        sums_weighted: dict[int, np.ndarray] = {}
        totals: dict[int, float] = {}
        course_engagement: dict[int, dict[int, float]] = {}
        area_engagement: dict[int, dict[str, float]] = {}
        for event in events:
            weight = self._REVEALED_WEIGHTS.get(event.action)
            if weight is None:
                continue
            if "via" in event.payload:
                continue  # campaign-caused: would leak labels into features
            target = event.payload.get("target")
            if target is None or not str(target).isdigit():
                continue
            course_id = int(target)
            try:
                course = self.world.catalog.get(course_id)
            except KeyError:
                continue
            presence = np.asarray(
                [course.attributes.get(a, 0.0) for a in PRODUCT_ATTRIBUTES]
            )
            uid = event.user_id
            if uid not in sums_weighted:
                sums_weighted[uid] = np.zeros(len(PRODUCT_ATTRIBUTES))
                totals[uid] = 0.0
                course_engagement[uid] = {}
                area_engagement[uid] = {}
            sums_weighted[uid] += weight * presence
            totals[uid] += weight
            course_engagement[uid][course_id] = (
                course_engagement[uid].get(course_id, 0.0) + weight
            )
            area_engagement[uid][course.area] = (
                area_engagement[uid].get(course.area, 0.0) + weight
            )
        for uid, weighted in sums_weighted.items():
            profile = weighted / totals[uid]
            model = self.sums.get_or_create(uid)
            for j, attribute in enumerate(PRODUCT_ATTRIBUTES):
                model.set_subjective(f"pref[{attribute}]", float(profile[j]))
        self._course_engagement = course_engagement
        self._area_engagement = area_engagement

    # -- training ----------------------------------------------------------

    def train_propensity(self) -> PropensityModel | None:
        """Retrain on all recorded touches; None with insufficient data.

        Each touch's features include the course it promoted, so the model
        learns both user-level propensity and user × course interactions.
        """
        if not self._training_rows:
            return None
        labels = np.asarray([int(t[2]) for t in self._training_rows])
        if len(set(labels.tolist())) < 2:
            return None
        self._refresh_embeddings()
        # Build features per course block (rows regrouped, then restored).
        by_course: dict[int, list[int]] = {}
        for position, (__, course_id, __label) in enumerate(self._training_rows):
            by_course.setdefault(course_id, []).append(position)
        width = len(self.builder.feature_names(with_course=True))
        x = np.zeros((len(self._training_rows), width))
        for course_id, positions in by_course.items():
            course = self.world.catalog.get(course_id)
            user_ids = [self._training_rows[p][0] for p in positions]
            x[positions] = self.builder.build(
                self.sums, self._behavior_features, user_ids,
                course=course, embeddings=self._embeddings,
                course_engagement=self._course_engagement,
                area_engagement=self._area_engagement,
            )
        model = PropensityModel(self.config.estimator, seed=self.config.seed)
        model.fit(x, labels)
        self.model = model
        return model

    def _refresh_embeddings(self) -> None:
        """Recompute SVD projections of the sparse EIT answer matrix.

        This is Section 5.2's dimensionality-reduction step: "To reduce
        the dimensionality of the matrix generated we use ..." — a
        truncated SVD over the user × question matrix, re-fit whenever the
        propensity model retrains.
        """
        if not self.config.svd_rank:
            return
        user_ids = self.sums.user_ids()
        matrix, __ = self.eit.answer_matrix(user_ids)
        if matrix.nnz == 0:
            self._embeddings = {}
            return
        rank = min(self.config.svd_rank, min(matrix.shape) - 1)
        if rank < 1:
            self._embeddings = {}
            return
        svd = TruncatedSVD(rank=rank)
        projected = svd.fit_transform(matrix)
        if projected.shape[1] < self.config.svd_rank:
            padded = np.zeros((projected.shape[0], self.config.svd_rank))
            padded[:, : projected.shape[1]] = projected
            projected = padded
        self._embeddings = {
            uid: projected[i] for i, uid in enumerate(user_ids)
        }

    def score_users(self, user_ids: list[int], course) -> np.ndarray:
        """Calibrated propensities for a user list on one course."""
        if self.model is None:
            raise RuntimeError("no propensity model trained yet")
        x = self.builder.build(
            self.sums, self._behavior_features, user_ids,
            course=course, embeddings=self._embeddings,
            course_engagement=self._course_engagement,
            area_engagement=self._area_engagement,
        )
        return self.model.predict_proba(x)

    # -- serving -----------------------------------------------------------

    def recommendation_service(
        self, sums=None, retriever=None
    ) -> RecommendationService:
        """The batch-first serving facade over this engine's scorers.

        Items are course ids.  Three scorer families are registered:

        * ``"propensity"`` (default) — the calibrated propensity stack
          (requires a trained model; :meth:`train_propensity` runs one);
        * ``"appeal"`` — SPA's estimated emotional appeal of the course,
          usable before any campaign history exists;
        * ``"engagement"`` — retargeting evidence from organic browsing.

        The adapters read live engine state, so the service stays current
        across retrains; the default facade (over the engine's own SUM
        repository) is built once and cached.  Pass ``sums`` — typically
        a :class:`~repro.streaming.cache.SumCache` from
        :meth:`streaming_updater` — to build a fresh, uncached service
        whose Advice stage reads from that resolver instead.  Pass a
        :class:`~repro.retrieval.retriever.CandidateRetriever` to arm
        the O(k) candidate-retrieval stage (a ``retriever`` implies a
        fresh, uncached service too).
        """
        if sums is None and retriever is None and self._serving is not None:
            return self._serving
        catalog = self.world.catalog
        service = RecommendationService(
            sums=sums if sums is not None else self.sums,
            domain_profile=DomainProfile("courses", AFFINITY_LINKS),
            item_attributes={
                course_id: dict(catalog.get(course_id).attributes)
                for course_id in catalog.course_ids()
            },
            telemetry=self.config.telemetry,
            retriever=retriever,
        )
        service.register("propensity", PropensityScorer(self))
        service.register(
            "appeal",
            lambda model, course_id: estimated_appeal(
                None, catalog.get(int(course_id)), model
            ),
        )
        service.register(
            "engagement",
            lambda model, course_id: float(np.log1p(
                self._course_engagement
                .get(model.user_id, {})
                .get(int(course_id), 0.0)
            )),
        )
        if sums is None and retriever is None:
            self._serving = service
        return service

    @contextlib.contextmanager
    def _sum_write_guard(self, user_id: int):
        """Hold every live cache's per-user lock around a direct SUM write.

        The offline loop mutates the shared repository without going
        through the streaming write path; taking the locks (in a stable
        order) keeps concurrent snapshot builds and streamed applies from
        observing a half-applied campaign update.
        """
        with contextlib.ExitStack() as stack:
            for cache in sorted(self._live_caches, key=id):
                stack.enter_context(cache.write_lock(user_id))
            yield

    def streaming_updater(self, n_shards: int = 4, **kwargs) -> "StreamingUpdater":
        """A live update subsystem over this engine's SUMs and event log.

        Events stream into the engine's own
        :class:`~repro.core.sum_model.SumRepository` (through the same
        :class:`~repro.core.reward.ReinforcementPolicy` the campaign loop
        uses) with write-behind into its :class:`EventLog`; serve fresh
        state with ``engine.recommendation_service(sums=updater.cache)``.
        When *replaying the engine's own log* (rebuilding state rather
        than ingesting new traffic), pass ``event_log=None`` so the
        write-behind doesn't append the replayed events a second time.
        """
        from repro.streaming.updater import StreamingUpdater

        kwargs.setdefault("event_log", self.event_log)
        kwargs.setdefault("telemetry", self.config.telemetry)
        kwargs.setdefault("control_plane", self.config.control_plane)
        updater = StreamingUpdater(
            sums=self.sums,
            item_emotions=self.world.catalog.emotion_links(),
            policy=self.policy,
            n_shards=n_shards,
            **kwargs,
        )
        # The offline loop also writes these SUMs directly; track the
        # cache so campaign runs invalidate it for the touched users.
        self._live_caches.add(updater.cache)
        return updater

    def sum_checkpointer(self, directory, cache=None, **kwargs) -> "Checkpointer":
        """A generation-stamped checkpoint cadence over this engine's SUMs.

        Requires the ``"sharded"`` backend (the generation-stamped save
        layout lives there).  Pass a live updater's ``cache`` so each
        checkpoint carries the streaming version counters and replicas
        report real version floors.
        """
        from repro.serving.replica import Checkpointer

        if not callable(getattr(self.sums, "save", None)) or not hasattr(
            self.sums, "shards"
        ):
            raise TypeError(
                "checkpointing needs the sharded SUM backend; build the "
                "engine with EngineConfig(sum_backend='sharded')"
            )
        kwargs.setdefault("telemetry", self.config.telemetry)
        return Checkpointer(self.sums, directory, cache=cache, **kwargs)

    def replica_service(
        self, directory, mmap: bool = True, **kwargs
    ) -> "tuple[RecommendationService, ReplicaRefresher]":
        """A serving facade over a checkpointed replica, plus its refresher.

        Loads the manifest's current generation read-only, builds the
        same scorer registry as :meth:`recommendation_service` over it,
        and returns the service together with a
        :class:`~repro.serving.replica.ReplicaRefresher` that swaps new
        generations under it (``poll()`` on your cadence, or ``start()``
        with an interval).  Note the propensity/appeal/engagement
        adapters read live engine state for their *base scores*; the
        emotional Advice stage is what serves from the replica.
        """
        from repro.serving.replica import ReplicaRefresher

        replica = ShardedSumStore.load(directory, mmap=mmap)
        service = self.recommendation_service(sums=replica)
        kwargs.setdefault("telemetry", self.config.telemetry)
        return service, ReplicaRefresher(directory, service, mmap=mmap, **kwargs)

    # -- delivery ----------------------------------------------------------

    def run_campaign(
        self,
        spec: CampaignSpec,
        scored: bool = True,
        personalize: bool = True,
        retrain: bool = True,
    ) -> CampaignResult:
        """Deliver one campaign end to end.

        Parameters
        ----------
        spec:
            The campaign to run.
        scored:
            Attach propensity scores (requires trained model or ``retrain``).
        personalize:
            Use the Messaging Agent (False ⇒ standard message for everyone,
            the paper's implicit baseline).
        retrain:
            Retrain the propensity model on history before delivering.
        """
        if retrain:
            self.train_propensity()
        course = self.world.catalog.get(spec.course_id)
        targets = select_random_targets(
            self.world.population.user_ids(),
            spec.target_fraction,
            spec.campaign_id,
            seed=self.config.seed,
        )
        scores: dict[int, float] = {}
        if scored and self.model is not None:
            # Raw calibrated propensities through the serving layer's batch
            # path (adjust=False: delivery ranks on the calibrated model;
            # the Advice stage already shaped the training signal).
            column = self.recommendation_service().score_matrix(
                targets, [course.course_id], scorer="propensity", adjust=False
            )[:, 0]
            for uid, p in zip(targets, column):
                scores[uid] = float(p)

        result = CampaignResult(spec=spec)
        open_action = (
            "push_open" if spec.channel == "push" else "newsletter_open"
        )
        click_action = (
            "push_click" if spec.channel == "push" else "newsletter_click"
        )
        for uid in targets:
            user = self.world.population.get(uid)
            model = self.sums.get_or_create(uid)
            with self._sum_write_guard(uid):
                self.policy.apply_decay(model)

            if personalize:
                assignment = self.assigner.assign(model, course)
            else:
                self.assigner.assign(model, course)
                # Force the standard text regardless of sensibilities.
                from repro.messaging.assigner import (
                    AssignmentCase,
                    MessageAssignment,
                )
                from repro.messaging.templates import STANDARD_MESSAGE

                assignment = MessageAssignment(
                    user_id=uid,
                    course_id=course.course_id,
                    case=AssignmentCase.STANDARD,
                    attribute=None,
                    text=STANDARD_MESSAGE.render(course.title),
                )

            question = None
            budget = self.config.eit_questions_per_user
            if budget is None or len(model.asked_questions) < budget:
                question = self.eit.ask(model)

            outcome = self.world.simulate_touch(
                user, course, assignment.attribute, spec.campaign_id, question
            )

            # -- LifeLog events ------------------------------------------
            moment = self._clock
            # "course" carries the advertised item so streaming replay can
            # resolve the emotions behind a campaign interaction ("target"
            # stays the campaign id for attribution queries).
            if outcome.opened:
                self.event_log.append(Event(
                    moment, uid, open_action, ActionCategory.CAMPAIGN,
                    payload={"target": spec.campaign_id,
                             "course": str(course.course_id)},
                ))
            if outcome.clicked:
                self.event_log.append(Event(
                    moment + 30.0, uid, click_action, ActionCategory.CAMPAIGN,
                    payload={"target": spec.campaign_id,
                             "course": str(course.course_id)},
                ))
            if outcome.transacted:
                # "via" marks the event as campaign-caused so the revealed-
                # preference extractor can exclude it: the transaction IS
                # the label, and folding it back into features would leak
                # outcomes into the very model that predicts them.
                self.event_log.append(Event(
                    moment + 120.0, uid, "course_info",
                    ActionCategory.INFO_REQUEST,
                    payload={"target": str(course.course_id),
                             "via": spec.campaign_id},
                ))
            if question is not None and outcome.answered_option is not None:
                self.event_log.append(Event(
                    moment + 60.0, uid, "eit_answer",
                    ActionCategory.EIT_ANSWER,
                    payload={"target": question.qid,
                             "opt": str(outcome.answered_option)},
                ))

            # -- SUM updates (Fig. 4) --------------------------------------
            with self._sum_write_guard(uid):
                if question is not None and outcome.answered_option is not None:
                    self.eit.record_answer(
                        model, question, outcome.answered_option
                    )
                backing = emotions_linked_to(assignment.attribute)
                if not backing and (outcome.transacted or outcome.clicked):
                    # Standard message but the user still engaged: credit
                    # the emotions behind the course's own salient
                    # attributes (Fig. 4's "related attributes and values").
                    backing = course.linked_emotions()
                if backing:
                    if outcome.transacted:
                        self.policy.reward(
                            model, backing, self.config.reward_transaction
                        )
                    elif outcome.clicked:
                        self.policy.reward(
                            model, backing, self.config.reward_click
                        )
                    elif outcome.opened:
                        self.policy.reward(
                            model, backing, self.config.reward_open
                        )
                    elif assignment.attribute is not None:
                        self.policy.punish(
                            model, backing, self.config.punish_ignore
                        )
                self.analyzer.analyze(model)

            result.touches.append(TouchRecord(
                user_id=uid,
                campaign_id=spec.campaign_id,
                assignment=assignment,
                opened=outcome.opened,
                clicked=outcome.clicked,
                transacted=outcome.transacted,
                answered_option=outcome.answered_option,
                propensity=scores.get(uid),
            ))
            self._training_rows.append((uid, course.course_id, outcome.transacted))

        self._clock += 7 * 86_400.0  # one campaign per week
        self._refresh_behavior_features()
        for cache in self._live_caches:
            cache.invalidate(targets)
        self.history.append(result)
        return result

    def run_plan(
        self,
        plan: list[CampaignSpec],
        warmup: list[CampaignSpec] | None = None,
        personalize: bool = True,
    ) -> list[CampaignResult]:
        """Run warm-up campaigns (unscored, standard messages) then the plan.

        Warm-ups bootstrap the Gradual EIT coverage and the first training
        set, mirroring the paper's "marketing strategy ... designed whereby
        emotional attributes and their values are collected" before the
        reported campaigns.
        """
        for spec in warmup or []:
            self.run_campaign(spec, scored=False, personalize=False, retrain=False)
        return [
            self.run_campaign(spec, scored=True, personalize=personalize)
            for spec in plan
        ]
