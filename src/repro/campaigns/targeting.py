"""Target selection.

The paper targeted "1,340,432 users in each campaign chosen in random way"
(Section 5.4) — the *ranking* happened on top of that random draw, which
is what makes the cumulative redemption curve an honest evaluation rather
than a selection effect.  :func:`select_random_targets` reproduces that
draw; ranked sub-targeting (send only to the top fraction) is provided for
the what-if analyses in the benches.
"""

from __future__ import annotations

from typing import Sequence


from repro.datagen.seeds import derive_rng


def select_random_targets(
    user_ids: Sequence[int],
    fraction: float,
    campaign_key: str,
    seed: int = 7,
) -> list[int]:
    """A reproducible random subset of ``fraction`` of the users."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction {fraction} outside (0, 1]")
    if not user_ids:
        return []
    rng = derive_rng(seed, "targets", campaign_key)
    n = max(1, int(round(len(user_ids) * fraction)))
    chosen = rng.choice(len(user_ids), size=min(n, len(user_ids)), replace=False)
    return sorted(int(user_ids[int(i)]) for i in chosen)


def top_fraction_by_score(
    user_ids: Sequence[int],
    scores: Sequence[float],
    fraction: float,
) -> list[int]:
    """The top ``fraction`` of users by descending score (selection function).

    Ties break by user id for determinism.
    """
    if len(user_ids) != len(scores):
        raise ValueError(f"length mismatch: {len(user_ids)} vs {len(scores)}")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction {fraction} outside (0, 1]")
    order = sorted(
        range(len(user_ids)), key=lambda i: (-float(scores[i]), user_ids[i])
    )
    k = max(1, int(round(len(user_ids) * fraction)))
    return [int(user_ids[i]) for i in order[:k]]
