"""Campaign run records.

:class:`TouchRecord` is one delivered communication with everything SPA
knew and observed about it; :class:`CampaignResult` aggregates a whole
campaign and computes the Fig. 6(b) quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen.campaigns_plan import CampaignSpec
from repro.messaging.assigner import MessageAssignment


@dataclass(frozen=True)
class TouchRecord:
    """One delivered Push/newsletter touch."""

    user_id: int
    campaign_id: str
    assignment: MessageAssignment
    opened: bool
    clicked: bool
    transacted: bool
    answered_option: int | None
    propensity: float | None  # model score at send time (None in warm-up)


@dataclass
class CampaignResult:
    """All touches of one campaign plus derived metrics."""

    spec: CampaignSpec
    touches: list[TouchRecord] = field(default_factory=list)

    @property
    def campaign_id(self) -> str:
        """Identifier from the spec."""
        return self.spec.campaign_id

    @property
    def n_targets(self) -> int:
        """How many users were contacted."""
        return len(self.touches)

    @property
    def useful_impacts(self) -> int:
        """Transactions produced by this campaign (paper's 'useful impacts')."""
        return sum(1 for t in self.touches if t.transacted)

    @property
    def open_rate(self) -> float:
        """Share of contacted users who opened."""
        return self._rate(lambda t: t.opened)

    @property
    def click_rate(self) -> float:
        """Share of contacted users who clicked through."""
        return self._rate(lambda t: t.clicked)

    @property
    def predictive_score(self) -> float:
        """Useful impacts / contacted — the Fig. 6(b) per-campaign score."""
        return self._rate(lambda t: t.transacted)

    @property
    def answer_rate(self) -> float:
        """Share of contacted users who answered the EIT question."""
        return self._rate(lambda t: t.answered_option is not None)

    def _rate(self, predicate) -> float:
        if not self.touches:
            return 0.0
        return sum(1 for t in self.touches if predicate(t)) / len(self.touches)

    def scores_and_outcomes(self) -> tuple[np.ndarray, np.ndarray]:
        """(propensity scores, transacted 0/1) for touches that were scored.

        Touches delivered without a model score (warm-up) are excluded —
        they cannot appear on a ranking curve.
        """
        scored = [t for t in self.touches if t.propensity is not None]
        scores = np.asarray([t.propensity for t in scored], dtype=np.float64)
        outcomes = np.asarray([int(t.transacted) for t in scored], dtype=np.int64)
        return scores, outcomes

    def case_distribution(self) -> dict[str, int]:
        """Message-case counts for this campaign (Fig. 5 shape)."""
        counts: dict[str, int] = {}
        for touch in self.touches:
            key = touch.assignment.case.value
            counts[key] = counts.get(key, 0) + 1
        return counts
