"""The SVM propensity stack (Section 5.2).

"SVMs are used to classify and to predict users' behaviors from attributes
which have a high impact on their emotional responses.  Furthermore, SVMs
have been used as a learning component in ranking users to assess their
propensity to accept a recommended item."

:class:`FeatureBuilder` assembles the per-user design matrix from the
three SUM families (objective demographics, behavioural LifeLog features,
learned emotional attributes); each block can be toggled for the ablation
benches.  :class:`PropensityModel` is scaler → estimator → Platt
calibration; the estimator defaults to the paper's linear SVM but every
baseline of :mod:`repro.ml` can be slotted in (bench A2).
"""

from __future__ import annotations

from typing import Literal, Sequence

import numpy as np

from repro.core.emotions import EMOTION_NAMES
from repro.core.four_branch import BRANCH_ORDER
from repro.core.sum_model import SmartUserModel, SumRepository
from repro.datagen.catalog import AFFINITY_LINKS, Course, PRODUCT_ATTRIBUTES
from repro.lifelog.preprocess import UserFeatures
from repro.ml.calibration import PlattScaler
from repro.ml.knn import KNNClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import GaussianNB
from repro.ml.preprocessing import NotFittedError, OneHotEncoder, StandardScaler
from repro.ml.svm import LinearSVM

EstimatorName = Literal["svm", "logistic", "naive_bayes", "knn"]

_CATEGORICAL_FIELDS = ("gender", "region", "education", "employment", "language")


def _normalized_intensities(model: SmartUserModel) -> dict[str, float]:
    """L1-normalized emotional intensities.

    Users differ widely in how many EIT answers they have given; the
    normalized profile makes the *shape* of the emotional make-up
    comparable across light and heavy answerers.
    """
    total = sum(model.emotional[n] for n in EMOTION_NAMES)
    if total <= 0:
        return {n: 0.0 for n in EMOTION_NAMES}
    return {n: model.emotional[n] / total for n in EMOTION_NAMES}


def estimated_appeal(
    values: dict[str, float] | None, course: Course, model: SmartUserModel
) -> float:
    """SPA's own estimate of a course's emotional appeal to one user.

    The same link structure the Advice stage uses (domain knowledge the
    Attributes Manager curates — *not* the user's latent traits), weighted
    by the SUM's learned values: ``Σ traitŝ·gain·presence / link_mass``.
    ``values`` defaults to the model's emotional intensities.
    """
    if values is None:
        values = {n: model.emotional[n] for n in EMOTION_NAMES}
    total = 0.0
    for emotion, targets in AFFINITY_LINKS.items():
        level = values.get(emotion, 0.0)
        if level == 0.0:
            continue
        for attribute, gain in targets.items():
            presence = course.attributes.get(attribute, 0.0)
            if presence:
                total += level * gain * presence
    mass = course.link_mass()
    return total / mass if mass > 0 else 0.0


class FeatureBuilder:
    """Per-user design matrix assembly with toggleable blocks."""

    def __init__(
        self,
        include_demographics: bool = True,
        include_behavior: bool = True,
        include_emotional: bool = True,
        svd_rank: int = 0,
        include_subjective: bool = True,
    ) -> None:
        if not (include_demographics or include_behavior or include_emotional):
            raise ValueError("at least one feature block must be enabled")
        if svd_rank < 0:
            raise ValueError(f"svd_rank must be >= 0, got {svd_rank}")
        self.include_demographics = include_demographics
        self.include_behavior = include_behavior
        self.include_emotional = include_emotional
        self.include_subjective = include_subjective
        self.svd_rank = svd_rank
        self._encoders: dict[str, OneHotEncoder] = {}
        self._fitted = False

    def fit(self, sums: SumRepository) -> "FeatureBuilder":
        """Learn categorical vocabularies from SUM objective attributes."""
        for field in _CATEGORICAL_FIELDS:
            values = [
                str(model.objective.get(field, "unknown")) for model in sums
            ]
            self._encoders[field] = OneHotEncoder().fit(values)
        self._fitted = True
        return self

    def feature_names(self, with_course: bool = False) -> list[str]:
        """Column names of the assembled matrix."""
        if not self._fitted:
            raise NotFittedError("FeatureBuilder.feature_names before fit")
        names: list[str] = []
        if self.include_demographics:
            names.append("age_scaled")
            for field in _CATEGORICAL_FIELDS:
                names.extend(self._encoders[field].feature_names(field))
        if self.include_behavior:
            names.extend(UserFeatures.feature_names())
        if self.include_emotional:
            names.extend(f"emotion[{n}]" for n in EMOTION_NAMES)
            names.extend(f"sensibility[{n}]" for n in EMOTION_NAMES)
            names.extend(f"ei[{b.value}]" for b in BRANCH_ORDER)
        if self.include_subjective:
            names.extend(f"pref[{a}]" for a in PRODUCT_ATTRIBUTES)
        if self.svd_rank:
            names.extend(f"eit_svd[{k}]" for k in range(self.svd_rank))
        if with_course:
            names.extend(f"course[{a}]" for a in PRODUCT_ATTRIBUTES)
            if self.include_emotional:
                names.extend(
                    [
                        "est_appeal[intensity]",
                        "est_appeal[sensibility]",
                        "est_appeal[normalized]",
                    ]
                )
            if self.include_subjective:
                names.append("pref_course_match")
            if self.include_behavior:
                names.extend(["engagement[course]", "engagement[area]"])
        return names

    def build(
        self,
        sums: SumRepository,
        behavior_features: dict[int, UserFeatures],
        user_ids: Sequence[int],
        course: Course | None = None,
        embeddings: dict[int, np.ndarray] | None = None,
        course_engagement: dict[int, dict[int, float]] | None = None,
        area_engagement: dict[int, dict[str, float]] | None = None,
    ) -> np.ndarray:
        """Assemble the design matrix for ``user_ids`` (row order preserved).

        With ``course`` given, course-context features are appended: the
        course's product-attribute presences (letting a model trained
        across campaigns learn per-product difficulty) and SPA's estimated
        emotional appeal of the course to each user (the learnable
        user × course interaction).

        With ``svd_rank`` configured, ``embeddings`` must map user ids to
        SVD projections of the sparse EIT answer matrix — the Section 5.2
        dimensionality-reduction step.  Users without an embedding get the
        zero vector (they answered nothing; structurally sparse).
        """
        if not self._fitted:
            raise NotFittedError("FeatureBuilder.build before fit")
        blocks: list[np.ndarray] = []
        models = [sums.get_or_create(int(uid)) for uid in user_ids]

        if self.include_demographics:
            ages = np.asarray(
                [float(m.objective.get("age", 30)) for m in models]
            )[:, None]
            demo_blocks = [(ages - 30.0) / 15.0]
            for field in _CATEGORICAL_FIELDS:
                values = [str(m.objective.get(field, "unknown")) for m in models]
                demo_blocks.append(self._encoders[field].transform(values))
            blocks.append(np.hstack(demo_blocks))

        if self.include_behavior:
            rows = []
            for uid in user_ids:
                features = behavior_features.get(int(uid))
                if features is None:
                    features = UserFeatures(user_id=int(uid))
                rows.append(features.as_vector())
            blocks.append(np.vstack(rows))

        if self.include_emotional:
            emotional = np.vstack([m.emotional_vector() for m in models])
            sensibility = np.vstack(
                [
                    np.asarray(
                        [m.sensibility.get(n, 0.0) for n in EMOTION_NAMES]
                    )
                    for m in models
                ]
            )
            ei = np.vstack(
                [
                    np.asarray([m.ei_profile.scores[b] for b in BRANCH_ORDER])
                    for m in models
                ]
            )
            blocks.append(np.hstack([emotional, sensibility, ei]))

        if self.include_subjective:
            blocks.append(
                np.vstack(
                    [
                        np.asarray(
                            [
                                m.subjective.get(f"pref[{a}]", 0.0)
                                for a in PRODUCT_ATTRIBUTES
                            ]
                        )
                        for m in models
                    ]
                )
            )

        if self.svd_rank:
            zero = np.zeros(self.svd_rank)
            rows = []
            for uid in user_ids:
                vector = (embeddings or {}).get(int(uid))
                if vector is None:
                    rows.append(zero)
                else:
                    vector = np.asarray(vector, dtype=np.float64)
                    if vector.shape != (self.svd_rank,):
                        raise ValueError(
                            f"embedding for user {uid} has shape "
                            f"{vector.shape}, expected ({self.svd_rank},)"
                        )
                    rows.append(vector)
            blocks.append(np.vstack(rows))

        if course is not None:
            presence = np.asarray(
                [course.attributes.get(a, 0.0) for a in PRODUCT_ATTRIBUTES]
            )
            blocks.append(np.tile(presence, (len(models), 1)))
            if self.include_emotional:
                interactions = np.asarray(
                    [
                        [
                            estimated_appeal(None, course, m),
                            estimated_appeal(m.sensibility, course, m),
                            estimated_appeal(
                                _normalized_intensities(m), course, m
                            ),
                        ]
                        for m in models
                    ]
                )
                blocks.append(interactions)
            if self.include_subjective:
                # Cosine-style match of revealed preferences to the course.
                norm = float(np.linalg.norm(presence)) or 1.0
                matches = []
                for m in models:
                    pref = np.asarray(
                        [
                            m.subjective.get(f"pref[{a}]", 0.0)
                            for a in PRODUCT_ATTRIBUTES
                        ]
                    )
                    pref_norm = float(np.linalg.norm(pref))
                    if pref_norm == 0.0:
                        matches.append(0.0)
                    else:
                        matches.append(
                            float(pref @ presence) / (pref_norm * norm)
                        )
                blocks.append(np.asarray(matches)[:, None])
            if self.include_behavior:
                # Retargeting evidence: how much organic engagement this
                # user showed with the campaign course and its subject area.
                direct = np.asarray(
                    [
                        np.log1p(
                            (course_engagement or {})
                            .get(int(uid), {})
                            .get(course.course_id, 0.0)
                        )
                        for uid in user_ids
                    ]
                )
                area = np.asarray(
                    [
                        np.log1p(
                            (area_engagement or {})
                            .get(int(uid), {})
                            .get(course.area, 0.0)
                        )
                        for uid in user_ids
                    ]
                )
                blocks.append(np.column_stack([direct, area]))

        return np.hstack(blocks)


def _make_estimator(name: EstimatorName, seed: int):
    if name == "svm":
        return LinearSVM(c=1.0, epochs=12, batch_size=64, seed=seed)
    if name == "logistic":
        return LogisticRegression(l2=1e-3)
    if name == "naive_bayes":
        return GaussianNB()
    if name == "knn":
        return KNNClassifier(k=25, weighted=True)
    raise ValueError(f"unknown estimator {name!r}")


class PropensityModel:
    """scaler → estimator → Platt calibration."""

    def __init__(self, estimator: EstimatorName = "svm", seed: int = 0) -> None:
        self.estimator_name: EstimatorName = estimator
        self.seed = seed
        self.scaler = StandardScaler()
        self.estimator = _make_estimator(estimator, seed)
        self.calibrator = PlattScaler()
        self._fitted = False

    def fit(self, x: np.ndarray, y: np.ndarray) -> "PropensityModel":
        """Train on touch-level features and useful-impact labels.

        Calibration uses a held-out third of the data so the sigmoid is not
        fit on the margins the estimator already saw.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if len(x) != len(y):
            raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
        if len(set(np.unique(y).tolist())) < 2:
            raise ValueError("need both outcome classes to fit propensity")
        xs = self.scaler.fit_transform(x)
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(len(xs))
        split = max(1, len(xs) // 3)
        calibration_ids, train_ids = order[:split], order[split:]
        # Guard: both classes must appear in both partitions.
        if (
            len(set(y[train_ids].tolist())) < 2
            or len(set(y[calibration_ids].tolist())) < 2
        ):
            train_ids = calibration_ids = order
        self.estimator.fit(xs[train_ids], y[train_ids])
        margins = self.estimator.decision_function(xs[calibration_ids])
        self.calibrator.fit(margins, y[calibration_ids])
        self._fitted = True
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Raw ranking scores."""
        if not self._fitted:
            raise NotFittedError("PropensityModel.decision_function before fit")
        return self.estimator.decision_function(self.scaler.transform(x))

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Calibrated P(useful impact)."""
        if not self._fitted:
            raise NotFittedError("PropensityModel.predict_proba before fit")
        return self.calibrator.predict_proba(self.decision_function(x))
