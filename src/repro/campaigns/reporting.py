"""Predictive scores and campaign summaries — Fig. 6(b).

"Fig. 6(b) shows the predictive scores of the total set of ten Push and
newsletters campaigns.  So, SPA achieves an average performance of 21%, it
means 282,938 useful impacts."

:func:`build_summary` computes the per-campaign predictive scores, the
average performance, and the projection of the measured rates onto the
paper's population scale (1,340,432 targets per campaign) so the report
can sit side by side with the published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaigns.campaign import CampaignResult
from repro.datagen.campaigns_plan import (
    PAPER_AVG_PERFORMANCE,
    PAPER_TARGET_USERS,
    PAPER_USEFUL_IMPACTS,
)


@dataclass(frozen=True)
class CampaignReport:
    """Per-campaign line of the Fig. 6(b) table."""

    campaign_id: str
    channel: str
    n_targets: int
    useful_impacts: int
    predictive_score: float
    open_rate: float
    answer_rate: float

    @property
    def projected_impacts_paper_scale(self) -> int:
        """Useful impacts if the campaign had the paper's 1.34M targets."""
        return int(round(self.predictive_score * PAPER_TARGET_USERS))


@dataclass(frozen=True)
class CampaignSummary:
    """The whole Fig. 6(b) table plus paper-side references."""

    reports: tuple[CampaignReport, ...]
    average_performance: float
    total_useful_impacts: int
    paper_average_performance: float = PAPER_AVG_PERFORMANCE
    paper_useful_impacts: int = PAPER_USEFUL_IMPACTS

    @property
    def projected_total_impacts_paper_scale(self) -> int:
        """Average rate projected onto one paper-scale campaign target set.

        The paper's 282,938 impacts equal 21.1% of a single 1,340,432-user
        target set; this property reproduces that accounting.
        """
        return int(round(self.average_performance * PAPER_TARGET_USERS))

    def table_rows(self) -> list[dict[str, object]]:
        """Rows ready for tabular printing."""
        rows: list[dict[str, object]] = []
        for report in self.reports:
            rows.append(
                {
                    "campaign": report.campaign_id,
                    "channel": report.channel,
                    "targets": report.n_targets,
                    "impacts": report.useful_impacts,
                    "score": round(report.predictive_score, 4),
                    "open_rate": round(report.open_rate, 4),
                    "projected@1.34M": report.projected_impacts_paper_scale,
                }
            )
        return rows


def build_summary(results: list[CampaignResult]) -> CampaignSummary:
    """Aggregate campaign results into the Fig. 6(b) summary."""
    if not results:
        raise ValueError("no campaign results to summarize")
    reports = tuple(
        CampaignReport(
            campaign_id=result.campaign_id,
            channel=result.spec.channel,
            n_targets=result.n_targets,
            useful_impacts=result.useful_impacts,
            predictive_score=result.predictive_score,
            open_rate=result.open_rate,
            answer_rate=result.answer_rate,
        )
        for result in results
    )
    average = sum(r.predictive_score for r in reports) / len(reports)
    total = sum(r.useful_impacts for r in reports)
    return CampaignSummary(
        reports=reports,
        average_performance=average,
        total_useful_impacts=total,
    )


def format_table(rows: list[dict[str, object]]) -> str:
    """Plain-text table rendering used by benches and examples."""
    if not rows:
        return "(empty)"
    headers = list(rows[0])
    widths = {
        h: max(len(str(h)), max(len(str(r[h])) for r in rows)) for h in headers
    }
    def fmt_row(values: list[str]) -> str:
        return " | ".join(str(v).rjust(widths[h]) for h, v in zip(headers, values))
    lines = [fmt_row(headers), "-+-".join("-" * widths[h] for h in headers)]
    lines.extend(fmt_row([r[h] for h in headers]) for r in rows)
    return "\n".join(lines)
