"""Cumulative redemption curves — Fig. 6(a).

"Fig. 6(a) shows that with the 40% of commercial action (i.e. the effort
to send Push and newsletters), SPA achieves more than 76% of useful
impacts.  So, we have improved the redemption of Push and newsletters
campaigns in a 90%."

:func:`combined_gain_curve` pools all scored touches of a campaign set and
computes the ranked capture curve; :func:`redemption_improvement` compares
the personalized response rate to a standard-message baseline rate;
:func:`ascii_curve` renders the curve the way a terminal bench can print.
"""

from __future__ import annotations

import numpy as np

from repro.campaigns.campaign import CampaignResult


def pooled_scores(
    results: list[CampaignResult],
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate (scores, outcomes) over all scored touches."""
    scores_parts, outcome_parts = [], []
    for result in results:
        scores, outcomes = result.scores_and_outcomes()
        if len(scores):
            scores_parts.append(scores)
            outcome_parts.append(outcomes)
    if not scores_parts:
        raise ValueError("no scored touches in the given campaigns")
    return np.concatenate(scores_parts), np.concatenate(outcome_parts)


def combined_gain_curve(
    results: list[CampaignResult], n_points: int = 101
) -> tuple[np.ndarray, np.ndarray]:
    """The Fig. 6(a) curve over a set of campaigns.

    "Commercial action" is per-campaign effort: at fraction ``f`` each
    campaign sends to its own top-``f`` users by propensity (the standard
    marketing lift-chart construction); the curve reports the share of all
    useful impacts captured.  This matches how a campaign manager actually
    spends a 40% budget across ten separate sends.
    """
    per_campaign: list[tuple[np.ndarray, np.ndarray]] = []
    total_impacts = 0
    for result in results:
        scores, outcomes = result.scores_and_outcomes()
        if len(scores) == 0:
            continue
        order = np.argsort(-scores, kind="stable")
        per_campaign.append((outcomes[order], np.cumsum(outcomes[order])))
        total_impacts += int(outcomes.sum())
    if not per_campaign:
        raise ValueError("no scored touches in the given campaigns")
    if total_impacts == 0:
        raise ValueError("no useful impacts across the given campaigns")
    fractions = np.linspace(0.0, 1.0, n_points)
    captured = np.zeros(n_points)
    for i, fraction in enumerate(fractions):
        hit = 0
        for ordered, cumulative in per_campaign:
            k = int(round(fraction * len(ordered)))
            if k > 0:
                hit += int(cumulative[k - 1])
        captured[i] = hit / total_impacts
    return fractions, captured


def gain_at_fraction(results: list[CampaignResult], fraction: float) -> float:
    """Captured-impact share at one commercial-action fraction."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction {fraction} outside [0, 1]")
    fractions, captured = combined_gain_curve(results, n_points=1001)
    return float(np.interp(fraction, fractions, captured))


def redemption_improvement(
    personalized_rate: float, baseline_rate: float
) -> float:
    """Relative improvement of redemption, e.g. 0.9 for the paper's +90%."""
    if baseline_rate <= 0:
        raise ValueError(f"baseline rate must be positive, got {baseline_rate}")
    return personalized_rate / baseline_rate - 1.0


def ascii_curve(
    fractions: np.ndarray,
    captured: np.ndarray,
    width: int = 51,
    height: int = 16,
    mark: float | None = 0.4,
) -> str:
    """Render a gain curve as ASCII art (the bench's Fig. 6a output).

    ``mark`` draws a vertical guide at one fraction (default the paper's
    40% operating point).
    """
    if len(fractions) != len(captured):
        raise ValueError("fractions/captured length mismatch")
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(fractions, captured):
        col = int(round(x * (width - 1)))
        row = height - 1 - int(round(y * (height - 1)))
        grid[row][col] = "*"
    # Random-targeting diagonal for reference.
    for i in range(min(width, height * 3)):
        x = i / (width - 1)
        col = int(round(x * (width - 1)))
        row = height - 1 - int(round(x * (height - 1)))
        if 0 <= row < height and grid[row][col] == " ":
            grid[row][col] = "."
    if mark is not None:
        col = int(round(mark * (width - 1)))
        for row in range(height):
            if grid[row][col] == " ":
                grid[row][col] = "|"
    lines = ["100% ┤" + "".join(grid[0])]
    for row in range(1, height - 1):
        prefix = "     │"
        if row == height // 2:
            prefix = " 50% ┤"
        lines.append(prefix + "".join(grid[row]))
    lines.append("  0% └" + "─" * width)
    lines.append("      0%" + " " * (width // 2 - 6) + "50%"
                 + " " * (width - width // 2 - 8) + "100%")
    lines.append("          fraction of commercial action (ranked by SPA)")
    return "\n".join(lines)
