"""The 984-action vocabulary.

Section 5.1: "The set of possible on-line user's actions on the web of
emagister.com was 984."  The exact vocabulary is proprietary; we generate a
structured equivalent of exactly 984 action names, partitioned over the
:class:`~repro.lifelog.events.ActionCategory` families in proportions
plausible for an e-learning portal (navigation dominates).
"""

from __future__ import annotations

from repro.lifelog.events import ActionCategory

#: Target vocabulary size from the paper.
VOCABULARY_SIZE = 984

#: Course subject areas used to parameterize action names.
SUBJECT_AREAS: tuple[str, ...] = (
    "informatics", "languages", "business", "health", "design",
    "engineering", "law", "marketing", "education", "tourism",
    "finance", "construction",
)

#: Per-category action stems; each stem is expanded across subject areas
#: (or devices/facets) until the category quota is filled.
_CATEGORY_PLAN: list[tuple[ActionCategory, int, list[str]]] = [
    (ActionCategory.NAVIGATION, 420, [
        "view_course", "view_center", "list_courses", "search", "filter",
        "compare", "view_syllabus", "view_reviews", "paginate", "sort",
    ]),
    (ActionCategory.INFO_REQUEST, 144, [
        "request_info", "request_brochure", "request_callback", "ask_question",
    ]),
    (ActionCategory.ENROLLMENT, 96, [
        "enroll", "reserve_place", "start_checkout", "complete_checkout",
    ]),
    (ActionCategory.RATING, 72, ["rate_course", "rate_center", "rate_teacher"]),
    (ActionCategory.OPINION, 72, ["post_opinion", "reply_opinion", "vote_opinion"]),
    (ActionCategory.CAMPAIGN, 84, [
        "open_push", "click_push", "open_newsletter", "click_newsletter",
        "unsubscribe", "forward", "view_landing",
    ]),
    (ActionCategory.EIT_ANSWER, 48, ["answer_question", "skip_question"]),
    (ActionCategory.ACCOUNT, 48, ["login", "logout", "edit_profile", "set_preference"]),
]


class ActionVocabulary:
    """Exactly 984 action names with category lookup."""

    def __init__(self) -> None:
        self._category_of: dict[str, ActionCategory] = {}
        names: list[str] = []
        for category, quota, stems in _CATEGORY_PLAN:
            produced = 0
            area_cycle = 0
            while produced < quota:
                stem = stems[produced % len(stems)]
                area = SUBJECT_AREAS[area_cycle % len(SUBJECT_AREAS)]
                if produced // len(stems) == 0 and produced % len(stems) == produced:
                    # First pass: bare stems parameterized by area for variety.
                    name = f"{stem}_{area}"
                else:
                    name = f"{stem}_{area}_{produced // len(stems)}"
                if name in self._category_of:
                    name = f"{name}_x{produced}"
                self._category_of[name] = category
                names.append(name)
                produced += 1
                area_cycle += 1
        if len(names) != VOCABULARY_SIZE:
            raise AssertionError(
                f"vocabulary size {len(names)} != {VOCABULARY_SIZE}"
            )
        self._names = tuple(names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, action: object) -> bool:
        return action in self._category_of

    @property
    def names(self) -> tuple[str, ...]:
        """All action names, generation order."""
        return self._names

    def category(self, action: str) -> ActionCategory:
        """Category of one action name."""
        try:
            return self._category_of[action]
        except KeyError:
            raise KeyError(f"unknown action {action!r}") from None

    def by_category(self, category: ActionCategory) -> list[str]:
        """All actions of one category, generation order."""
        return [a for a in self._names if self._category_of[a] is category]

    def counts(self) -> dict[str, int]:
        """Action counts per category value."""
        out: dict[str, int] = {}
        for action in self._names:
            key = self._category_of[action].value
            out[key] = out.get(key, 0) + 1
        return out
