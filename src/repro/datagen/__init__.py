"""Synthetic emagister.com: population, catalog, actions, behaviour.

The paper's evaluation data is proprietary (Section 5.1: 3,162,069
registered users, 75 attributes, 984 actions, ~50 GB/month of weblogs).
This subpackage builds the closest synthetic equivalent (see DESIGN.md,
substitution table): a population with socio-demographics and *latent*
emotional traits, a course catalog with emotionally-charged product
attributes, the full 984-action vocabulary, and a stochastic behaviour
model that decides — from the latent traits the recommender never sees
directly — whether each user opens, clicks, answers EIT questions and
produces useful impacts.

Everything is deterministic under a root seed (:mod:`repro.datagen.seeds`).
"""

from repro.datagen.actions import ActionVocabulary
from repro.datagen.behavior import BehaviorModel, BehaviorParams, TouchOutcome
from repro.datagen.campaigns_plan import CampaignSpec, default_campaign_plan
from repro.datagen.catalog import AFFINITY_LINKS, Course, CourseCatalog, PRODUCT_ATTRIBUTES
from repro.datagen.comoda import ComodaDataset, generate_comoda
from repro.datagen.population import Population, UserRecord
from repro.datagen.seeds import derive_rng

__all__ = [
    "AFFINITY_LINKS",
    "ActionVocabulary",
    "BehaviorModel",
    "BehaviorParams",
    "CampaignSpec",
    "ComodaDataset",
    "Course",
    "CourseCatalog",
    "PRODUCT_ATTRIBUTES",
    "Population",
    "TouchOutcome",
    "UserRecord",
    "default_campaign_plan",
    "derive_rng",
    "generate_comoda",
]
