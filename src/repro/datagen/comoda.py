"""A synthetic LDOS-CoMoDa-style affective ratings dataset.

The A5 extension bench compares plain collaborative filtering against
emotion-context-aware CF.  The public LDOS-CoMoDa dataset (movie ratings
annotated with the viewer's mood and induced emotion) is unavailable
offline, so :func:`generate_comoda` synthesizes a dataset with the same
schema and a *planted context effect*: a viewer's rating depends not only
on (user, item) preference but on the interaction between their current
mood/emotion and the movie's genre profile.  Context-aware methods can
exploit that; context-blind methods cannot — which is exactly the
qualitative contrast the bench must show.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen.seeds import derive_rng

GENRES: tuple[str, ...] = (
    "comedy", "drama", "action", "horror", "romance", "documentary", "scifi",
)

#: Context vocabulary mirroring CoMoDa's annotation columns.
MOODS: tuple[str, ...] = ("positive", "neutral", "negative")
EMOTIONS: tuple[str, ...] = (
    "happy", "sad", "scared", "surprised", "angry", "neutral",
)

#: Planted context effect: (mood, genre) rating shifts.
_MOOD_GENRE_SHIFT: dict[tuple[str, str], float] = {
    ("positive", "comedy"): +0.55,
    ("positive", "action"): +0.25,
    ("negative", "comedy"): -0.35,
    ("negative", "drama"): +0.45,
    ("negative", "horror"): -0.45,
    ("neutral", "documentary"): +0.30,
}

#: Planted context effect: (emotion, genre) rating shifts.
_EMOTION_GENRE_SHIFT: dict[tuple[str, str], float] = {
    ("happy", "comedy"): +0.45,
    ("happy", "romance"): +0.25,
    ("sad", "drama"): +0.50,
    ("sad", "comedy"): -0.30,
    ("scared", "horror"): -0.60,
    ("surprised", "scifi"): +0.40,
    ("angry", "action"): +0.35,
}


@dataclass(frozen=True)
class ComodaRating:
    """One context-annotated rating row (CoMoDa schema subset)."""

    user_id: int
    item_id: int
    rating: float  # 1..5
    mood: str
    emotion: str

    def __post_init__(self) -> None:
        if not 1.0 <= self.rating <= 5.0:
            raise ValueError(f"rating {self.rating} outside 1..5")
        if self.mood not in MOODS:
            raise ValueError(f"unknown mood {self.mood!r}")
        if self.emotion not in EMOTIONS:
            raise ValueError(f"unknown emotion {self.emotion!r}")


@dataclass
class ComodaDataset:
    """The generated dataset plus its ground-truth generative pieces."""

    ratings: list[ComodaRating]
    n_users: int
    n_items: int
    item_genres: dict[int, str] = field(default_factory=dict)

    def split(
        self, test_fraction: float = 0.25, seed: int = 11
    ) -> tuple[list[ComodaRating], list[ComodaRating]]:
        """Random train/test split of the rating rows."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError(f"test_fraction {test_fraction} outside (0, 1)")
        rng = derive_rng(seed, "comoda-split")
        order = rng.permutation(len(self.ratings))
        k = int(round(len(self.ratings) * test_fraction))
        test_ids = set(order[:k].tolist())
        train = [r for i, r in enumerate(self.ratings) if i not in test_ids]
        test = [r for i, r in enumerate(self.ratings) if i in test_ids]
        return train, test


def generate_comoda(
    n_users: int = 250,
    n_items: int = 120,
    ratings_per_user: int = 30,
    latent_rank: int = 4,
    noise: float = 0.35,
    seed: int = 11,
) -> ComodaDataset:
    """Generate a context-annotated ratings dataset with planted effects.

    The base preference is a low-rank user×item structure (so plain CF has
    something to learn); the context shifts of this module are added on
    top (so context-aware CF has *more* to learn).
    """
    if min(n_users, n_items, ratings_per_user, latent_rank) < 1:
        raise ValueError("all size parameters must be >= 1")
    rng = derive_rng(seed, "comoda")
    user_factors = rng.normal(0.0, 0.8, size=(n_users, latent_rank))
    item_factors = rng.normal(0.0, 0.8, size=(n_items, latent_rank))
    item_genres = {
        item: GENRES[int(rng.integers(len(GENRES)))] for item in range(n_items)
    }
    user_bias = rng.normal(0.0, 0.3, size=n_users)
    item_bias = rng.normal(0.0, 0.3, size=n_items)

    ratings: list[ComodaRating] = []
    for user in range(n_users):
        items = rng.choice(n_items, size=min(ratings_per_user, n_items), replace=False)
        for item in items.tolist():
            mood = MOODS[int(rng.choice(len(MOODS), p=(0.4, 0.35, 0.25)))]
            emotion = EMOTIONS[int(rng.integers(len(EMOTIONS)))]
            genre = item_genres[item]
            base = (
                3.2
                + user_bias[user]
                + item_bias[item]
                + float(user_factors[user] @ item_factors[item]) * 0.45
            )
            shift = _MOOD_GENRE_SHIFT.get((mood, genre), 0.0)
            shift += _EMOTION_GENRE_SHIFT.get((emotion, genre), 0.0)
            value = base + shift + float(rng.normal(0.0, noise))
            value = float(np.clip(np.round(value * 2.0) / 2.0, 1.0, 5.0))
            ratings.append(
                ComodaRating(
                    user_id=user,
                    item_id=int(item),
                    rating=value,
                    mood=mood,
                    emotion=emotion,
                )
            )
    return ComodaDataset(
        ratings=ratings,
        n_users=n_users,
        n_items=n_items,
        item_genres=item_genres,
    )
