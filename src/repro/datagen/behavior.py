"""The ground-truth behaviour model.

This is the simulator's heart: given a user's *latent* traits and a
campaign touch (course + personalized message + optional EIT question), it
draws what the user does — opens, clicks, transacts ("useful impact"),
answers the question.  SPA never sees the traits; it sees only these
outcomes, exactly like the deployed system saw only emagister.com's logs.

Calibration targets (DESIGN.md Section 5): with the default
:class:`BehaviorParams`, an *untargeted* standard-message campaign yields a
useful-impact rate near 11%, and the latent structure supports a learned
ranking whose top-40% captures ≈76% of impacts (Fig. 6a) with a ≈21%
response rate among the contacted (Fig. 6b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.gradual_eit import EITQuestion
from repro.datagen.catalog import AFFINITY_LINKS, Course, CourseCatalog
from repro.datagen.population import Population, UserRecord
from repro.datagen.seeds import derive_rng
from repro.lifelog.events import ActionCategory, Event


def _sigmoid(z: float) -> float:
    if z >= 0:
        ez = np.exp(-z)
        return float(1.0 / (1.0 + ez))
    ez = np.exp(z)
    return float(ez / (1.0 + ez))


@dataclass(frozen=True)
class BehaviorParams:
    """Knobs of the ground-truth response process.

    ``base_logit`` sets the untargeted useful-impact rate; the ``w_*``
    weights control how much latent structure (and therefore learnable
    signal) the outcomes carry.

    The defaults are calibrated (DESIGN.md §5) so that, averaged over the
    ten default campaigns on the default population: standard-message
    useful-impact rate ≈ 0.11, oracle-personalized rate ≈ 0.22, oracle
    ranking AUC ≈ 0.9 with gain@40% ≈ 0.85 — leaving the headroom a
    *learned* SPA stack needs to land near the paper's operating points
    (21% predictive score, 76% of impacts at 40% of action).
    """

    base_logit: float = -3.60
    w_affinity: float = 19.0
    appeal_center: float = 0.235
    w_match: float = 2.6
    w_responsiveness: float = 0.45
    w_employment: float = 0.35
    open_offset: float = 1.6
    click_offset: float = 0.8
    answer_rate: float = 0.70
    answer_temperature: float = 10.0
    answer_neutral: float = 0.30

    def __post_init__(self) -> None:
        if not 0.0 <= self.answer_rate <= 1.0:
            raise ValueError(f"answer_rate {self.answer_rate} outside [0, 1]")
        if self.answer_temperature <= 0:
            raise ValueError("answer_temperature must be positive")


@dataclass(frozen=True)
class TouchOutcome:
    """What one user did with one campaign touch."""

    user_id: int
    opened: bool
    clicked: bool
    transacted: bool
    answered_option: int | None

    def __post_init__(self) -> None:
        if self.transacted and not self.clicked:
            raise ValueError("transaction implies click")
        if self.clicked and not self.opened:
            raise ValueError("click implies open")


class BehaviorModel:
    """Draws user behaviour from latent traits (deterministic under seed)."""

    def __init__(
        self,
        population: Population,
        catalog: CourseCatalog,
        params: BehaviorParams | None = None,
        seed: int = 7,
    ) -> None:
        self.population = population
        self.catalog = catalog
        self.params = params or BehaviorParams()
        self.seed = seed

    # -- ground-truth response ------------------------------------------------

    def message_match(self, user: UserRecord, message_attribute: str | None) -> float:
        """Ground-truth lift of a message keyed to one product attribute.

        ``Σ_e gain[e→attribute] · traits[e]`` — positive when the message
        resonates with the user's latent emotional make-up, negative when
        it backfires (e.g. "challenging" pitched to a frightened user).
        A ``None`` message (the standard, non-personalized text) has zero
        match by definition.
        """
        if message_attribute is None:
            return 0.0
        total = 0.0
        for emotion, targets in AFFINITY_LINKS.items():
            gain = targets.get(message_attribute)
            if gain is not None:
                total += gain * user.traits[emotion]
        return total

    def response_logit(
        self,
        user: UserRecord,
        course: Course,
        message_attribute: str | None = None,
    ) -> float:
        """The latent log-odds of a useful impact for this touch."""
        p = self.params
        logit = p.base_logit
        # Appeal is centered so base_logit stays interpretable as the
        # log-odds of an average user receiving a standard message.
        logit += p.w_affinity * (
            course.emotional_appeal(user.traits) - p.appeal_center
        )
        logit += p.w_match * self.message_match(user, message_attribute)
        logit += p.w_responsiveness * user.responsiveness
        if user.employment == "employed" and "job-oriented" in course.attributes:
            logit += p.w_employment
        return float(logit)

    def response_probability(
        self,
        user: UserRecord,
        course: Course,
        message_attribute: str | None = None,
    ) -> float:
        """P(useful impact) for this touch."""
        return _sigmoid(self.response_logit(user, course, message_attribute))

    # -- outcome sampling ----------------------------------------------------

    def _touch_rng(self, campaign_key: str, user_id: int) -> np.random.Generator:
        return derive_rng(self.seed, "touch", campaign_key, str(user_id))

    def simulate_touch(
        self,
        user: UserRecord,
        course: Course,
        message_attribute: str | None,
        campaign_key: str,
        question: EITQuestion | None = None,
    ) -> TouchOutcome:
        """Draw one touch outcome (open ⊇ click ⊇ transaction nesting).

        A single uniform drives the three nested thresholds, so the
        hierarchy ``transacted ⇒ clicked ⇒ opened`` holds by construction.
        """
        rng = self._touch_rng(campaign_key, user.user_id)
        logit = self.response_logit(user, course, message_attribute)
        p_transact = _sigmoid(logit)
        p_click = _sigmoid(logit + self.params.click_offset)
        p_open = _sigmoid(logit + self.params.open_offset)
        draw = float(rng.random())
        transacted = draw < p_transact
        clicked = draw < p_click
        opened = draw < p_open

        answered: int | None = None
        if question is not None:
            # Openers answer at the full rate; non-openers occasionally
            # answer later through the portal (the paper's "common day to
            # day situations" channel keeps collecting even when a given
            # push is ignored).
            p_answer = self.params.answer_rate if opened else (
                self.params.answer_rate * 0.17
            )
            if float(rng.random()) < p_answer:
                answered = self.choose_eit_option(user, question, rng)
        return TouchOutcome(
            user_id=user.user_id,
            opened=opened,
            clicked=clicked,
            transacted=transacted,
            answered_option=answered,
        )

    def choose_eit_option(
        self,
        user: UserRecord,
        question: EITQuestion,
        rng: np.random.Generator,
    ) -> int:
        """Pick an answer option by softmax alignment with latent traits.

        Users whose traits align with an option's activations choose it
        more often — this is the channel through which the Gradual EIT
        genuinely recovers latent structure.  Options without activations
        (the "prefer not to say" opt-out) carry a neutral pull: when no
        option resonates with the user's make-up, opting out dominates,
        so weakly-emotional users do not pollute their profile with
        arbitrary positive answers.
        """
        scores = []
        for option in question.options:
            if option.activations:
                alignment = sum(
                    delta * user.traits.get(name, 0.0)
                    for name, delta in option.activations.items()
                )
            else:
                alignment = self.params.answer_neutral
            scores.append(self.params.answer_temperature * alignment)
        scores = np.asarray(scores, dtype=np.float64)
        scores -= scores.max()
        weights = np.exp(scores)
        weights /= weights.sum()
        return int(rng.choice(len(weights), p=weights))

    # -- organic browsing (weblog material) ------------------------------------

    def generate_browsing_events(
        self,
        user: UserRecord,
        start_ts: float = 1_141_000_000.0,
        horizon_days: float = 30.0,
    ) -> list[Event]:
        """Organic (non-campaign) click-stream for one user.

        Session counts and composition depend on latent traits, so the
        behavioural features the pre-processor distils genuinely correlate
        with responsiveness — the paper's implicit-feedback channel.
        """
        rng = derive_rng(self.seed, "browse", str(user.user_id))
        positive_energy = float(
            np.mean([user.traits[n] for n in ("enthusiastic", "motivated",
                                              "stimulated", "lively")])
        )
        apathy = user.traits["apathetic"]
        rate = 1.0 + 6.0 * positive_energy - 2.5 * apathy
        n_sessions = int(rng.poisson(max(rate, 0.2)))
        events: list[Event] = []
        course_ids = self.catalog.course_ids()
        # Pre-rank courses by ground-truth appeal for this user; browsing
        # gravitates to appealing courses.
        appeal = np.asarray(
            [self.catalog.get(cid).emotional_appeal(user.traits) for cid in course_ids]
        )
        appeal_order = np.argsort(-appeal)
        horizon = horizon_days * 86_400.0
        for __ in range(n_sessions):
            session_start = start_ts + float(rng.uniform(0.0, horizon))
            n_actions = int(rng.integers(2, 9))
            moment = session_start
            for step in range(n_actions):
                moment += float(rng.uniform(10.0, 240.0))
                draw = float(rng.random())
                # Favoured courses: 70% of views hit the user's top decile.
                if draw < 0.70:
                    top = appeal_order[: max(1, len(course_ids) // 10)]
                    cid = int(course_ids[int(top[int(rng.integers(len(top)))])])
                else:
                    cid = int(course_ids[int(rng.integers(len(course_ids)))])
                kind = float(rng.random())
                if kind < 0.62:
                    action, category = "course_view", ActionCategory.NAVIGATION
                elif kind < 0.80:
                    action, category = "catalog_search", ActionCategory.NAVIGATION
                elif kind < 0.88 + 0.08 * positive_energy:
                    action, category = "course_info", ActionCategory.INFO_REQUEST
                else:
                    action, category = "course_rate", ActionCategory.RATING
                payload: dict = {"target": str(cid)}
                if action == "catalog_search":
                    payload = {"q": self.catalog.get(cid).area}
                if action == "course_rate":
                    payload["value"] = str(int(rng.integers(1, 6)))
                events.append(
                    Event(
                        timestamp=moment,
                        user_id=user.user_id,
                        action=action,
                        category=category,
                        payload=payload,
                    )
                )
        events.sort(key=lambda e: e.timestamp)
        return events
