"""Synthetic weblog emission.

Section 5.1: "WebLogs are close to 50 Gb/month."  This module renders
LifeLog events to combined-log-format text (via
:func:`repro.lifelog.weblog.event_to_line`) and back, so ingest pipelines
can be exercised against realistic raw material at any scale.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.datagen.behavior import BehaviorModel
from repro.datagen.population import Population
from repro.lifelog.events import Event
from repro.lifelog.weblog import event_to_line


def write_weblog(
    events: Iterable[Event],
    path: str | Path,
    host: str = "10.0.0.1",
) -> int:
    """Write events as access-log lines; returns the line count.

    Events without a weblog representation (rare synthetic kinds) are
    skipped, mirroring how real logs never contain non-HTTP actions.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        for event in events:
            try:
                line = event_to_line(event, host=host)
            except ValueError:
                continue
            fh.write(line)
            fh.write("\n")
            count += 1
    return count


def generate_population_weblog(
    model: BehaviorModel,
    population: Population,
    path: str | Path,
    start_ts: float = 1_141_000_000.0,
    horizon_days: float = 30.0,
) -> int:
    """Organic browsing for a whole population, written as one weblog.

    Returns the number of lines written.  Lines are time-ordered across
    users, as a real front-end log would be.
    """
    all_events: list[Event] = []
    for user in population:
        all_events.extend(
            model.generate_browsing_events(
                user, start_ts=start_ts, horizon_days=horizon_days
            )
        )
    all_events.sort(key=lambda e: (e.timestamp, e.user_id))
    return write_weblog(all_events, path)
