"""The ten-campaign plan of Section 5.4.

"We have tested SPA with eight Push and two newsletters campaigns.  The
target was 1,340,432 users in each campaign chosen in random way."

:func:`default_campaign_plan` reproduces that design at configurable
population scale: eight push + two newsletter campaigns, each targeting
the same *fraction* of users the paper targeted (1,340,432 / 3,162,069 ≈
42.4%), each promoting one course from the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.catalog import CourseCatalog
from repro.datagen.seeds import derive_rng

#: The paper's target fraction: 1,340,432 of 3,162,069 registered users.
PAPER_TARGET_FRACTION = 1_340_432 / 3_162_069

#: Paper-reported totals, used by reports for side-by-side display.
PAPER_TARGET_USERS = 1_340_432
PAPER_USEFUL_IMPACTS = 282_938
PAPER_AVG_PERFORMANCE = 0.21


@dataclass(frozen=True)
class CampaignSpec:
    """One planned campaign."""

    campaign_id: str
    channel: str  # "push" | "newsletter"
    course_id: int
    target_fraction: float = PAPER_TARGET_FRACTION

    def __post_init__(self) -> None:
        if self.channel not in ("push", "newsletter"):
            raise ValueError(f"unknown channel {self.channel!r}")
        if not 0.0 < self.target_fraction <= 1.0:
            raise ValueError(
                f"target_fraction {self.target_fraction} outside (0, 1]"
            )


def default_campaign_plan(
    catalog: CourseCatalog,
    seed: int = 7,
    target_fraction: float = PAPER_TARGET_FRACTION,
) -> list[CampaignSpec]:
    """Eight push + two newsletter campaigns over catalog courses.

    Courses are drawn without replacement (when the catalog allows) so
    campaign-to-campaign variation in Fig. 6(b) reflects genuinely
    different products.
    """
    rng = derive_rng(seed, "campaign-plan")
    course_ids = catalog.course_ids()
    if len(course_ids) >= 10:
        chosen = rng.choice(len(course_ids), size=10, replace=False)
    else:
        chosen = rng.integers(0, len(course_ids), size=10)
    plan = []
    for i in range(10):
        channel = "push" if i < 8 else "newsletter"
        plan.append(
            CampaignSpec(
                campaign_id=f"{channel}-{i + 1:02d}",
                channel=channel,
                course_id=int(course_ids[int(chosen[i])]),
                target_fraction=target_fraction,
            )
        )
    return plan
