"""The training-course catalog with emotionally charged product attributes.

Section 5.3 builds sales talk from "the product attributes ... that can be
used to sell the course" and matches them against user sensibilities.  Our
catalog gives every course a presence-weighted set of product attributes;
:data:`AFFINITY_LINKS` declares which emotional attributes each product
attribute excites (the ground-truth counterpart of the Advice stage's
:class:`~repro.core.advice.DomainProfile`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.emotions import EMOTION_CATALOG
from repro.datagen.actions import SUBJECT_AREAS
from repro.datagen.seeds import derive_rng

#: Product attributes a course can carry (the vocabulary of Fig. 5's
#: sales-talk messages).
PRODUCT_ATTRIBUTES: tuple[str, ...] = (
    "practical",
    "certified",
    "job-oriented",
    "flexible-schedule",
    "online",
    "prestigious",
    "affordable",
    "innovative",
    "supportive-community",
    "challenging",
)

#: Emotional attribute → {product attribute: gain in [-1, 1]}.
#: Positive gain: the emotion makes the product attribute appealing.
AFFINITY_LINKS: dict[str, dict[str, float]] = {
    "enthusiastic": {"innovative": 0.8, "challenging": 0.6, "practical": 0.4},
    "motivated": {"job-oriented": 0.9, "certified": 0.6, "challenging": 0.5},
    "empathic": {"supportive-community": 0.9, "practical": 0.3},
    "hopeful": {"job-oriented": 0.6, "certified": 0.5, "prestigious": 0.4},
    "lively": {"innovative": 0.6, "online": 0.3, "challenging": 0.4},
    "stimulated": {"innovative": 0.7, "practical": 0.5, "online": 0.3},
    "impatient": {"flexible-schedule": 0.7, "online": 0.6, "challenging": -0.3},
    "frightened": {"supportive-community": 0.6, "certified": 0.4,
                   "challenging": -0.6, "prestigious": -0.2},
    "shy": {"online": 0.8, "flexible-schedule": 0.5,
            "supportive-community": -0.3},
    "apathetic": {"affordable": 0.4, "online": 0.3, "challenging": -0.5,
                  "job-oriented": -0.3},
}


def emotions_linked_to(attribute: str | None) -> tuple[str, ...]:
    """Emotional attributes with a positive affinity link to ``attribute``.

    Fig. 4's "related attributes": the emotions that get credit (reward)
    or blame (punish) when the user reacts to a product attribute.
    """
    if attribute is None:
        return ()
    return tuple(
        sorted(
            emotion
            for emotion, targets in AFFINITY_LINKS.items()
            if targets.get(attribute, 0.0) > 0.0
        )
    )


@dataclass(frozen=True)
class Course:
    """One training course.

    ``attributes`` maps product attributes to presence in (0, 1]; absent
    attributes are simply missing.
    """

    course_id: int
    title: str
    area: str
    attributes: dict[str, float] = field(default_factory=dict)
    price_level: int = 2  # 1 = cheap .. 4 = premium

    def __post_init__(self) -> None:
        unknown = set(self.attributes) - set(PRODUCT_ATTRIBUTES)
        if unknown:
            raise KeyError(f"unknown product attributes: {sorted(unknown)}")
        for name, presence in self.attributes.items():
            if not 0.0 < presence <= 1.0:
                raise ValueError(
                    f"presence {presence} for {name!r} outside (0, 1]"
                )
        if not 1 <= self.price_level <= 4:
            raise ValueError(f"price_level {self.price_level} outside 1..4")

    def link_mass(self) -> float:
        """Course-level normalizer: ``Σ_e Σ_a |gain[e→a]| * presence[a]``.

        Trait-independent, so dividing by it makes appeal distributions
        comparable across courses with different attribute counts — which
        keeps per-campaign base rates in one realistic band (Fig. 6b shows
        variation, not orders of magnitude).
        """
        mass = 0.0
        for targets in AFFINITY_LINKS.values():
            for attribute, gain in targets.items():
                mass += abs(gain) * self.attributes.get(attribute, 0.0)
        return mass

    def linked_emotions(self, min_presence: float = 0.5) -> tuple[str, ...]:
        """Emotions positively linked to this course's salient attributes.

        A user engaging with the course itself (view, info request,
        enrollment) reacted to its strong attributes, so these emotions
        get the reinforcement credit.
        """
        emotions: set[str] = set()
        for attribute, presence in self.attributes.items():
            if presence >= min_presence:
                emotions.update(emotions_linked_to(attribute))
        return tuple(sorted(emotions))

    def emotional_appeal(self, traits: dict[str, float]) -> float:
        """Ground-truth appeal of this course to a trait profile.

        The presence- and gain-weighted average of the user's traits over
        the course's affinity links: ``Σ traits·gain·presence / link_mass``.
        Users whose dominant sensibilities align with the course's
        attributes score high; misaligned (negative-gain) dominances push
        the appeal negative.
        """
        total = 0.0
        for emotion, targets in AFFINITY_LINKS.items():
            trait = traits.get(emotion, 0.0)
            if trait == 0.0:
                continue
            for attribute, gain in targets.items():
                presence = self.attributes.get(attribute, 0.0)
                if presence == 0.0:
                    continue
                total += trait * gain * presence
        mass = self.link_mass()
        return total / mass if mass > 0 else 0.0


class CourseCatalog:
    """A generated catalog of courses across subject areas."""

    def __init__(self, courses: list[Course]) -> None:
        if not courses:
            raise ValueError("catalog needs at least one course")
        self._courses = {c.course_id: c for c in courses}
        if len(self._courses) != len(courses):
            raise ValueError("duplicate course ids")

    def __len__(self) -> int:
        return len(self._courses)

    def __iter__(self) -> Iterator[Course]:
        for course_id in sorted(self._courses):
            yield self._courses[course_id]

    def get(self, course_id: int) -> Course:
        """Fetch a course by id."""
        try:
            return self._courses[course_id]
        except KeyError:
            raise KeyError(f"unknown course {course_id}") from None

    def course_ids(self) -> list[int]:
        """Sorted course ids."""
        return sorted(self._courses)

    def by_area(self, area: str) -> list[Course]:
        """Courses of one subject area."""
        return [c for c in self if c.area == area]

    def emotion_links(self, min_presence: float = 0.5) -> dict[str, tuple[str, ...]]:
        """``str(course_id) -> linked emotions`` for the whole catalog.

        The ``item_emotions`` mapping the streaming
        :class:`~repro.streaming.mapper.EventUpdateMapper` consumes (keys
        are strings because LifeLog payload targets are strings).
        """
        return {
            str(course.course_id): course.linked_emotions(min_presence)
            for course in self
        }

    @classmethod
    def generate(cls, n_courses: int = 120, seed: int = 7) -> "CourseCatalog":
        """Generate ``n_courses`` with 2–5 product attributes each."""
        if n_courses < 1:
            raise ValueError(f"n_courses must be >= 1, got {n_courses}")
        rng = derive_rng(seed, "catalog")
        courses = []
        for course_id in range(n_courses):
            area = SUBJECT_AREAS[int(rng.integers(len(SUBJECT_AREAS)))]
            k = int(rng.integers(2, 6))
            chosen = rng.choice(len(PRODUCT_ATTRIBUTES), size=k, replace=False)
            attributes = {
                PRODUCT_ATTRIBUTES[int(i)]: float(rng.uniform(0.4, 1.0))
                for i in chosen
            }
            courses.append(
                Course(
                    course_id=course_id,
                    title=f"{area.title()} course #{course_id}",
                    area=area,
                    attributes=attributes,
                    price_level=int(rng.integers(1, 5)),
                )
            )
        return cls(courses)

    def attribute_matrix(self) -> tuple[np.ndarray, list[int]]:
        """Courses × product attributes presence matrix.

        Returns ``(matrix, course_ids)`` with attribute columns in
        :data:`PRODUCT_ATTRIBUTES` order.
        """
        ids = self.course_ids()
        matrix = np.zeros((len(ids), len(PRODUCT_ATTRIBUTES)))
        for row, course_id in enumerate(ids):
            course = self.get(course_id)
            for col, name in enumerate(PRODUCT_ATTRIBUTES):
                matrix[row, col] = course.attributes.get(name, 0.0)
        return matrix, ids


def _check_affinity_links() -> None:
    for emotion, targets in AFFINITY_LINKS.items():
        if emotion not in EMOTION_CATALOG:
            raise AssertionError(f"unknown emotion {emotion!r} in AFFINITY_LINKS")
        for attribute, gain in targets.items():
            if attribute not in PRODUCT_ATTRIBUTES:
                raise AssertionError(f"unknown attribute {attribute!r}")
            if not -1.0 <= gain <= 1.0:
                raise AssertionError(f"gain {gain} outside [-1, 1]")


_check_affinity_links()
