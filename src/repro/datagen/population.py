"""The synthetic user population.

Each user carries:

* **socio-demographics** — the objective attributes of Section 5.1 (age,
  gender, region, education, employment, language);
* **latent emotional traits** — intensities over the ten emotional
  attributes.  These play the role of ground truth: they drive the
  behaviour model but are *never exposed to SPA*, which must recover them
  through the Gradual EIT and reinforcement (exactly the paper's setting);
* **responsiveness** — an individual log-odds offset creating the
  realistic heterogeneity campaign models must rank over.

Traits correlate mildly with demographics (young users skew lively,
employed users skew motivated, ...) so demographic features alone carry
*some* signal — which is why the A1 ablation (emotional features on/off)
shows a delta rather than all-or-nothing behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.emotions import EMOTION_NAMES
from repro.datagen.seeds import derive_rng

GENDERS: tuple[str, ...] = ("female", "male")
REGIONS: tuple[str, ...] = (
    "catalunya", "madrid", "andalucia", "valencia", "galicia",
    "euskadi", "castilla", "canarias",
)
EDUCATION_LEVELS: tuple[str, ...] = ("primary", "secondary", "vocational", "university")
EMPLOYMENT: tuple[str, ...] = ("student", "employed", "unemployed", "self-employed")
LANGUAGES: tuple[str, ...] = ("es", "ca", "en", "pt")


@dataclass(frozen=True)
class UserRecord:
    """One synthetic registered user."""

    user_id: int
    age: int
    gender: str
    region: str
    education: str
    employment: str
    language: str
    traits: dict[str, float] = field(default_factory=dict)
    responsiveness: float = 0.0  # individual log-odds offset

    def __post_init__(self) -> None:
        if not 14 <= self.age <= 90:
            raise ValueError(f"age {self.age} outside 14..90")
        missing = set(EMOTION_NAMES) - set(self.traits)
        if missing:
            raise ValueError(f"missing traits: {sorted(missing)}")
        for name, value in self.traits.items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"trait {name}={value} outside [0, 1]")

    def trait_vector(self) -> np.ndarray:
        """Traits in catalog order."""
        return np.asarray([self.traits[n] for n in EMOTION_NAMES], dtype=np.float64)

    def demographics(self) -> dict[str, str | int]:
        """Objective attributes as a dict (SUM initialization payload)."""
        return {
            "age": self.age,
            "gender": self.gender,
            "region": self.region,
            "education": self.education,
            "employment": self.employment,
            "language": self.language,
        }


class Population:
    """A generated user population with deterministic traits."""

    def __init__(self, users: list[UserRecord]) -> None:
        if not users:
            raise ValueError("population needs at least one user")
        self._users = {u.user_id: u for u in users}
        if len(self._users) != len(users):
            raise ValueError("duplicate user ids")

    def __len__(self) -> int:
        return len(self._users)

    def __iter__(self) -> Iterator[UserRecord]:
        for user_id in sorted(self._users):
            yield self._users[user_id]

    def __contains__(self, user_id: object) -> bool:
        return user_id in self._users

    def get(self, user_id: int) -> UserRecord:
        """Fetch one user by id."""
        try:
            return self._users[user_id]
        except KeyError:
            raise KeyError(f"unknown user {user_id}") from None

    def user_ids(self) -> list[int]:
        """Sorted user ids."""
        return sorted(self._users)

    def trait_matrix(self) -> tuple[np.ndarray, list[int]]:
        """Users × emotions latent trait matrix (ground truth)."""
        ids = self.user_ids()
        matrix = np.vstack([self.get(uid).trait_vector() for uid in ids])
        return matrix, ids

    @classmethod
    def generate(cls, n_users: int, seed: int = 7) -> "Population":
        """Generate ``n_users`` with demographic-correlated traits."""
        if n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {n_users}")
        demo_rng = derive_rng(seed, "population", "demographics")
        trait_rng = derive_rng(seed, "population", "traits")
        resp_rng = derive_rng(seed, "population", "responsiveness")

        ages = np.clip(
            demo_rng.normal(31.0, 9.0, size=n_users).astype(int), 16, 75
        )
        genders = demo_rng.choice(GENDERS, size=n_users)
        regions = demo_rng.choice(REGIONS, size=n_users)
        education = demo_rng.choice(
            EDUCATION_LEVELS, size=n_users, p=(0.10, 0.35, 0.30, 0.25)
        )
        employment = demo_rng.choice(
            EMPLOYMENT, size=n_users, p=(0.25, 0.45, 0.20, 0.10)
        )
        languages = demo_rng.choice(
            LANGUAGES, size=n_users, p=(0.70, 0.20, 0.06, 0.04)
        )
        # Sparse dominant-trait model: a low emotional baseline everywhere,
        # with 0–3 *dominant* traits per user drawn high.  This matches the
        # paper's messaging cases (users with none / one / several dominant
        # sensibilities, Fig. 5) and gives the population the heterogeneity
        # a propensity model can actually rank.
        base = trait_rng.beta(1.5, 6.0, size=(n_users, len(EMOTION_NAMES)))
        n_dominant = trait_rng.choice(
            [0, 1, 2, 3], size=n_users, p=(0.15, 0.35, 0.30, 0.20)
        )
        for i in range(n_users):
            k = int(n_dominant[i])
            if k:
                chosen = trait_rng.choice(len(EMOTION_NAMES), size=k, replace=False)
                base[i, chosen] = trait_rng.beta(6.0, 2.0, size=k)
        responsiveness = resp_rng.normal(0.0, 0.55, size=n_users)

        trait_pos = {name: i for i, name in enumerate(EMOTION_NAMES)}
        users = []
        for i in range(n_users):
            traits = base[i].copy()
            # Demographic tilts (mild, additive, clamped).
            if ages[i] < 25:
                traits[trait_pos["lively"]] += 0.15
                traits[trait_pos["stimulated"]] += 0.10
            if ages[i] > 45:
                traits[trait_pos["apathetic"]] += 0.08
                traits[trait_pos["shy"]] += 0.05
            if employment[i] == "employed":
                traits[trait_pos["motivated"]] += 0.12
            if employment[i] == "unemployed":
                traits[trait_pos["hopeful"]] += 0.12
                traits[trait_pos["frightened"]] += 0.08
            if education[i] == "university":
                traits[trait_pos["enthusiastic"]] += 0.08
            traits = np.clip(traits, 0.0, 1.0)
            users.append(
                UserRecord(
                    user_id=i,
                    age=int(ages[i]),
                    gender=str(genders[i]),
                    region=str(regions[i]),
                    education=str(education[i]),
                    employment=str(employment[i]),
                    language=str(languages[i]),
                    traits={n: float(traits[j]) for n, j in trait_pos.items()},
                    responsiveness=float(responsiveness[i]),
                )
            )
        return cls(users)
