"""Deterministic RNG derivation.

Every generator in :mod:`repro.datagen` draws from a generator derived from
``(root_seed, *string keys)`` so that sub-streams are independent and any
component can be re-run in isolation with identical results — a property
the reproduction benches rely on.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _key_to_ints(key: str) -> list[int]:
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]


def derive_rng(root_seed: int, *keys: str) -> np.random.Generator:
    """A generator for the sub-stream named by ``keys`` under ``root_seed``.

    Examples
    --------
    >>> rng = derive_rng(7, "population", "traits")
    >>> float(rng.random()) == float(derive_rng(7, "population", "traits").random())
    True
    """
    entropy: list[int] = [int(root_seed) & 0xFFFFFFFF]
    for key in keys:
        entropy.extend(_key_to_ints(key))
    return np.random.default_rng(np.random.SeedSequence(entropy))
