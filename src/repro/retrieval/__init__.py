"""Embedding-based candidate retrieval: O(items) → O(k) serving.

Every scorer family scores a full ``user × item`` grid, so serving cost
grows linearly with catalog size.  This package converts the hot path to
the standard retrieve-then-rerank decomposition: a pure-numpy clustered
ANN index (:class:`~repro.retrieval.index.ClusteredANNIndex`) over
context-augmented item embeddings
(:class:`~repro.retrieval.embeddings.EmbeddingProvider`) proposes a
small oversampled candidate set, the registered batch
:class:`~repro.serving.scorer.Scorer` re-ranks *only* those candidates,
and the Advice stage adjusts the survivors — with an exact full-scan
fallback whenever the index cannot guarantee coverage (no index
configured, ``k`` within oversampling reach of the catalog, or the
request restricted to items outside the indexed catalog).

Freshness mirrors the replica plane:
:class:`~repro.retrieval.refresh.IndexRefresher` rebuilds off the
:class:`~repro.streaming.cache.SumCache` version counters in the
background and :meth:`~repro.retrieval.retriever.CandidateRetriever.
swap` publishes the new index atomically under a seqlock-style epoch,
so in-flight searches never observe a torn (index, generation) pair.
"""

from repro.retrieval.embeddings import EmbeddingProvider, StaticEmbeddingProvider
from repro.retrieval.index import ClusteredANNIndex, kmeans
from repro.retrieval.refresh import IndexRefresher
from repro.retrieval.retriever import CandidateRetriever, RetrievalConfig

__all__ = [
    "CandidateRetriever",
    "ClusteredANNIndex",
    "EmbeddingProvider",
    "IndexRefresher",
    "RetrievalConfig",
    "StaticEmbeddingProvider",
    "kmeans",
]
