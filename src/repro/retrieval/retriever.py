"""The serving-side retrieval stage: candidate generation + index swap.

:class:`CandidateRetriever` owns the live :class:`~repro.retrieval.
index.ClusteredANNIndex` and decides, per request, whether retrieval can
serve the candidate set or the service must fall back to the exact full
scan.  Its publication protocol mirrors the replica plane, shrunk to one
object pair:

* **writers** (:meth:`swap`, called by the
  :class:`~repro.retrieval.refresh.IndexRefresher` after a background
  build) hold ``_swap_lock`` and bump the page epoch odd → store the new
  ``(index, generation)`` → bump it even;
* **readers** (:meth:`current`, on the request hot path) run lock-free:
  read the epoch, copy the pair, re-read and retry on any mismatch —
  the classic seqlock shape, machine-checked by the analyzer's
  ``SQ001``/``SQ002`` rules via the declarations below.  A bounded spin
  falls back to taking the writer lock, so a reader can never starve.

Generations are monotonic (a swap can only install a larger stamp), so
candidate sets served to one caller never go backwards in freshness —
the same contract :class:`~repro.serving.replica.ReplicaRefresher` gives
for SUM state.

The stage also participates in the deadline plane: given the request's
:class:`~repro.serving.budget.Budget` it first *shrinks* — halving
``n_probe``, then cutting the oversampled candidate count down to ``k``
— and only aborts (typed :class:`~repro.serving.budget.
DeadlineExceeded`) when the budget is already exhausted on entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Sequence

from repro.analysis.contracts import (
    declare_lock,
    declare_seqlock,
    guarded_by,
    make_lock,
    seqlock_reader,
)
from repro.obs.metrics import (
    SIZE_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    labelled,
    resolve_registry,
)
from repro.retrieval.index import ClusteredANNIndex
from repro.serving.budget import Budget
from repro.serving.scorer import ItemId


declare_lock("CandidateRetriever._swap_lock")
declare_seqlock(
    "CandidateRetriever.page_epoch",
    protects=("_read_pair",),
    writer_lock="CandidateRetriever._swap_lock",
)

#: bounded lock-free retries before a reader falls back to the writer
#: lock (same starvation discipline as the streaming cache's captures)
_EPOCH_SPIN_LIMIT = 512


@dataclass(frozen=True)
class RetrievalConfig:
    """Recall/latency knobs of the retrieval stage.

    Parameters
    ----------
    k_candidates:
        Oversampled candidate-set size handed to the re-ranking scorer
        (always at least the request's ``k``).  More candidates → higher
        recall, linearly more re-rank work.
    n_probe:
        Clusters probed per search.  More probes → higher recall,
        linearly more page scans (the index has ``≈ sqrt(n)`` clusters,
        so each probe costs ``≈ sqrt(n)`` dot products).
    min_catalog:
        Below this many indexed items the exact scan is cheaper than the
        probe machinery; retrieval steps aside.
    budget_headroom:
        Shrink knobs when the remaining budget is under ``headroom ×``
        the EWMA of recent search times (cooperate *before* the deadline
        plane has to abort).
    ewma_alpha:
        Smoothing factor of that search-time EWMA.
    """

    k_candidates: int = 128
    n_probe: int = 8
    min_catalog: int = 256
    budget_headroom: float = 2.0
    ewma_alpha: float = 0.2

    def __post_init__(self) -> None:
        if self.k_candidates < 1:
            raise ValueError(f"k_candidates must be >= 1, got {self.k_candidates}")
        if self.n_probe < 1:
            raise ValueError(f"n_probe must be >= 1, got {self.n_probe}")
        if self.min_catalog < 0:
            raise ValueError(f"min_catalog must be >= 0, got {self.min_catalog}")
        if self.budget_headroom < 1.0:
            raise ValueError(
                f"budget_headroom must be >= 1, got {self.budget_headroom}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha {self.ewma_alpha} outside (0, 1]")


@guarded_by("_swap_lock", "_index", "_generation", "_epoch")
class CandidateRetriever:
    """Candidate generation over an atomically swappable ANN index.

    Parameters
    ----------
    provider:
        An embedding provider (:class:`~repro.retrieval.embeddings.
        EmbeddingProvider` shaped): ``query_vectors(user_ids, context)``
        on the serve path; the refresher also uses its build-side half.
    config:
        Recall/latency knobs; see :class:`RetrievalConfig`.
    index:
        Optionally start with a pre-built index (generation 1);
        otherwise every request falls back to the exact scan until the
        first :meth:`swap`.
    telemetry:
        Metrics registry for the ``serving.retrieval.*`` family.
    """

    def __init__(
        self,
        provider: object,
        *,
        config: RetrievalConfig | None = None,
        index: ClusteredANNIndex | None = None,
        telemetry: MetricsRegistry | NullRegistry | None = None,
    ) -> None:
        if not callable(getattr(provider, "query_vectors", None)):
            raise TypeError(
                f"{type(provider).__name__} has no query_vectors(); "
                "CandidateRetriever needs an embedding provider"
            )
        self.provider = provider
        self.config = config or RetrievalConfig()
        self._swap_lock = make_lock("CandidateRetriever._swap_lock")
        #: seqlock epoch over the (index, generation) pair: odd while a
        #: swap is in flight, even when the pair is consistent
        self._epoch = 0
        self._index: ClusteredANNIndex | None = None
        self._generation = 0
        self._search_ewma = 0.0
        registry = resolve_registry(telemetry)
        self._m_requests = {
            path: registry.counter(
                labelled("serving.retrieval.requests", path=path)
            )
            for path in ("retrieved", "fallback")
        }
        self._m_fallbacks = {
            reason: registry.counter(
                labelled("serving.retrieval.fallbacks", reason=reason)
            )
            for reason in (
                "no_index", "small_catalog", "exact_k", "uncovered",
            )
        }
        self._m_shrunk = {
            knob: registry.counter(
                labelled("serving.retrieval.shrunk", knob=knob)
            )
            for knob in ("n_probe", "k_candidates")
        }
        self._m_seconds = registry.histogram("serving.retrieval.seconds")
        self._m_candidates = registry.histogram(
            "serving.retrieval.candidates", SIZE_BUCKETS
        )
        registry.gauge(
            "serving.retrieval.generation",
            fn=lambda: float(self._generation),
        )
        if index is not None:
            self.swap(index)

    # -- publication protocol ---------------------------------------------

    def _read_pair(self) -> tuple[ClusteredANNIndex | None, int]:
        """The seqlock-protected primitive: one raw read of the pair.

        Callers must either hold ``_swap_lock`` or run the
        :meth:`current` retry loop — enforced statically (``SQ002``).
        """
        return self._index, self._generation

    @seqlock_reader("CandidateRetriever.page_epoch")
    def current(self) -> tuple[ClusteredANNIndex | None, int]:
        """Consistent ``(index, generation)`` snapshot, lock-free.

        Retries while a swap is in flight (odd epoch, or the epoch moved
        between the two reads); after :data:`_EPOCH_SPIN_LIMIT` failed
        attempts it takes the writer lock instead — bounded work even
        against a pathological swap storm.
        """
        for __ in range(_EPOCH_SPIN_LIMIT):
            before = self._epoch
            if before % 2 == 0:
                pair = self._read_pair()
                if self._epoch == before:
                    return pair
        with self._swap_lock:
            return self._read_pair()

    def swap(self, index: ClusteredANNIndex, generation: int | None = None) -> int:
        """Atomically publish a new index; returns its generation stamp.

        Monotonic: an explicit ``generation`` lower than the current one
        is rejected, and the default stamp is ``current + 1``.  The
        epoch goes odd before the pair mutates and even after, so
        lock-free readers can never observe a torn pair.
        """
        with self._swap_lock:
            if generation is None:
                generation = self._generation + 1
            elif generation <= self._generation:
                raise ValueError(
                    f"generation {generation} would move backwards "
                    f"(currently {self._generation})"
                )
            self._epoch += 1
            self._index = index
            self._generation = int(generation)
            self._epoch += 1
            stamped = self._generation
        return stamped

    @property
    def generation(self) -> int:
        """Generation of the currently served index (0 before any swap)."""
        return self.current()[1]

    def catalog_items(self) -> tuple[ItemId, ...]:
        """The indexed catalog, page order (empty before the first swap).

        The service uses this as the item universe for requests that do
        not name explicit items.
        """
        index, __ = self.current()
        return index.item_ids if index is not None else ()

    # -- the serve path ----------------------------------------------------

    def _fallback(self, reason: str) -> None:
        self._m_requests["fallback"].inc()
        self._m_fallbacks[reason].inc()
        return None

    def retrieve(
        self,
        user_ids: Sequence[int],
        items: Sequence[ItemId] | None,
        k: int,
        *,
        context: object | None = None,
        budget: Budget | None = None,
    ) -> list[ItemId] | None:
        """Candidate items for one user — or ``None`` for the exact scan.

        ``items=None`` means "the indexed catalog" (the whole-index
        search, the O(k) hot path); an explicit ``items`` list restricts
        the search to those rows, which is exact over the subset but
        costs one pass over it.  ``None`` is returned — and counted with
        a reason — whenever the index cannot guarantee coverage:

        * ``no_index`` — nothing swapped in yet;
        * ``small_catalog`` — fewer indexed items than
          ``config.min_catalog`` (exact scan is cheaper);
        * ``exact_k`` — the oversampled candidate count reaches the
          searchable catalog, so the exact scan returns the same set
          (this is the ``k >= catalog`` exactness guarantee);
        * ``uncovered`` — the request names an item the index does not
          hold (a retrieval answer could silently drop it).

        With a ``budget``, an already-exhausted deadline raises
        :class:`~repro.serving.budget.DeadlineExceeded` for stage
        ``"retrieve"``; a merely *tight* one shrinks ``n_probe`` and
        then the candidate count before any work happens.
        """
        if budget is not None:
            budget.check("retrieve")
        index, __generation = self.current()
        if index is None:
            return self._fallback("no_index")
        if len(index) < self.config.min_catalog:
            return self._fallback("small_catalog")
        allowed = None
        universe = len(index)
        if items is not None:
            if len(items) == universe and len(items) > 0:
                first = next(iter(items))
                if first == index.item_ids[0] and tuple(items) == index.item_ids:
                    items = None  # the indexed catalog, spelled out
        if items is not None:
            allowed = index.mask_rows(items)
            if allowed is None:
                return self._fallback("uncovered")
            universe = len(allowed)
        n_probe = self.config.n_probe
        k_candidates = max(int(k), self.config.k_candidates)
        if budget is not None and self._search_ewma > 0.0:
            remaining = budget.remaining()
            if remaining < self.config.budget_headroom * self._search_ewma:
                n_probe = max(1, n_probe // 2)
                self._m_shrunk["n_probe"].inc()
                if remaining < self._search_ewma:
                    k_candidates = int(k)
                    self._m_shrunk["k_candidates"].inc()
        if k_candidates >= universe:
            return self._fallback("exact_k")
        started = perf_counter()
        query = self.provider.query_vectors(list(user_ids), context)
        # single-user stage: recommend() serves one user per request
        candidates = index.search(
            query[0], k_candidates, n_probe=n_probe, allowed_rows=allowed
        )
        elapsed = perf_counter() - started
        alpha = self.config.ewma_alpha
        self._search_ewma = (
            elapsed if self._search_ewma == 0.0
            else (1.0 - alpha) * self._search_ewma + alpha * elapsed
        )
        self._m_requests["retrieved"].inc()
        self._m_seconds.observe(elapsed)
        self._m_candidates.observe(len(candidates))
        return candidates
