"""Index freshness under streaming: rebuild in background, swap atomically.

:class:`IndexRefresher` is the retrieval plane's twin of
:class:`~repro.serving.replica.ReplicaRefresher`, with the manifest poll
replaced by two cheap staleness probes:

* the embedding provider's :meth:`fingerprint` — changes when the
  underlying model is refit (new factor arrays);
* the streaming :class:`~repro.streaming.cache.SumCache`'s
  ``global_version`` — advances as update batches publish, so emotional
  drift triggers rebuilds on the same cadence replica refreshes run on.

The expensive part (vector materialization + k-means + page layout)
runs entirely before publication, with requests still serving the old
index; publication itself is one
:meth:`~repro.retrieval.retriever.CandidateRetriever.swap` under the
retriever's epoch protocol, and generation stamps are monotonic.  Like
the replica refresher, it works synchronously (:meth:`poll`) for
deterministic tests or as a daemon cadence (:meth:`start`).
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Callable

from repro.analysis.contracts import declare_lock, guarded_by, make_lock
from repro.obs.metrics import MetricsRegistry, NullRegistry, resolve_registry
from repro.retrieval.index import ClusteredANNIndex
from repro.retrieval.retriever import CandidateRetriever


declare_lock("IndexRefresher._build_lock")


class _Cadence(threading.Thread):
    """Run ``tick`` every ``interval`` seconds until stopped (daemon).

    Local clone of the replica plane's cadence runner: this package
    sits *below* :mod:`repro.serving.replica` in the import graph
    (the service imports retrieval), so it cannot borrow that one.
    """

    def __init__(
        self, tick: Callable[[], object], interval: float, name: str
    ) -> None:
        super().__init__(name=name, daemon=True)
        self._tick = tick
        self._interval = float(interval)
        self._stop_event = threading.Event()

    def run(self) -> None:  # pragma: no cover - timing loop
        while not self._stop_event.wait(self._interval):
            try:
                self._tick()
            except Exception:
                # a failed build must not kill the cadence; the old
                # index keeps serving and the next tick retries
                continue

    def stop(self, timeout: float | None = 5.0) -> None:
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout)


@guarded_by("_build_lock", "_built_fingerprint", "_built_version")
class IndexRefresher:
    """Rebuild the ANN index when the model or emotional state moves on.

    Parameters
    ----------
    provider:
        The embedding provider (build side: ``item_vectors()`` +
        ``fingerprint()``).
    retriever:
        The live :class:`~repro.retrieval.retriever.CandidateRetriever`
        new indexes are swapped into.
    cache:
        Optional versioned resolver (``.global_version``, e.g. a
        :class:`~repro.streaming.cache.SumCache`): emotional updates
        then count toward staleness too, not just model refits.
    min_new_versions:
        Rebuild only after the cache advanced by at least this many
        published batches (damping against rebuild-per-event churn).
    interval:
        Cadence in seconds for :meth:`start`; ``None`` (default) means
        rebuilds only happen on explicit :meth:`poll` calls.
    n_clusters / n_iter / seed:
        Forwarded to :meth:`~repro.retrieval.index.ClusteredANNIndex.
        build`.
    """

    def __init__(
        self,
        provider: object,
        retriever: CandidateRetriever,
        *,
        cache: object | None = None,
        min_new_versions: int = 1,
        interval: float | None = None,
        n_clusters: int | None = None,
        n_iter: int = 10,
        seed: int = 0,
        telemetry: MetricsRegistry | NullRegistry | None = None,
    ) -> None:
        if not callable(getattr(provider, "item_vectors", None)):
            raise TypeError(
                f"{type(provider).__name__} has no item_vectors(); "
                "IndexRefresher needs an embedding provider"
            )
        if min_new_versions < 1:
            raise ValueError(
                f"min_new_versions must be >= 1, got {min_new_versions}"
            )
        self.provider = provider
        self.retriever = retriever
        self.cache = cache
        self.min_new_versions = int(min_new_versions)
        self.interval = interval
        self.n_clusters = n_clusters
        self.n_iter = int(n_iter)
        self.seed = int(seed)
        self._build_lock = make_lock("IndexRefresher._build_lock")
        #: provider fingerprint / cache version the served index was
        #: built from (None until the first build)
        self._built_fingerprint: object | None = None
        self._built_version: int | None = None
        self._thread: _Cadence | None = None
        registry = resolve_registry(telemetry)
        self._m_rebuilds = registry.counter("serving.retrieval.index_rebuilds")
        self._m_build_seconds = registry.histogram(
            "serving.retrieval.index_build_seconds"
        )
        self._g_items = registry.gauge("serving.retrieval.index_items")

    def _cache_version(self) -> int | None:
        version = getattr(self.cache, "global_version", None)
        return int(version) if version is not None else None

    def _stale(self) -> bool:
        if self._built_fingerprint is None:
            return True  # never built
        fingerprint = getattr(self.provider, "fingerprint", None)
        if callable(fingerprint) and fingerprint() != self._built_fingerprint:
            return True
        version = self._cache_version()
        if version is not None:
            floor = self._built_version
            if floor is None or version >= floor + self.min_new_versions:
                return True
        return False

    def poll(self, force: bool = False) -> int | None:
        """Rebuild + swap if stale; returns the new generation (or None).

        The staleness probes and the build both run under ``_build_lock``
        (one rebuild at a time); the service keeps answering from the
        old index until the final :meth:`~repro.retrieval.retriever.
        CandidateRetriever.swap`.  The cache version is captured *before*
        vectors are read, so the recorded floor is conservative: batches
        published mid-build trigger the next poll rather than being
        silently claimed.
        """
        started = perf_counter()
        with self._build_lock:
            if not force and not self._stale():
                return None
            version = self._cache_version()
            fingerprint = getattr(self.provider, "fingerprint", None)
            built_from = fingerprint() if callable(fingerprint) else object()
            item_ids, vectors = self.provider.item_vectors()
            index = ClusteredANNIndex.build(
                item_ids,
                vectors,
                n_clusters=self.n_clusters,
                n_iter=self.n_iter,
                seed=self.seed,
            )
            generation = self.retriever.swap(index)
            self._built_fingerprint = built_from
            self._built_version = version
            indexed = len(index)
        # instruments record after the lock releases (leaf-lock rule)
        self._m_rebuilds.inc()
        self._m_build_seconds.observe(perf_counter() - started)
        self._g_items.set(float(indexed))
        return generation

    # -- cadence -------------------------------------------------------------

    def start(self) -> "IndexRefresher":
        """Start polling on the configured ``interval``."""
        if self.interval is None:
            raise ValueError("no interval configured; call poll() instead")
        if self._thread is None or not self._thread.is_alive():
            self._thread = _Cadence(
                self.poll, self.interval, "retrieval-index-refresher"
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._thread.stop()
            self._thread = None

    def __enter__(self) -> "IndexRefresher":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
