"""The pure-numpy clustered ANN index (IVF-style coarse quantization).

Layout follows the classic inverted-file design: a k-means coarse
quantizer partitions the item embeddings into clusters, and each
cluster's member vectors are rewritten into one *contiguous page* of a
single backing matrix (plus a parallel id page), so probing a cluster is
a dense ``page @ query`` matmul over rows that sit next to each other in
memory — no gather, no fancy indexing on the hot path.

Search is multi-probe maximum inner product: rank clusters by
``centroid · query``, scan the ``n_probe`` best pages, take the global
top-``k`` of the concatenated page scores.  Inner product (not L2) is
the right metric here because the embedding layout folds biases and
context affinities into extra coordinates (see
:mod:`repro.retrieval.embeddings`) — the retrieval score is then exactly
a first-order proxy of the served ranking score.

Everything in this module is immutable after :meth:`ClusteredANNIndex.
build`: pages, centroids and offsets are read-only arrays, so a built
index can be shared across serving threads and swapped atomically (see
:mod:`repro.retrieval.retriever`) without any locking on the read path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.serving.scorer import ItemId


def _pairwise_sq_dists(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared L2 distances ``(n_points, n_centers)`` via the expansion.

    ``|x - c|^2 = |x|^2 - 2 x·c + |c|^2``; the ``|x|^2`` term is
    rank-constant per row and only needed for inertia, so it is kept.
    """
    cross = points @ centers.T
    return (
        np.einsum("ij,ij->i", points, points)[:, None]
        - 2.0 * cross
        + np.einsum("ij,ij->i", centers, centers)[None, :]
    )


def _assign_chunked(
    points: np.ndarray, centers: np.ndarray, chunk: int | None = None
) -> np.ndarray:
    """Nearest-center assignment without materializing the full distance
    matrix — million-point catalogs assign in bounded memory."""
    n = len(points)
    if chunk is None:
        # keep each chunk's distance block around ~128 MiB of float64
        chunk = max(1024, (1 << 24) // max(1, len(centers)))
    out = np.empty(n, dtype=np.int64)
    for start in range(0, n, chunk):
        stop = min(n, start + chunk)
        out[start:stop] = np.argmin(
            _pairwise_sq_dists(points[start:stop], centers), axis=1
        )
    return out


def _kmeans_pp_init(
    points: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D² sampling."""
    n = len(points)
    centers = np.empty((n_clusters, points.shape[1]))
    centers[0] = points[rng.integers(n)]
    # squared distance to the nearest chosen center, updated incrementally
    d2 = _pairwise_sq_dists(points, centers[:1])[:, 0]
    for j in range(1, n_clusters):
        total = float(d2.sum())
        if total <= 0.0:
            # all remaining points coincide with a center: fill uniformly
            centers[j:] = points[rng.integers(n, size=n_clusters - j)]
            break
        probs = np.maximum(d2, 0.0) / total
        centers[j] = points[rng.choice(n, p=probs)]
        d2 = np.minimum(d2, _pairwise_sq_dists(points, centers[j:j + 1])[:, 0])
    return centers


def kmeans(
    points: np.ndarray,
    n_clusters: int,
    *,
    n_iter: int = 10,
    seed: int = 0,
    train_sample: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's k-means with k-means++ init; returns ``(centers, labels)``.

    ``train_sample`` bounds the number of points the Lloyd iterations see
    (faiss convention: ~64 training points per centroid is plenty for a
    coarse quantizer); the final labels are always a full assignment of
    every input point against the trained centers, computed in bounded-
    memory chunks.  Deterministic for a fixed ``seed``.
    """
    points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    n = len(points)
    if not 1 <= n_clusters <= n:
        raise ValueError(f"n_clusters must be in [1, {n}], got {n_clusters}")
    rng = np.random.default_rng(seed)
    if train_sample is None:
        train_sample = max(n_clusters * 64, 1024)
    if n > train_sample:
        train = points[rng.choice(n, size=train_sample, replace=False)]
    else:
        train = points
    centers = _kmeans_pp_init(train, n_clusters, rng)
    for __ in range(n_iter):
        labels = _assign_chunked(train, centers)
        # vectorized center update: sum members per cluster, keep empty
        # clusters where they were (they can re-acquire members later)
        counts = np.bincount(labels, minlength=n_clusters).astype(np.float64)
        sums = np.zeros_like(centers)
        np.add.at(sums, labels, train)
        occupied = counts > 0
        centers[occupied] = sums[occupied] / counts[occupied, None]
    full_labels = _assign_chunked(points, centers)
    return centers, full_labels


class ClusteredANNIndex:
    """Immutable clustered index over item embeddings (built, never edited).

    Attributes
    ----------
    item_ids:
        Tuple of indexed item ids, in page order (cluster-major).
    pages:
        ``(n_items, dim)`` float64 matrix, rows grouped so each
        cluster's members are one contiguous slice; read-only.
    offsets:
        ``(n_clusters + 1,)`` page boundaries: cluster ``c`` owns rows
        ``offsets[c]:offsets[c + 1]``.
    centroids:
        ``(n_clusters, dim)`` cluster centers, read-only.
    """

    __slots__ = (
        "item_ids", "pages", "offsets", "centroids", "_positions", "dim"
    )

    def __init__(
        self,
        item_ids: tuple[ItemId, ...],
        pages: np.ndarray,
        offsets: np.ndarray,
        centroids: np.ndarray,
    ) -> None:
        self.item_ids = item_ids
        self.pages = pages
        self.offsets = offsets
        self.centroids = centroids
        self.dim = int(pages.shape[1]) if pages.size else int(pages.shape[-1])
        self._positions = {item: row for row, item in enumerate(item_ids)}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        item_ids: Sequence[ItemId],
        vectors: np.ndarray,
        *,
        n_clusters: int | None = None,
        n_iter: int = 10,
        seed: int = 0,
    ) -> "ClusteredANNIndex":
        """Cluster ``vectors`` and lay them out as contiguous pages.

        ``n_clusters`` defaults to ``≈ sqrt(n_items)`` (the standard IVF
        sizing: probe cost and page cost balance at the square root).
        Rows are permuted cluster-major with a *stable* sort, so members
        keep their relative input order inside each page — build is
        deterministic for fixed inputs.
        """
        vectors = np.ascontiguousarray(np.asarray(vectors, dtype=np.float64))
        if vectors.ndim != 2 or len(vectors) != len(item_ids):
            raise ValueError(
                f"vectors shape {vectors.shape} does not match "
                f"{len(item_ids)} item ids"
            )
        n = len(item_ids)
        if n == 0:
            raise ValueError("cannot build an index over an empty catalog")
        if n_clusters is None:
            n_clusters = max(1, int(round(float(np.sqrt(n)))))
        n_clusters = min(n_clusters, n)
        centroids, labels = kmeans(
            vectors, n_clusters, n_iter=n_iter, seed=seed
        )
        order = np.argsort(labels, kind="stable")
        counts = np.bincount(labels, minlength=n_clusters)
        offsets = np.zeros(n_clusters + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        pages = np.ascontiguousarray(vectors[order])
        pages.setflags(write=False)
        centroids.setflags(write=False)
        offsets.setflags(write=False)
        ids = tuple(item_ids[int(row)] for row in order)
        return cls(ids, pages, offsets, centroids)

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.item_ids)

    @property
    def n_clusters(self) -> int:
        return len(self.centroids)

    def __contains__(self, item: object) -> bool:
        return item in self._positions

    def coverage(self, items: Sequence[ItemId]) -> int:
        """How many of ``items`` this index knows about."""
        positions = self._positions
        return sum(1 for item in items if item in positions)

    def mask_rows(self, items: Sequence[ItemId]) -> np.ndarray | None:
        """Page-row indices of ``items`` — or ``None`` if any is unknown.

        Used to restrict a search to an explicit candidate list; a
        single unknown item means the index cannot cover the request and
        the caller must fall back to the exact scan.
        """
        positions = self._positions
        rows = np.empty(len(items), dtype=np.int64)
        for i, item in enumerate(items):
            row = positions.get(item)
            if row is None:
                return None
            rows[i] = row
        return rows

    # -- search ------------------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        k: int,
        *,
        n_probe: int = 8,
        allowed_rows: np.ndarray | None = None,
    ) -> list[ItemId]:
        """Top-``k`` item ids by inner product, best first.

        Probes the ``n_probe`` clusters whose centroids score highest
        against ``query`` and exact-scans their pages.  With
        ``allowed_rows`` the scan is restricted to those page rows
        (cluster structure is ignored — the restriction is already a
        candidate set, so a single dense pass over it is the cheapest
        exact answer).
        """
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        if query.shape[0] != self.dim:
            raise ValueError(
                f"query dim {query.shape[0]} != index dim {self.dim}"
            )
        if allowed_rows is not None:
            scores = self.pages[allowed_rows] @ query
            top = _topk_desc(scores, min(k, len(scores)))
            return [self.item_ids[int(allowed_rows[t])] for t in top]
        n_probe = max(1, min(int(n_probe), self.n_clusters))
        cluster_scores = self.centroids @ query
        probe = _topk_desc(cluster_scores, n_probe)
        row_blocks: list[np.ndarray] = []
        score_blocks: list[np.ndarray] = []
        offsets = self.offsets
        for c in probe:
            lo, hi = int(offsets[c]), int(offsets[c + 1])
            if lo == hi:
                continue
            score_blocks.append(self.pages[lo:hi] @ query)
            row_blocks.append(np.arange(lo, hi, dtype=np.int64))
        if not score_blocks:
            return []
        scores = np.concatenate(score_blocks)
        rows = np.concatenate(row_blocks)
        top = _topk_desc(scores, min(k, len(scores)))
        return [self.item_ids[int(rows[t])] for t in top]

    def exact_topk(self, query: np.ndarray, k: int) -> list[ItemId]:
        """Exact top-``k`` over every indexed vector (recall baseline)."""
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        scores = self.pages @ query
        top = _topk_desc(scores, min(k, len(scores)))
        return [self.item_ids[int(t)] for t in top]


def _topk_desc(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores, in descending score order.

    ``argpartition`` keeps the select O(n); only the k survivors pay the
    O(k log k) sort.  Ties break by index, so results are deterministic.
    """
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    if k >= len(scores):
        return np.argsort(-scores, kind="stable")
    part = np.argpartition(-scores, k - 1)[:k]
    return part[np.argsort(-scores[part], kind="stable")]
