"""Context-augmented embeddings: what the ANN index actually indexes.

The trick that makes retrieval rank-faithful is folding every term of
the served score into one inner product (the classic MIPS reduction):

* **item side** — ``[q_i | b_i | a_i]`` where ``q_i`` are the FunkSVD
  item factors, ``b_i`` the item bias, and ``a_i = G @ presence_i`` the
  item's *emotional affinity*: the domain profile's gain matrix ``G``
  (``n_emotions × n_attributes``, :meth:`~repro.core.advice.
  DomainProfile.layout`) applied to the item's attribute presences.
* **query side** — ``[p_u | 1 | w·e_u]`` where ``p_u`` are the user
  factors, the constant 1 picks up the item bias, and ``e_u =
  intensity_u ⊙ sensibility_u`` is the user's emotional evidence, taken
  zero-copy from the resolved :class:`~repro.core.sum_store.
  FrozenSumBatch` row of the request.

``query · item = p_u·q_i + b_i + w · e_uᵀ G presence_i``.  The first two
terms are the rank-relevant part of the FunkSVD score (``μ`` and ``b_u``
are constant across items for one user); the last is the first-order
expansion of the Advice stage's log-multiplier, whose per-link factors
are ``1 + gain_scale·gain·evidence`` — so ``context_weight`` defaults to
the engine's ``gain_scale``.  Retrieval over these vectors surfaces the
same items the exact score-then-adjust pipeline ranks highest, and the
real scorer re-ranks the survivors, so any residual approximation only
costs recall, never precision of the returned scores.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.advice import AdviceEngine, DomainProfile
from repro.serving.scorer import ItemId


def _evidence_rows(
    user_ids: Sequence[int],
    context: object | None,
    emotions: tuple[str, ...],
) -> np.ndarray:
    """``(n_users, n_emotions)`` intensity·sensibility evidence block.

    ``context`` is whatever the serving resolve stage produced: a
    columnar batch (anything with ``intensity_matrix``, e.g.
    :class:`~repro.core.sum_store.FrozenSumBatch` — the rows come out as
    column slices, no per-model scalar reads), a plain sequence of
    :class:`~repro.core.sum_model.SmartUserModel`, or ``None`` for a
    context-free query (zero evidence: retrieval degrades gracefully to
    the pure collaborative ranking).
    """
    if not emotions or context is None:
        return np.zeros((len(user_ids), len(emotions)))
    if hasattr(context, "intensity_matrix"):
        intensity = context.intensity_matrix(emotions)
        relevance = context.sensibility_matrix(emotions, default=1.0)
        return np.asarray(intensity) * np.asarray(relevance)
    return np.asarray(
        [
            [m.emotional[e] * m.sensibility.get(e, 1.0) for e in emotions]
            for m in context
        ]
    )


class EmbeddingProvider:
    """Context-augmented embeddings over a fitted FunkSVD model.

    Parameters
    ----------
    model:
        A fitted :class:`~repro.cf.mf.FunkSVD` (anything exposing its
        public ``user_embeddings()`` / ``item_embeddings()`` accessors).
    domain_profile:
        The serving domain's excitatory links; omit to index pure
        collaborative embeddings (no context block).
    item_attributes:
        ``item -> {attribute: presence}`` metadata, same mapping the
        Advice stage reads.  Items without attributes get zero affinity.
    context_weight:
        Weight of the emotional-affinity block relative to the factor
        block; defaults to the advice engine's ``gain_scale`` (the
        first-order coefficient of the true multiplier).
    """

    def __init__(
        self,
        model: object,
        *,
        domain_profile: DomainProfile | None = None,
        item_attributes: Mapping[ItemId, Mapping[str, float]] | None = None,
        context_weight: float | None = None,
    ) -> None:
        for accessor in ("user_embeddings", "item_embeddings"):
            if not callable(getattr(model, accessor, None)):
                raise TypeError(
                    f"{type(model).__name__} has no {accessor}(); "
                    "EmbeddingProvider needs a fitted FunkSVD-style model"
                )
        self.model = model
        self.domain_profile = domain_profile
        self.item_attributes = dict(item_attributes or {})
        if context_weight is None:
            context_weight = AdviceEngine().gain_scale
        self.context_weight = float(context_weight)
        # user-row lookup, rebuilt whenever the model is refit (detected
        # by identity of the factor array — fit() reallocates)
        self._user_lookup: dict[int, int] = {}
        self._user_lookup_key: int | None = None

    def _emotions(self) -> tuple[str, ...]:
        if self.domain_profile is None:
            return ()
        return self.domain_profile.layout()[0]

    # -- build side --------------------------------------------------------

    def item_vectors(self) -> tuple[list[ItemId], np.ndarray]:
        """``(item_ids, matrix)`` to index — one row per known item."""
        item_ids, factors, biases = self.model.item_embeddings()
        blocks = [np.asarray(factors), np.asarray(biases)[:, None]]
        if self.domain_profile is not None:
            emotions, attributes, gains = self.domain_profile.layout()
            presence = AdviceEngine().presence_matrix(
                item_ids, self.item_attributes, self.domain_profile
            )
            blocks.append(presence @ gains.T)
        return list(item_ids), np.ascontiguousarray(np.hstack(blocks))

    def fingerprint(self) -> object:
        """Cheap identity of the current trained state.

        Changes exactly when ``fit()`` reallocates the factor arrays —
        the refresher compares fingerprints to decide whether a rebuild
        is due without touching any vectors.
        """
        __, factors, biases = self.model.item_embeddings()
        base = np.asarray(factors)
        return (
            base.__array_interface__["data"][0],
            base.shape,
            np.asarray(biases).__array_interface__["data"][0],
        )

    # -- query side --------------------------------------------------------

    def _user_rows(self, user_ids: Sequence[int]) -> np.ndarray:
        """Factor-matrix rows for ``user_ids`` (-1 for unknown users)."""
        ids, factors, __ = self.model.user_embeddings()
        key = id(np.asarray(factors).base) or id(factors)
        if key != self._user_lookup_key:
            self._user_lookup = {int(u): r for r, u in enumerate(ids)}
            self._user_lookup_key = key
        lookup = self._user_lookup
        return np.asarray(
            [lookup.get(int(u), -1) for u in user_ids], dtype=np.int64
        )

    def query_vectors(
        self, user_ids: Sequence[int], context: object | None = None
    ) -> np.ndarray:
        """``(n_users, dim)`` query matrix matching :meth:`item_vectors`.

        Unknown users get zero factors — their retrieval ranking then
        rides on item bias plus emotional context alone, which is
        exactly the cold-start behaviour of the exact pipeline (the
        scorer's bias-only fallback, context-adjusted).
        """
        __, factors, __bias = self.model.user_embeddings()
        factors = np.asarray(factors)
        rows = self._user_rows(user_ids)
        p = np.zeros((len(user_ids), factors.shape[1]))
        known = rows >= 0
        if known.any():
            p[known] = factors[rows[known]]
        blocks = [p, np.ones((len(user_ids), 1))]
        emotions = self._emotions()
        if emotions:
            blocks.append(
                self.context_weight
                * _evidence_rows(user_ids, context, emotions)
            )
        return np.hstack(blocks)


class StaticEmbeddingProvider:
    """Fixed, precomputed embeddings (synthetic catalogs, benchmarks).

    The same provider contract as :class:`EmbeddingProvider` but over
    plain arrays: item rows are indexed as given, query rows are looked
    up by user id (unknown users get zero vectors), and the fingerprint
    is a manual version counter — call :meth:`bump` after replacing the
    arrays to signal the refresher.
    """

    def __init__(
        self,
        item_ids: Sequence[ItemId],
        item_matrix: np.ndarray,
        user_ids: Sequence[int],
        user_matrix: np.ndarray,
    ) -> None:
        self._item_ids = list(item_ids)
        self._items = np.asarray(item_matrix, dtype=np.float64)
        self._users = np.asarray(user_matrix, dtype=np.float64)
        if len(self._item_ids) != len(self._items):
            raise ValueError("item_matrix rows must match item_ids")
        if len(user_ids) != len(self._users):
            raise ValueError("user_matrix rows must match user_ids")
        if self._items.shape[1] != self._users.shape[1]:
            raise ValueError(
                f"item dim {self._items.shape[1]} != "
                f"user dim {self._users.shape[1]}"
            )
        self._rows = {int(u): r for r, u in enumerate(user_ids)}
        self._version = 0

    def item_vectors(self) -> tuple[list[ItemId], np.ndarray]:
        return list(self._item_ids), self._items

    def query_vectors(
        self, user_ids: Sequence[int], context: object | None = None
    ) -> np.ndarray:
        out = np.zeros((len(user_ids), self._users.shape[1]))
        for i, uid in enumerate(user_ids):
            row = self._rows.get(int(uid))
            if row is not None:
                out[i] = self._users[row]
        return out

    def bump(self) -> None:
        """Advance the fingerprint (the arrays were swapped for new ones)."""
        self._version += 1

    def fingerprint(self) -> object:
        return ("static", self._version)
