"""Physiological features → (arousal, valence) → emotional attributes.

The circumplex-style mapping the paper's future work sketches: heart rate
and GSR drive *arousal*; sustained high arousal with falling skin
temperature (acute-stress vasoconstriction) drives *valence* negative.
The (arousal, valence) point is then projected onto the emotion catalog by
proximity to each attribute's own (arousal, valence) coordinates, yielding
an :class:`~repro.core.emotions.EmotionalState` that plugs straight into a
:class:`~repro.core.sum_model.SmartUserModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.emotions import EMOTION_CATALOG, EmotionalState, clamp01
from repro.physio.features import WindowFeatures


@dataclass(frozen=True)
class EmotionalMapper:
    """Deterministic features → emotional-state mapping.

    Parameters are physiological anchor points, not learned weights; the
    defaults match the generator's calibration (hr 70 calm / 165 stressed,
    gsr 2 calm / 11 stressed).
    """

    hr_calm: float = 70.0
    hr_stressed: float = 165.0
    gsr_calm: float = 2.0
    gsr_stressed: float = 11.0
    temp_drop_for_fear: float = 0.8  # °C below baseline ⇒ fear-type stress
    temp_baseline: float = 33.0
    sharpness: float = 3.0  # softmax-ish projection sharpness

    def arousal(self, features: WindowFeatures) -> float:
        """Arousal in [0, 1] from heart rate and GSR."""
        hr_component = (features.hr_mean - self.hr_calm) / (
            self.hr_stressed - self.hr_calm
        )
        gsr_component = (features.gsr_mean - self.gsr_calm) / (
            self.gsr_stressed - self.gsr_calm
        )
        return clamp01(0.6 * hr_component + 0.4 * gsr_component)

    def valence(self, features: WindowFeatures) -> float:
        """Valence in [-1, 1]: negative under acute-stress signatures."""
        arousal = self.arousal(features)
        temp_drop = self.temp_baseline - features.temp_mean
        fear_evidence = clamp01(temp_drop / self.temp_drop_for_fear)
        # High arousal is negative when accompanied by vasoconstriction,
        # mildly positive otherwise (exertion/engagement).
        valence = 0.3 * arousal - 1.2 * arousal * fear_evidence
        return float(np.clip(valence, -1.0, 1.0))

    def emotional_state(self, features: WindowFeatures) -> EmotionalState:
        """Project (arousal, valence) onto the emotion catalog.

        Each attribute's intensity falls off with squared distance from
        the measured point in (valence, arousal) space, normalized so the
        closest attribute gets the highest intensity.
        """
        arousal = self.arousal(features)
        valence = self.valence(features)
        weights = {}
        for name, attribute in EMOTION_CATALOG.items():
            distance_sq = (
                (attribute.valence - valence) ** 2
                + (attribute.arousal - arousal) ** 2
            )
            weights[name] = float(np.exp(-self.sharpness * distance_sq))
        peak = max(weights.values())
        scale = (0.2 + 0.8 * arousal) / peak if peak > 0 else 0.0
        return EmotionalState(
            {name: clamp01(w * scale) for name, w in weights.items()}
        )
