"""Synthetic physiological streams with injected stress episodes.

Three channels at 1 Hz, with baselines and stress responses drawn from the
exercise-physiology literature's ballpark values:

* heart rate (bpm): resting ~70, heavy exertion/fear up to ~180;
* galvanic skin response (µS): calm ~2, arousal up to ~12;
* skin temperature (°C): ~33, dropping slightly under acute stress
  (peripheral vasoconstriction).

Streams are deterministic under a seed; :class:`StressEpisode` intervals
raise the stress level with smooth onset/offset ramps so windowed features
see realistic transitions rather than steps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.seeds import derive_rng


@dataclass(frozen=True)
class StressEpisode:
    """One stress interval: [start, end) seconds, intensity in (0, 1]."""

    start: float
    end: float
    intensity: float = 1.0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"episode end {self.end} <= start {self.start}")
        if not 0.0 < self.intensity <= 1.0:
            raise ValueError(f"intensity {self.intensity} outside (0, 1]")


@dataclass(frozen=True)
class PhysioSample:
    """One 1 Hz sample of the three channels."""

    timestamp: float
    heart_rate: float
    gsr: float
    skin_temp: float
    #: simulator-side ground truth stress level in [0, 1] (never exposed
    #: to the mapper; used only by tests and benches for validation)
    true_stress: float


_RAMP_SECONDS = 20.0


def _stress_level(t: float, episodes: list[StressEpisode]) -> float:
    level = 0.0
    for episode in episodes:
        if t < episode.start - _RAMP_SECONDS or t > episode.end + _RAMP_SECONDS:
            continue
        if t < episode.start:
            ramp = 1.0 - (episode.start - t) / _RAMP_SECONDS
        elif t > episode.end:
            ramp = 1.0 - (t - episode.end) / _RAMP_SECONDS
        else:
            ramp = 1.0
        level = max(level, episode.intensity * max(0.0, ramp))
    return level


def generate_stream(
    duration_seconds: float = 600.0,
    episodes: list[StressEpisode] | None = None,
    firefighter_id: int = 0,
    seed: int = 7,
    start_ts: float = 0.0,
) -> list[PhysioSample]:
    """A 1 Hz three-channel stream with the given stress episodes."""
    if duration_seconds <= 0:
        raise ValueError(f"duration must be positive, got {duration_seconds}")
    episodes = episodes or []
    rng = derive_rng(seed, "physio", str(firefighter_id))
    n = int(duration_seconds)
    samples: list[PhysioSample] = []
    # Slow baseline wander via a bounded random walk.
    hr_wander = 0.0
    gsr_wander = 0.0
    for i in range(n):
        t = start_ts + float(i)
        stress = _stress_level(float(i), episodes)
        hr_wander = float(np.clip(hr_wander + rng.normal(0.0, 0.2), -5.0, 5.0))
        gsr_wander = float(np.clip(gsr_wander + rng.normal(0.0, 0.02), -0.5, 0.5))
        heart_rate = (
            70.0 + hr_wander + 95.0 * stress + rng.normal(0.0, 2.0)
        )
        gsr = 2.0 + gsr_wander + 9.0 * stress + abs(rng.normal(0.0, 0.15))
        skin_temp = 33.0 - 1.2 * stress + rng.normal(0.0, 0.05)
        samples.append(
            PhysioSample(
                timestamp=t,
                heart_rate=float(np.clip(heart_rate, 40.0, 210.0)),
                gsr=float(max(gsr, 0.1)),
                skin_temp=float(np.clip(skin_temp, 28.0, 40.0)),
                true_stress=stress,
            )
        )
    return samples
