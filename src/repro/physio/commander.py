"""The commander advisor of the firefighter scenario.

"The objective of the team commander is to receive advice from the system
about firefighter's current emotional state and its implications in the
rescue operation so he can better assess the operational fitness of his
colleague in particular situations."

:class:`CommanderAdvisor` consumes per-firefighter physiological windows,
maintains their emotional state, and produces
:class:`FitnessAssessment` records: a fitness score in [0, 1], a status
band and an optional rotation alert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.emotions import EmotionalState
from repro.physio.features import WindowFeatures, sliding_windows, window_features
from repro.physio.mapping import EmotionalMapper
from repro.physio.signals import PhysioSample

#: status bands by fitness score
_BANDS = (
    (0.75, "fit"),
    (0.45, "strained"),
    (0.0, "at-risk"),
)


@dataclass(frozen=True)
class FitnessAssessment:
    """One advisory line for the commander."""

    firefighter_id: int
    window_end: float
    fitness: float
    status: str
    dominant_emotions: tuple[str, ...]
    alert: str | None


class CommanderAdvisor:
    """Tracks each firefighter's emotional state and advises rotation."""

    def __init__(
        self,
        mapper: EmotionalMapper | None = None,
        alert_threshold: float = 0.45,
        consecutive_for_alert: int = 2,
    ) -> None:
        if not 0.0 < alert_threshold < 1.0:
            raise ValueError(f"alert_threshold {alert_threshold} outside (0, 1)")
        if consecutive_for_alert < 1:
            raise ValueError("consecutive_for_alert must be >= 1")
        self.mapper = mapper or EmotionalMapper()
        self.alert_threshold = alert_threshold
        self.consecutive_for_alert = consecutive_for_alert
        self._strain_streaks: dict[int, int] = {}
        self.states: dict[int, EmotionalState] = {}

    def fitness_score(self, state: EmotionalState, features: WindowFeatures) -> float:
        """Operational fitness in [0, 1].

        High negative-valence arousal (fear) and extreme heart rates both
        reduce fitness; positive engagement keeps it high.
        """
        mood = state.mood()  # [-1, 1]
        arousal = self.mapper.arousal(features)
        fear_load = max(0.0, -mood) * arousal
        exhaustion = max(0.0, arousal - 0.85) * 2.0
        fitness = 1.0 - 0.9 * fear_load - exhaustion
        return float(min(1.0, max(0.0, fitness)))

    def assess_window(
        self, firefighter_id: int, features: WindowFeatures
    ) -> FitnessAssessment:
        """Fold one window into the firefighter's state and advise."""
        state = self.mapper.emotional_state(features)
        previous = self.states.get(firefighter_id)
        if previous is not None:
            previous.blend(state, weight=0.6)
            state = previous
        self.states[firefighter_id] = state

        fitness = self.fitness_score(state, features)
        status = next(band for cut, band in _BANDS if fitness >= cut)
        streak = self._strain_streaks.get(firefighter_id, 0)
        streak = streak + 1 if fitness < self.alert_threshold else 0
        self._strain_streaks[firefighter_id] = streak
        alert = None
        if streak >= self.consecutive_for_alert:
            alert = (
                f"rotate firefighter {firefighter_id}: fitness "
                f"{fitness:.2f} for {streak} consecutive windows"
            )
        dominant = tuple(name for name, value in state.top(3) if value > 0.15)
        return FitnessAssessment(
            firefighter_id=firefighter_id,
            window_end=features.end,
            fitness=fitness,
            status=status,
            dominant_emotions=dominant,
            alert=alert,
        )

    def assess_stream(
        self,
        firefighter_id: int,
        samples: list[PhysioSample],
        window_seconds: float = 30.0,
        step_seconds: float = 10.0,
    ) -> list[FitnessAssessment]:
        """Assess a whole stream window by window."""
        assessments = []
        for window in sliding_windows(samples, window_seconds, step_seconds):
            assessments.append(
                self.assess_window(firefighter_id, window_features(window))
            )
        return assessments
