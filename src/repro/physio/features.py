"""Sliding-window features over physiological streams."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.physio.signals import PhysioSample


@dataclass(frozen=True)
class WindowFeatures:
    """Summary features of one window."""

    start: float
    end: float
    hr_mean: float
    hr_std: float
    hr_slope: float        # bpm per second, linear fit
    gsr_mean: float
    gsr_delta: float       # last minus first (phasic drift)
    temp_mean: float
    temp_slope: float
    #: mean simulator ground-truth stress (validation only)
    true_stress_mean: float


def sliding_windows(
    samples: list[PhysioSample],
    window_seconds: float = 30.0,
    step_seconds: float = 10.0,
) -> list[list[PhysioSample]]:
    """Overlapping windows over a time-ordered sample list."""
    if window_seconds <= 0 or step_seconds <= 0:
        raise ValueError("window and step must be positive")
    if not samples:
        return []
    windows: list[list[PhysioSample]] = []
    start = samples[0].timestamp
    last = samples[-1].timestamp
    while start <= last - window_seconds + 1:
        window = [
            s for s in samples if start <= s.timestamp < start + window_seconds
        ]
        if window:
            windows.append(window)
        start += step_seconds
    return windows


def _slope(times: np.ndarray, values: np.ndarray) -> float:
    if len(times) < 2:
        return 0.0
    t = times - times.mean()
    denominator = float(np.dot(t, t))
    if denominator == 0:
        return 0.0
    return float(np.dot(t, values - values.mean()) / denominator)


def window_features(window: list[PhysioSample]) -> WindowFeatures:
    """Compute :class:`WindowFeatures` for one window."""
    if not window:
        raise ValueError("empty window")
    times = np.asarray([s.timestamp for s in window])
    hr = np.asarray([s.heart_rate for s in window])
    gsr = np.asarray([s.gsr for s in window])
    temp = np.asarray([s.skin_temp for s in window])
    stress = np.asarray([s.true_stress for s in window])
    return WindowFeatures(
        start=float(times[0]),
        end=float(times[-1]),
        hr_mean=float(hr.mean()),
        hr_std=float(hr.std()),
        hr_slope=_slope(times, hr),
        gsr_mean=float(gsr.mean()),
        gsr_delta=float(gsr[-1] - gsr[0]),
        temp_mean=float(temp.mean()),
        temp_slope=_slope(times, temp),
        true_stress_mean=float(stress.mean()),
    )
