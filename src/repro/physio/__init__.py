"""The wearIT@work future-work extension (Section 7).

"We are sensing physiological and contextual parameters of firefighters in
Paris brigades through wearable computing ... to provide recommendations
to their commander who is advised by an Ambient Recommender System in an
emergency ... mapping physiological signals to user's emotional context."

The paper only sketches this; we implement the sketch end to end:

* :mod:`repro.physio.signals` — synthetic heart-rate / galvanic-skin-
  response / skin-temperature streams with injected stress episodes;
* :mod:`repro.physio.features` — sliding-window signal features;
* :mod:`repro.physio.mapping` — features → (arousal, valence) → the
  emotional attributes of :mod:`repro.core.emotions`;
* :mod:`repro.physio.commander` — the commander advisor: per-firefighter
  operational-fitness scores and alerts.
"""

from repro.physio.commander import CommanderAdvisor, FitnessAssessment
from repro.physio.features import WindowFeatures, sliding_windows, window_features
from repro.physio.mapping import EmotionalMapper
from repro.physio.signals import PhysioSample, StressEpisode, generate_stream

__all__ = [
    "CommanderAdvisor",
    "EmotionalMapper",
    "FitnessAssessment",
    "PhysioSample",
    "StressEpisode",
    "WindowFeatures",
    "generate_stream",
    "sliding_windows",
    "window_features",
]
