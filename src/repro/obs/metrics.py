"""Low-overhead, thread-safe metrics: counters, gauges, histograms.

The telemetry substrate every serving/streaming layer reports through.
Design constraints, in order:

* **hot paths pay almost nothing** — ``observe()``/``inc()`` are a
  :func:`bisect.bisect_left` over a pre-built bound tuple plus one numpy
  scalar increment under a per-instrument lock: no allocation, no string
  formatting, no dict churn.  Disabled telemetry pays even less: the
  :data:`NULL_REGISTRY` hands out singleton instruments whose methods
  are empty (one C-level method call per touch — see the overhead guard
  in ``benchmarks/bench_latency_slo.py``);
* **lock per instrument** — writers on different instruments never
  contend, and no instrument method ever acquires anything *while*
  holding its lock, so instrument locks are strict leaves of the
  process lock graph;
* **snapshots are consistent per instrument, immutable, and complete**
  — :meth:`MetricsRegistry.snapshot` captures every instrument under
  its own lock into frozen dataclasses; p50/p90/p99/p999 (any quantile)
  are derivable from any histogram snapshot after the fact, so the
  serving path never computes percentiles inline.

Instruments are keyed by name; a label convention rides on the name via
:func:`labelled` (``labelled("bus.depth", topic="lifelog")`` →
``bus.depth{topic="lifelog"}``), which the Prometheus exporter in
:mod:`repro.obs.export` unpacks back into real labels.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

import numpy as np

from repro.analysis.contracts import declare_lock, guarded_by, make_lock

declare_lock("Counter._lock")
declare_lock("Gauge._lock")
declare_lock("Histogram._lock")
declare_lock("MetricsRegistry._lock")

#: default latency bucket upper bounds, seconds (overflow bucket implied).
#: Geometric 1-2.5-5 ladder from 100µs to 10s — wide enough to hold both
#: a sub-millisecond cache capture and a saturated 1s update-to-visible.
LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: default size/width bucket upper bounds (batch sizes, request widths).
SIZE_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
    1024.0, 2048.0, 4096.0,
)


def labelled(name: str, **labels: object) -> str:
    """Attach Prometheus-style labels to an instrument name.

    Labels are part of the instrument's identity (one time series per
    label combination), rendered in sorted-key order so the same labels
    always produce the same name.
    """
    if not labels:
        return name
    inner = ",".join(
        f'{key}="{labels[key]}"' for key in sorted(labels)
    )
    return f"{name}{{{inner}}}"


def split_labels(name: str) -> tuple[str, str]:
    """Inverse of :func:`labelled`: ``(base name, label body or "")``."""
    if name.endswith("}") and "{" in name:
        base, __, body = name.partition("{")
        return base, body[:-1]
    return name, ""


def quantile_from_buckets(
    bounds: tuple[float, ...],
    counts: tuple[int, ...],
    q: float,
    minimum: float,
    maximum: float,
) -> float:
    """Estimate the ``q``-quantile of a fixed-bucket histogram.

    Linear interpolation inside the bucket holding the target rank,
    clamped to the observed ``minimum``/``maximum`` so the open-ended
    first and overflow buckets report real values instead of bucket
    edges.  Shared by :class:`HistogramSnapshot` and the JSONL readers
    in :mod:`repro.obs.export`, so offline artifacts and live snapshots
    derive identical percentiles.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return float("nan")
    rank = q * total
    cumulative = 0.0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        previous = cumulative
        cumulative += count
        if cumulative < rank:
            continue
        lower = minimum if index == 0 else bounds[index - 1]
        upper = maximum if index >= len(bounds) else bounds[index]
        lower = max(min(lower, maximum), minimum)
        upper = max(min(upper, maximum), minimum)
        if count == 0 or upper <= lower:
            return float(upper)
        fraction = (rank - previous) / count
        return float(lower + (upper - lower) * min(max(fraction, 0.0), 1.0))
    return float(maximum)


# ---------------------------------------------------------------------------
# snapshots
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CounterSnapshot:
    """Point-in-time value of one counter."""

    name: str
    value: float

    def as_dict(self) -> dict[str, object]:
        return {"type": "counter", "value": self.value}


@dataclass(frozen=True)
class GaugeSnapshot:
    """Point-in-time value of one gauge."""

    name: str
    value: float

    def as_dict(self) -> dict[str, object]:
        return {"type": "gauge", "value": self.value}


@dataclass(frozen=True)
class HistogramSnapshot:
    """Frozen bucket state of one histogram; quantiles derive from it."""

    name: str
    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    sum: float
    count: int
    min: float
    max: float

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1), interpolated within its bucket."""
        return quantile_from_buckets(
            self.bounds, self.counts, q, self.min, self.max
        )

    def percentiles(
        self, points: tuple[float, ...] = (0.50, 0.90, 0.99, 0.999)
    ) -> dict[str, float]:
        """The standard SLO curve: ``{"p50": ..., ..., "p999": ...}``."""
        return {
            "p" + format(point * 100, "g").replace(".", ""):
                self.quantile(point)
            for point in points
        }

    def as_dict(self) -> dict[str, object]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }


InstrumentSnapshot = CounterSnapshot | GaugeSnapshot | HistogramSnapshot


@dataclass(frozen=True)
class MetricsSnapshot:
    """One consistent-per-instrument capture of a whole registry."""

    instruments: Mapping[str, InstrumentSnapshot]

    def __iter__(self) -> Iterator[InstrumentSnapshot]:
        return iter(self.instruments.values())

    def __len__(self) -> int:
        return len(self.instruments)

    def __contains__(self, name: object) -> bool:
        return name in self.instruments

    def get(self, name: str) -> InstrumentSnapshot | None:
        return self.instruments.get(name)

    def value(self, name: str) -> float:
        """Counter/gauge value (NaN when absent)."""
        inst = self.instruments.get(name)
        if isinstance(inst, (CounterSnapshot, GaugeSnapshot)):
            return inst.value
        return float("nan")

    def histogram(self, name: str) -> HistogramSnapshot:
        inst = self.instruments.get(name)
        if not isinstance(inst, HistogramSnapshot):
            raise KeyError(f"no histogram named {name!r} in this snapshot")
        return inst

    def as_dict(self) -> dict[str, dict[str, object]]:
        """JSON-serializable form (the JSONL exporter's payload)."""
        return {
            name: inst.as_dict()
            for name, inst in sorted(self.instruments.items())
        }


# ---------------------------------------------------------------------------
# live instruments
# ---------------------------------------------------------------------------


@guarded_by("_lock", "_value")
class Counter:
    """A monotonically increasing count (events applied, errors, ...)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = make_lock("Counter._lock")

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (must be >= 0; counters never go down)."""
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> CounterSnapshot:
        return CounterSnapshot(self.name, self.value)


@guarded_by("_lock", "_value")
class Gauge:
    """A point-in-time level: set explicitly or backed by a callable.

    Callback gauges (``fn=...``) read their source *at snapshot time*
    outside any instrument lock — the natural fit for queue depths and
    dirty-set sizes that already have a cheap thread-safe property.
    """

    __slots__ = ("name", "fn", "_value", "_lock")

    def __init__(self, name: str, fn: Callable[[], float] | None = None) -> None:
        self.name = name
        self.fn = fn
        self._value = 0.0
        self._lock = make_lock("Gauge._lock")

    def set(self, value: float) -> None:
        if self.fn is not None:
            raise TypeError(f"gauge {self.name} is callback-backed; cannot set()")
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        if self.fn is not None:
            # Deliberately lock-free: the callback may take its owner's
            # lock (queue depth), and instrument locks must stay leaves.
            return float(self.fn())
        with self._lock:
            return self._value

    def snapshot(self) -> GaugeSnapshot:
        return GaugeSnapshot(self.name, self.value)


@guarded_by("_lock", "_counts", "_sum", "_min", "_max")
class Histogram:
    """Fixed-bucket histogram with an allocation-free ``observe()``.

    ``bounds`` are inclusive upper bounds in ascending order; one
    overflow bucket is appended implicitly.  Counts live in a numpy
    int64 array so snapshots copy them in one C call.
    """

    __slots__ = ("name", "bounds", "_counts", "_sum", "_min", "_max", "_lock")

    def __init__(
        self, name: str, bounds: tuple[float, ...] = LATENCY_BUCKETS_S
    ) -> None:
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bound")
        ordered = tuple(float(b) for b in bounds)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"histogram {name} bounds must be strictly increasing"
            )
        self.name = name
        self.bounds = ordered
        self._counts = np.zeros(len(ordered) + 1, dtype=np.int64)
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = make_lock("Histogram._lock")

    def observe(self, value: float) -> None:
        """Record one observation — the hot-path entry point."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return int(self._counts.sum())

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            counts = self._counts.copy()
            total_sum = self._sum
            minimum = self._min
            maximum = self._max
        count = int(counts.sum())
        return HistogramSnapshot(
            name=self.name,
            bounds=self.bounds,
            counts=tuple(int(c) for c in counts),
            sum=total_sum,
            count=count,
            min=minimum if count else 0.0,
            max=maximum if count else 0.0,
        )


Instrument = Counter | Gauge | Histogram


# ---------------------------------------------------------------------------
# registries
# ---------------------------------------------------------------------------


@guarded_by("_lock", "_instruments")
class MetricsRegistry:
    """Named instruments, get-or-create, one lock per instrument.

    The registry lock only guards the name table; instrument updates
    never touch it, and :meth:`snapshot` captures instruments *after*
    releasing it — so the registry lock is a leaf too.
    """

    #: the zero-cost-facade probe: ``registry.enabled`` tells call sites
    #: whether minting trace ids / taking timestamps buys anything
    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Instrument] = {}
        self._lock = make_lock("MetricsRegistry._lock")

    def _get_or_create(
        self, name: str, factory: Callable[[], Instrument], kind: type
    ) -> Instrument:
        if not name:
            raise ValueError("instrument needs a name")
        existing = self._instruments.get(name)  # GIL-atomic fast path
        if existing is None:
            with self._lock:
                existing = self._instruments.get(name)
                if existing is None:
                    existing = factory()
                    self._instruments[name] = existing
        if not isinstance(existing, kind):
            raise TypeError(
                f"instrument {name!r} already exists as "
                f"{type(existing).__name__}, not {kind.__name__}"
            )
        return existing

    def counter(self, name: str) -> Counter:
        inst = self._get_or_create(name, lambda: Counter(name), Counter)
        assert isinstance(inst, Counter)
        return inst

    def gauge(self, name: str, fn: Callable[[], float] | None = None) -> Gauge:
        inst = self._get_or_create(name, lambda: Gauge(name, fn), Gauge)
        assert isinstance(inst, Gauge)
        return inst

    def histogram(
        self, name: str, bounds: tuple[float, ...] = LATENCY_BUCKETS_S
    ) -> Histogram:
        inst = self._get_or_create(
            name, lambda: Histogram(name, bounds), Histogram
        )
        assert isinstance(inst, Histogram)
        return inst

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def __contains__(self, name: object) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> MetricsSnapshot:
        """Capture every instrument (each under its own lock only)."""
        with self._lock:
            instruments = list(self._instruments.values())
        return MetricsSnapshot(
            {inst.name: inst.snapshot() for inst in instruments}
        )


class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0.0

    def inc(self, n: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    bounds: tuple[float, ...] = ()
    count = 0

    def observe(self, value: float) -> None:
        pass


#: the singleton no-op instruments the null registry hands out
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """The telemetry-disabled facade: every instrument is a shared no-op.

    Instrumented components resolve their instruments once at
    construction, so a disabled hot path costs exactly one empty method
    call per touch — the overhead guard in the latency bench holds this
    to <2% of streamed replay throughput.
    """

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return NULL_COUNTER

    def gauge(
        self, name: str, fn: Callable[[], float] | None = None
    ) -> _NullGauge:
        return NULL_GAUGE

    def histogram(
        self, name: str, bounds: tuple[float, ...] = LATENCY_BUCKETS_S
    ) -> _NullHistogram:
        return NULL_HISTOGRAM

    def names(self) -> list[str]:
        return []

    def __contains__(self, name: object) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot({})


#: the module-level disabled registry — the default ``telemetry`` of
#: every instrumented component
NULL_REGISTRY = NullRegistry()


def resolve_registry(
    telemetry: "MetricsRegistry | NullRegistry | None",
) -> "MetricsRegistry | NullRegistry":
    """``None`` → the null registry; anything else passes through."""
    return telemetry if telemetry is not None else NULL_REGISTRY
