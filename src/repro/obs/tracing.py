"""Lightweight spans: where did this event's update-to-visible time go?

A *trace* is one event's (or one serving request's) full lifecycle; a
*span* is one named stage of it with start/end timestamps from
``time.perf_counter()``.  Trace ids are minted at ingest — the bus
stamps every :class:`~repro.streaming.bus.Delivery` at enqueue when
telemetry is enabled, and :class:`~repro.serving.service.
RecommendationService` stamps every request at arrival — and ride the
envelope through every stage, so one streamed event's trace reads::

    bus.queue     publish → dequeue      (queue wait + backpressure)
    worker.map    dequeue → ops mapped
    worker.commit ops → store committed  (cache publish inside)
    cache.publish commit → version visible

and one serving request's::

    serving.resolve  models/validation
    serving.score    base score_batch
    serving.advice   emotional multiplier
    serving.respond  rank + envelope build

The :class:`Tracer` retains the most recent ``max_traces`` complete
traces in a bounded LRU (per-event retention is what makes "where did
*this* event's second go" answerable without a log pipeline); the
per-stage *aggregate* latencies live in the stage histograms of
:mod:`repro.obs.metrics`, not here.  A disabled pipeline uses
:data:`NULL_TRACER`, whose ``add`` is an empty method and whose
``enabled`` flag tells hot paths not to mint ids or take timestamps.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass

from repro.analysis.contracts import declare_lock, guarded_by, make_lock

declare_lock("Tracer._lock")

#: process-wide trace-id source.  ``next()`` on an ``itertools.count``
#: is a single C call — atomic under the GIL, no lock needed.
_TRACE_IDS = itertools.count(1)


def next_trace_id() -> int:
    """Mint a process-unique trace id (monotonic, GIL-atomic)."""
    return next(_TRACE_IDS)


@dataclass(frozen=True)
class Span:
    """One named stage of one trace, in ``perf_counter`` seconds."""

    trace_id: int
    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@guarded_by("_lock", "_spans")
class Tracer:
    """Bounded retention of complete traces, newest-kept.

    ``add`` is the only hot-path method: one dataclass build plus an
    append under the tracer lock.  Streamed events call it once per
    stage *per delivery*, so traffic that outruns ``max_traces`` simply
    rotates the window — aggregate latency always lives in the stage
    histograms, traces answer the "this specific event" question.
    """

    enabled = True

    def __init__(self, max_traces: int = 1024) -> None:
        if max_traces < 1:
            raise ValueError(f"max_traces must be >= 1, got {max_traces}")
        self.max_traces = max_traces
        self._spans: OrderedDict[int, list[Span]] = OrderedDict()
        self._lock = make_lock("Tracer._lock")

    def add(self, trace_id: int, name: str, start: float, end: float) -> None:
        """Record one stage of one trace."""
        span = Span(int(trace_id), name, float(start), float(end))
        with self._lock:
            spans = self._spans.get(span.trace_id)
            if spans is None:
                while len(self._spans) >= self.max_traces:
                    self._spans.popitem(last=False)
                spans = []
                self._spans[span.trace_id] = spans
            spans.append(span)

    # -- reads ---------------------------------------------------------------

    def trace(self, trace_id: int) -> tuple[Span, ...]:
        """All retained spans of one trace, in recording order."""
        with self._lock:
            return tuple(self._spans.get(int(trace_id), ()))

    def traces(self) -> dict[int, tuple[Span, ...]]:
        """Snapshot of every retained trace (oldest first)."""
        with self._lock:
            return {tid: tuple(spans) for tid, spans in self._spans.items()}

    def breakdown(self, trace_id: int) -> dict[str, float]:
        """``stage name -> seconds`` for one trace (summed per stage)."""
        totals: dict[str, float] = {}
        for span in self.trace(trace_id):
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class NullTracer:
    """The tracing-disabled facade: no ids minted, nothing retained."""

    enabled = False
    max_traces = 0

    def add(self, trace_id: int, name: str, start: float, end: float) -> None:
        pass

    def trace(self, trace_id: int) -> tuple[Span, ...]:
        return ()

    def traces(self) -> dict[int, tuple[Span, ...]]:
        return {}

    def breakdown(self, trace_id: int) -> dict[str, float]:
        return {}

    def __len__(self) -> int:
        return 0


#: the module-level disabled tracer — the default of every instrumented
#: component
NULL_TRACER = NullTracer()


def resolve_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """``None`` → the null tracer; anything else passes through."""
    return tracer if tracer is not None else NULL_TRACER
