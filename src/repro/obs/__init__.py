"""Telemetry plane: metrics, tracing, and exporters for the live stack.

The observability substrate of the streaming/serving system:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges and fixed-bucket histograms (lock per instrument,
  allocation-free ``observe()``, any percentile derivable from any
  snapshot) plus the zero-cost :data:`NULL_REGISTRY` facade every
  instrumented component defaults to;
* :mod:`repro.obs.tracing` — trace ids minted at event ingest/request
  arrival, spans stamped per lifecycle stage, bounded retention in a
  :class:`Tracer`;
* :mod:`repro.obs.export` — JSONL snapshot writer and Prometheus text
  exposition (``python -m repro.obs`` renders a committed snapshot).

Enable end to end by passing one registry (and optionally one tracer)
down the stack — ``StreamingUpdater(..., telemetry=reg)``,
``RecommendationService(..., telemetry=reg)``, or engine-wide via
``EngineConfig(telemetry=reg)``.  Components left at the default run on
null instruments: no locks, no timestamps, no trace ids.
"""

from repro.obs.export import (
    SnapshotWriter,
    histogram_quantile,
    merge_metrics,
    read_jsonl,
    snapshot_record,
    to_prometheus,
    write_jsonl,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    SIZE_BUCKETS,
    Counter,
    CounterSnapshot,
    Gauge,
    GaugeSnapshot,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    NULL_REGISTRY,
    NullRegistry,
    labelled,
    quantile_from_buckets,
    resolve_registry,
    split_labels,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    next_trace_id,
    resolve_tracer,
)

__all__ = [
    "Counter",
    "CounterSnapshot",
    "Gauge",
    "GaugeSnapshot",
    "Histogram",
    "HistogramSnapshot",
    "LATENCY_BUCKETS_S",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "SIZE_BUCKETS",
    "SnapshotWriter",
    "Span",
    "Tracer",
    "histogram_quantile",
    "labelled",
    "merge_metrics",
    "next_trace_id",
    "quantile_from_buckets",
    "read_jsonl",
    "resolve_registry",
    "resolve_tracer",
    "snapshot_record",
    "split_labels",
    "to_prometheus",
    "write_jsonl",
]
