"""Render committed telemetry snapshots: ``python -m repro.obs``.

Reads JSONL snapshot files (the :class:`~repro.obs.export.
SnapshotWriter` / latency-bench artifact format) and renders one record
— or, with ``--merge``, the fold of *every* record across *every* file
(counters/histograms add, gauges last-wins) — as Prometheus text
exposition or pretty JSON::

    python -m repro.obs benchmarks/results/S7_latency_slo.jsonl
    python -m repro.obs snapshots.jsonl --line 0 --format json
    python -m repro.obs snapshots.jsonl --quantile streaming.update_visible_seconds=0.99
    python -m repro.obs worker-snapshots.jsonl --merge

The ``--merge`` path is how per-shard-worker exports from the
multi-process plane (one JSONL line per worker) become one fleet-wide
view.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.obs.export import (
    histogram_quantile,
    merge_metrics,
    read_jsonl,
    to_prometheus,
)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render JSONL metrics snapshots.",
    )
    parser.add_argument(
        "paths", nargs="+", metavar="path", help="JSONL snapshot file(s)"
    )
    parser.add_argument(
        "--line", type=int, default=-1,
        help="record index to render (default: last line; single file only)",
    )
    parser.add_argument(
        "--merge", action="store_true",
        help="fold every record of every file into one fleet-wide view "
             "(counters/histograms add, gauges last-wins)",
    )
    parser.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus",
        help="output format (default: prometheus text exposition)",
    )
    parser.add_argument(
        "--quantile", action="append", default=[], metavar="HIST=Q",
        help="also print the Q-quantile of histogram HIST "
             "(repeatable, e.g. serving.request_seconds=0.99)",
    )
    args = parser.parse_args(argv)
    if len(args.paths) > 1 and not args.merge:
        print("multiple files require --merge", file=sys.stderr)
        return 2

    all_records = []
    for path in args.paths:
        try:
            records = read_jsonl(path)
        except OSError as error:
            print(f"cannot read {path}: {error}", file=sys.stderr)
            return 2
        if not records:
            print(f"{path} holds no snapshot records", file=sys.stderr)
            return 2
        all_records.extend(records)

    if args.merge:
        try:
            metrics = merge_metrics(
                record.get("metrics", {}) for record in all_records
            )
        except ValueError as error:
            print(f"cannot merge: {error}", file=sys.stderr)
            return 2
        record = {"merged_from": len(all_records), "metrics": metrics}
    else:
        try:
            record = all_records[args.line]
        except IndexError:
            print(
                f"--line {args.line} out of range "
                f"({len(all_records)} records)",
                file=sys.stderr,
            )
            return 2
        metrics = record.get("metrics", {})

    if args.format == "json":
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        sys.stdout.write(to_prometheus(metrics))
    for spec in args.quantile:
        name, __, quantile = spec.partition("=")
        try:
            value = histogram_quantile(metrics, name, float(quantile or "0.5"))
        except KeyError as error:
            print(str(error), file=sys.stderr)
            return 2
        print(f"quantile {name} q={float(quantile or '0.5'):g}: {value:.6g}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main
    raise SystemExit(main())
