"""Render committed telemetry snapshots: ``python -m repro.obs``.

Reads a JSONL snapshot file (the :class:`~repro.obs.export.
SnapshotWriter` / latency-bench artifact format) and renders one record
as Prometheus text exposition or pretty JSON::

    python -m repro.obs benchmarks/results/S7_latency_slo.jsonl
    python -m repro.obs snapshots.jsonl --line 0 --format json
    python -m repro.obs snapshots.jsonl --quantile streaming.update_visible_seconds=0.99
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.obs.export import histogram_quantile, read_jsonl, to_prometheus


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render a JSONL metrics snapshot.",
    )
    parser.add_argument("path", help="JSONL snapshot file")
    parser.add_argument(
        "--line", type=int, default=-1,
        help="record index to render (default: last line)",
    )
    parser.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus",
        help="output format (default: prometheus text exposition)",
    )
    parser.add_argument(
        "--quantile", action="append", default=[], metavar="HIST=Q",
        help="also print the Q-quantile of histogram HIST "
             "(repeatable, e.g. serving.request_seconds=0.99)",
    )
    args = parser.parse_args(argv)

    try:
        records = read_jsonl(args.path)
    except OSError as error:
        print(f"cannot read {args.path}: {error}", file=sys.stderr)
        return 2
    if not records:
        print(f"{args.path} holds no snapshot records", file=sys.stderr)
        return 2
    try:
        record = records[args.line]
    except IndexError:
        print(
            f"--line {args.line} out of range ({len(records)} records)",
            file=sys.stderr,
        )
        return 2
    metrics = record.get("metrics", {})

    if args.format == "json":
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        sys.stdout.write(to_prometheus(metrics))
    for spec in args.quantile:
        name, __, quantile = spec.partition("=")
        try:
            value = histogram_quantile(metrics, name, float(quantile or "0.5"))
        except KeyError as error:
            print(str(error), file=sys.stderr)
            return 2
        print(f"quantile {name} q={float(quantile or '0.5'):g}: {value:.6g}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main
    raise SystemExit(main())
