"""Snapshot exporters: JSONL for machines, Prometheus text for humans.

Two output formats over the same :class:`~repro.obs.metrics.
MetricsSnapshot`:

* **JSONL** — one self-describing JSON object per line
  (``{"ts": ..., "metrics": {name: {type, ...}}}``), appended by
  :func:`write_jsonl` or on a cadence by :class:`SnapshotWriter`.
  Histograms serialize their full bucket state, so any percentile is
  derivable offline (:func:`histogram_quantile`) — the latency bench
  commits these as its artifact and CI re-derives p99 from them.
* **Prometheus text exposition** — :func:`to_prometheus` renders
  counters, gauges and cumulative ``_bucket``/``_sum``/``_count``
  histogram series, unpacking the :func:`~repro.obs.metrics.labelled`
  name convention back into real labels.  ``python -m repro.obs`` (see
  :mod:`repro.obs.__main__`) renders a committed JSONL line this way.

:func:`merge_metrics` folds per-process snapshots (one per shard worker
of the multi-process plane) into a single fleet-wide dict of the same
shape, so both renderers work on merged telemetry unchanged.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    quantile_from_buckets,
    split_labels,
)

MetricsDict = Mapping[str, Mapping[str, Any]]


def snapshot_record(
    snapshot: MetricsSnapshot, **extra: object
) -> dict[str, Any]:
    """The JSONL payload for one snapshot (wall-clock stamped)."""
    record: dict[str, Any] = {"ts": time.time()}
    record.update(extra)
    record["metrics"] = snapshot.as_dict()
    return record


def write_jsonl(
    path: str | Path, snapshot: MetricsSnapshot, **extra: object
) -> dict[str, Any]:
    """Append one snapshot line to ``path``; returns the record."""
    record = snapshot_record(snapshot, **extra)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Every snapshot record of a JSONL file, in file order."""
    records: list[dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def merge_metrics(records: Iterable[MetricsDict]) -> dict[str, dict[str, Any]]:
    """Merge per-process snapshot dicts into one fleet-wide view.

    The multi-process shard plane exports one
    :meth:`~repro.obs.metrics.MetricsSnapshot.as_dict` per worker over
    its control channel; this folds them into a single dict of the same
    shape, so every renderer (:func:`to_prometheus`,
    :func:`histogram_quantile`) works on the merged result unchanged.

    * **counters** — values add.
    * **histograms** — bucket counts add element-wise, ``sum``/``count``
      add, ``min``/``max`` combine (empty histograms serialize
      ``min=max=0.0`` and are skipped so they merge as no-ops).  Bounds
      must match — workers share one instrument catalogue, so a
      mismatch means the snapshots are from different builds.
    * **gauges** — last snapshot wins; a gauge is a point-in-time level
      of one process (queue depth, heap rows) and summing levels from
      different instants would fabricate a reading nobody observed.
    """
    merged: dict[str, dict[str, Any]] = {}
    for record in records:
        for name, inst in record.items():
            kind = str(inst.get("type", "gauge"))
            seen = merged.get(name)
            if seen is None:
                merged[name] = {
                    key: list(val) if isinstance(val, list) else val
                    for key, val in inst.items()
                }
                continue
            if str(seen.get("type", "gauge")) != kind:
                raise ValueError(
                    f"instrument {name!r} changes type across snapshots "
                    f"({seen.get('type')!r} vs {kind!r})"
                )
            if kind == "counter":
                seen["value"] = float(seen["value"]) + float(inst["value"])
            elif kind == "gauge":
                seen["value"] = float(inst["value"])
            elif kind == "histogram":
                if list(seen["bounds"]) != list(inst["bounds"]):
                    raise ValueError(
                        f"histogram {name!r} has mismatched bucket bounds "
                        f"across snapshots"
                    )
                seen_count = int(seen["count"])
                inst_count = int(inst["count"])
                seen["counts"] = [
                    int(a) + int(b)
                    for a, b in zip(seen["counts"], inst["counts"])
                ]
                seen["sum"] = float(seen["sum"]) + float(inst["sum"])
                seen["count"] = seen_count + inst_count
                # empty histograms serialize min=max=0.0; folding those
                # zeros in would fabricate an observation
                if inst_count and not seen_count:
                    seen["min"] = float(inst["min"])
                    seen["max"] = float(inst["max"])
                elif inst_count:
                    seen["min"] = min(float(seen["min"]), float(inst["min"]))
                    seen["max"] = max(float(seen["max"]), float(inst["max"]))
            else:
                raise ValueError(
                    f"instrument {name!r} has unknown type {kind!r}"
                )
    return dict(sorted(merged.items()))


def histogram_quantile(metrics: MetricsDict, name: str, q: float) -> float:
    """The ``q``-quantile of a serialized histogram (JSONL ``metrics``).

    The offline twin of :meth:`~repro.obs.metrics.HistogramSnapshot.
    quantile` — CI's p99 regression gate reads committed JSONL through
    this, so the gate and the live bench derive identical numbers.
    """
    inst = metrics.get(name)
    if inst is None or inst.get("type") != "histogram":
        raise KeyError(f"no histogram named {name!r} in this record")
    return quantile_from_buckets(
        tuple(float(b) for b in inst["bounds"]),
        tuple(int(c) for c in inst["counts"]),
        q,
        float(inst["min"]),
        float(inst["max"]),
    )


class SnapshotWriter:
    """Periodic (or on-demand) JSONL snapshot dumps of one registry.

    ``write()`` appends one line synchronously; ``start()`` runs it on
    ``interval`` seconds from a daemon thread until ``stop()``.  The
    writer never touches instrument hot paths — it only calls
    ``registry.snapshot()``.
    """

    def __init__(
        self,
        registry: MetricsRegistry | NullRegistry,
        path: str | Path,
        interval: float | None = None,
        extra: Callable[[], Mapping[str, object]] | None = None,
    ) -> None:
        self.registry = registry
        self.path = Path(path)
        self.interval = interval
        self.extra = extra
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None

    def write(self) -> dict[str, Any]:
        """Append one snapshot line now."""
        extra = dict(self.extra()) if self.extra is not None else {}
        return write_jsonl(self.path, self.registry.snapshot(), **extra)

    def _run(self) -> None:  # pragma: no cover - timing loop
        assert self.interval is not None
        while not self._stop_event.wait(self.interval):
            try:
                self.write()
            except Exception:
                continue  # a full disk must not kill the cadence

    def start(self) -> "SnapshotWriter":
        if self.interval is None:
            raise ValueError("no interval configured; call write() instead")
        if self._thread is None or not self._thread.is_alive():
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._run, name="obs-snapshot-writer", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, final_write: bool = True) -> None:
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        if final_write:
            self.write()

    def __enter__(self) -> "SnapshotWriter":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _prom_name(base: str) -> str:
    """Instrument name → Prometheus metric name (dots become underscores)."""
    return "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in base
    )


def _series(base: str, labels: str, suffix: str = "", extra: str = "") -> str:
    """One sample's name+labels, merging instrument and extra labels."""
    body = ",".join(part for part in (labels, extra) if part)
    rendered = f"{{{body}}}" if body else ""
    return f"{_prom_name(base)}{suffix}{rendered}"


def to_prometheus(
    snapshot: MetricsSnapshot | MetricsDict,
) -> str:
    """Render a snapshot (live or JSONL-deserialized) as exposition text."""
    metrics: MetricsDict
    if isinstance(snapshot, MetricsSnapshot):
        metrics = snapshot.as_dict()
    else:
        metrics = snapshot
    lines: list[str] = []
    typed: set[str] = set()
    for name in sorted(metrics):
        inst = metrics[name]
        base, labels = split_labels(name)
        kind = str(inst.get("type", "gauge"))
        if base not in typed:
            lines.append(f"# TYPE {_prom_name(base)} {kind}")
            typed.add(base)
        if kind in ("counter", "gauge"):
            lines.append(f"{_series(base, labels)} {float(inst['value']):g}")
            continue
        bounds = [float(b) for b in inst["bounds"]]
        counts = [int(c) for c in inst["counts"]]
        cumulative = 0
        for bound, count in zip(bounds, counts):
            cumulative += count
            le = 'le="' + format(bound, "g") + '"'
            lines.append(f"{_series(base, labels, '_bucket', le)} {cumulative}")
        cumulative += counts[len(bounds)] if len(counts) > len(bounds) else 0
        inf = 'le="+Inf"'
        lines.append(f"{_series(base, labels, '_bucket', inf)} {cumulative}")
        lines.append(f"{_series(base, labels, '_sum')} {float(inst['sum']):g}")
        lines.append(f"{_series(base, labels, '_count')} {cumulative}")
    return "\n".join(lines) + ("\n" if lines else "")
