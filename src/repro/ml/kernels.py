"""Kernel functions for the dual SVM.

Each kernel maps two matrices ``(n, d)`` and ``(m, d)`` to an ``(n, m)``
Gram matrix.  They are exposed both as callables and through the
:func:`resolve` registry so models can be configured by name.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

KernelFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


class Kernel(Protocol):
    """Structural type for kernel callables."""

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray: ...


def linear_kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """K(x, z) = <x, z>."""
    return np.asarray(a, dtype=np.float64) @ np.asarray(b, dtype=np.float64).T


def rbf_kernel(gamma: float = 1.0) -> KernelFn:
    """Gaussian kernel K(x, z) = exp(-gamma * ||x - z||^2)."""
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")

    def _rbf(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        sq_a = np.sum(a * a, axis=1)[:, None]
        sq_b = np.sum(b * b, axis=1)[None, :]
        distances = np.maximum(sq_a + sq_b - 2.0 * (a @ b.T), 0.0)
        return np.exp(-gamma * distances)

    return _rbf


def polynomial_kernel(degree: int = 2, coef0: float = 1.0) -> KernelFn:
    """Polynomial kernel K(x, z) = (<x, z> + coef0)^degree."""
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")

    def _poly(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (linear_kernel(a, b) + coef0) ** degree

    return _poly


def resolve(name: str, **params: float) -> KernelFn:
    """Look up a kernel by name: ``linear``, ``rbf``, ``poly``."""
    if name == "linear":
        return linear_kernel
    if name == "rbf":
        return rbf_kernel(gamma=float(params.get("gamma", 1.0)))
    if name == "poly":
        return polynomial_kernel(
            degree=int(params.get("degree", 2)),
            coef0=float(params.get("coef0", 1.0)),
        )
    raise ValueError(f"unknown kernel {name!r}; have linear/rbf/poly")
