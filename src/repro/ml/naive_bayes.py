"""Naive Bayes baselines.

:class:`GaussianNB` for continuous feature blocks, :class:`BernoulliNB`
for 0/1 blocks (answered-question indicators, one-hot demographics).  Both
appear in the model ablation bench and as cheap cold-start scorers inside
the Smart Component.
"""

from __future__ import annotations

import numpy as np

from repro.ml.preprocessing import NotFittedError


class GaussianNB:
    """Per-class independent Gaussians with variance smoothing."""

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing
        self.classes_: np.ndarray | None = None
        self.theta_: np.ndarray | None = None
        self.var_: np.ndarray | None = None
        self.priors_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianNB":
        """Estimate per-class means, variances and priors."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if len(x) != len(y):
            raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
        self.classes_ = np.unique(y)
        means, variances, priors = [], [], []
        max_var = float(x.var(axis=0).max()) if x.size else 1.0
        epsilon = self.var_smoothing * max(max_var, 1e-12)
        for label in self.classes_:
            block = x[y == label]
            means.append(block.mean(axis=0))
            variances.append(block.var(axis=0) + epsilon)
            priors.append(len(block) / len(x))
        self.theta_ = np.asarray(means)
        self.var_ = np.asarray(variances)
        self.priors_ = np.asarray(priors)
        return self

    def _joint_log_likelihood(self, x: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise NotFittedError("GaussianNB before fit")
        x = np.asarray(x, dtype=np.float64)
        scores = []
        for k in range(len(self.classes_)):
            log_prior = np.log(self.priors_[k])
            log_norm = -0.5 * np.sum(np.log(2.0 * np.pi * self.var_[k]))
            mahala = -0.5 * np.sum((x - self.theta_[k]) ** 2 / self.var_[k], axis=1)
            scores.append(log_prior + log_norm + mahala)
        return np.asarray(scores).T

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class posterior probabilities, columns ordered by ``classes_``."""
        joint = self._joint_log_likelihood(x)
        joint -= joint.max(axis=1, keepdims=True)
        p = np.exp(joint)
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most probable class label."""
        joint = self._joint_log_likelihood(x)
        return self.classes_[np.argmax(joint, axis=1)]

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Binary convenience: log-odds of the greater class label."""
        if self.classes_ is None or len(self.classes_) != 2:
            raise ValueError("decision_function requires binary labels")
        joint = self._joint_log_likelihood(x)
        return joint[:, 1] - joint[:, 0]


class BernoulliNB:
    """Bernoulli NB with Laplace smoothing over binarized features."""

    def __init__(self, alpha: float = 1.0, binarize_at: float = 0.5) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha
        self.binarize_at = binarize_at
        self.classes_: np.ndarray | None = None
        self.feature_log_prob_: np.ndarray | None = None
        self.class_log_prior_: np.ndarray | None = None

    def _binarize(self, x: np.ndarray) -> np.ndarray:
        return (np.asarray(x, dtype=np.float64) > self.binarize_at).astype(np.float64)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "BernoulliNB":
        """Estimate smoothed per-class feature frequencies."""
        xb = self._binarize(x)
        y = np.asarray(y)
        if len(xb) != len(y):
            raise ValueError(f"length mismatch: {len(xb)} vs {len(y)}")
        self.classes_ = np.unique(y)
        log_probs, log_priors = [], []
        for label in self.classes_:
            block = xb[y == label]
            p = (block.sum(axis=0) + self.alpha) / (len(block) + 2.0 * self.alpha)
            log_probs.append(np.log(p))
            log_priors.append(np.log(len(block) / len(xb)))
        self.feature_log_prob_ = np.asarray(log_probs)
        self.class_log_prior_ = np.asarray(log_priors)
        return self

    def _joint_log_likelihood(self, x: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise NotFittedError("BernoulliNB before fit")
        xb = self._binarize(x)
        log_p = self.feature_log_prob_
        log_1mp = np.log1p(-np.exp(log_p))
        return (
            xb @ log_p.T + (1.0 - xb) @ log_1mp.T + self.class_log_prior_[None, :]
        )

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class posterior probabilities, columns ordered by ``classes_``."""
        joint = self._joint_log_likelihood(x)
        joint -= joint.max(axis=1, keepdims=True)
        p = np.exp(joint)
        return p / p.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most probable class label."""
        joint = self._joint_log_likelihood(x)
        return self.classes_[np.argmax(joint, axis=1)]

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Binary convenience: log-odds of the greater class label."""
        if self.classes_ is None or len(self.classes_) != 2:
            raise ValueError("decision_function requires binary labels")
        joint = self._joint_log_likelihood(x)
        return joint[:, 1] - joint[:, 0]
