"""Machine-learning substrate, implemented from scratch on numpy.

Section 5.2 of the paper: "To reduce the dimensionality of the matrix
generated we use Support Vector Machines ... SVMs are used to classify and
to predict users' behaviors ... Furthermore, SVMs have been used as a
learning component in ranking users to assess their propensity to accept a
recommended item."

This subpackage supplies everything that learning stack needs, with no
external ML dependency:

* :class:`~repro.ml.svm.LinearSVM` — primal hinge-loss SVM trained with the
  Pegasos stochastic sub-gradient method (scales to the full population).
* :class:`~repro.ml.svm.KernelSVM` — dual SVM trained with a simplified SMO
  (small/medium data, non-linear kernels).
* :class:`~repro.ml.calibration.PlattScaler` — margins → probabilities.
* :class:`~repro.ml.svd.TruncatedSVD` — the sparsity-reduction step.
* Baselines: logistic regression, naive Bayes, k-NN, plus an online SGD
  learner for the Smart Component's incremental mode.
* :mod:`repro.ml.metrics` — classification metrics and the gain/lift
  curves behind Fig. 6(a).
"""

from repro.ml.calibration import PlattScaler
from repro.ml.incremental import OnlineSGDClassifier
from repro.ml.knn import KNNClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import BernoulliNB, GaussianNB
from repro.ml.preprocessing import OneHotEncoder, StandardScaler, train_test_split
from repro.ml.svd import TruncatedSVD
from repro.ml.svm import KernelSVM, LinearSVM

__all__ = [
    "BernoulliNB",
    "GaussianNB",
    "KNNClassifier",
    "KernelSVM",
    "LinearSVM",
    "LogisticRegression",
    "OneHotEncoder",
    "OnlineSGDClassifier",
    "PlattScaler",
    "StandardScaler",
    "TruncatedSVD",
    "train_test_split",
]
