"""Platt scaling: SVM margins → calibrated probabilities.

The campaign *selection function* (Section 5.4) ranks users by "propensity
to accept a recommended item"; turning raw SVM margins into probabilities
makes those ranks comparable across campaigns and lets the reporting layer
speak in expected-impact terms.

Implements Platt (1999) with the Lin/Weng/Keerthi target smoothing and a
Newton optimization with backtracking.
"""

from __future__ import annotations

import numpy as np

from repro.ml.preprocessing import NotFittedError


class PlattScaler:
    """Fit ``p(y=1 | margin) = 1 / (1 + exp(a * margin + b))``."""

    def __init__(self, max_iter: int = 100, tol: float = 1e-10) -> None:
        self.max_iter = max_iter
        self.tol = tol
        self.a_: float | None = None
        self.b_: float | None = None

    def fit(self, margins: np.ndarray, y: np.ndarray) -> "PlattScaler":
        """Fit the sigmoid on held-out margins and binary labels."""
        margins = np.asarray(margins, dtype=np.float64).ravel()
        y = np.asarray(y).ravel()
        if len(margins) != len(y):
            raise ValueError(f"length mismatch: {len(margins)} vs {len(y)}")
        positive = np.asarray(y, dtype=np.float64) > 0

        n_pos = float(positive.sum())
        n_neg = float(len(y) - n_pos)
        if n_pos == 0 or n_neg == 0:
            raise ValueError("need both classes to calibrate")
        # Smoothed targets avoid log(0) and overfitting extreme margins.
        t_pos = (n_pos + 1.0) / (n_pos + 2.0)
        t_neg = 1.0 / (n_neg + 2.0)
        targets = np.where(positive, t_pos, t_neg)

        a, b = 0.0, float(np.log((n_neg + 1.0) / (n_pos + 1.0)))
        for _ in range(self.max_iter):
            z = a * margins + b
            p = _stable_sigmoid(z)  # P(y=1) = sigma(-z); helper negates

            gradient_common = p - targets
            grad_a = float(np.sum(gradient_common * margins))
            grad_b = float(np.sum(gradient_common))
            w = np.maximum(p * (1.0 - p), 1e-12)
            h_aa = float(np.sum(w * margins * margins)) + 1e-12
            h_ab = float(np.sum(w * margins))
            h_bb = float(np.sum(w)) + 1e-12
            det = h_aa * h_bb - h_ab * h_ab
            if abs(det) < 1e-18:
                break
            # grad_* above is the *negative* NLL gradient (p - t = -(t - p)),
            # so the Newton step -H⁻¹∇NLL becomes +H⁻¹(grad_a, grad_b).
            da = (h_bb * grad_a - h_ab * grad_b) / det
            db = (-h_ab * grad_a + h_aa * grad_b) / det
            step = 1.0
            nll_now = _nll(a, b, margins, targets)
            while step > 1e-10:
                if _nll(a + step * da, b + step * db, margins, targets) < nll_now:
                    break
                step /= 2.0
            a += step * da
            b += step * db
            if abs(step * da) < self.tol and abs(step * db) < self.tol:
                break
        self.a_ = float(a)
        self.b_ = float(b)
        return self

    def predict_proba(self, margins: np.ndarray) -> np.ndarray:
        """Calibrated P(y=1) for raw margins."""
        if self.a_ is None or self.b_ is None:
            raise NotFittedError("PlattScaler.predict_proba before fit")
        margins = np.asarray(margins, dtype=np.float64)
        return _stable_sigmoid(self.a_ * margins + self.b_)


def _stable_sigmoid(z: np.ndarray | float) -> np.ndarray:
    """1 / (1 + exp(z)) without overflow (note: argument is +z)."""
    z = np.atleast_1d(np.asarray(z, dtype=np.float64))
    out = np.empty_like(z)
    pos = z >= 0
    # z >= 0: exp(z) can overflow, so use exp(-z)/(1 + exp(-z)).
    exp_neg = np.exp(-z[pos])
    out[pos] = exp_neg / (1.0 + exp_neg)
    # z < 0: exp(z) < 1, the direct form is stable.
    out[~pos] = 1.0 / (1.0 + np.exp(z[~pos]))
    return out


def _nll(a: float, b: float, margins: np.ndarray, targets: np.ndarray) -> float:
    z = a * margins + b
    # NLL of targets under p = sigmoid(-z), written stably via logaddexp.
    return float(np.sum(targets * np.logaddexp(0.0, z) +
                        (1.0 - targets) * np.logaddexp(0.0, -z)))
