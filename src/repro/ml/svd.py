"""Truncated SVD for the sparsity problem.

Section 5.2: users skip most Gradual EIT questions, so the user × question
answer matrix is extremely sparse; the paper reduces its dimensionality
before feeding the SVM.  :class:`TruncatedSVD` provides that reduction for
both dense arrays and ``scipy.sparse`` matrices.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg

from repro.ml.preprocessing import NotFittedError


class TruncatedSVD:
    """Rank-``k`` factorization ``X ≈ U S Vt`` used as a linear projector.

    ``transform`` maps rows of X to the k-dimensional latent space (``U S``
    for the training matrix, ``X Vt.T`` for new rows).
    """

    def __init__(self, rank: int) -> None:
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self.components_: np.ndarray | None = None  # (rank, n_features) = Vt
        self.singular_values_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, x: np.ndarray | sp.spmatrix) -> "TruncatedSVD":
        """Compute the top-``rank`` singular triplets of ``x``."""
        if sp.issparse(x):
            n_rows, n_cols = x.shape
            k = min(self.rank, min(n_rows, n_cols) - 1)
            if k < 1:
                raise ValueError(
                    f"matrix {x.shape} too small for sparse rank-{self.rank} SVD"
                )
            u, s, vt = scipy.sparse.linalg.svds(
                x.astype(np.float64), k=k, random_state=0
            )
            order = np.argsort(s)[::-1]
            s, vt = s[order], vt[order]
            total = float(x.multiply(x).sum())
        else:
            dense = np.asarray(x, dtype=np.float64)
            if dense.ndim != 2:
                raise ValueError(f"expected 2-D matrix, got shape {dense.shape}")
            __, s, vt = np.linalg.svd(dense, full_matrices=False)
            k = min(self.rank, len(s))
            s, vt = s[:k], vt[:k]
            total = float(np.sum(dense * dense))
        self.components_ = vt
        self.singular_values_ = s
        self.explained_variance_ratio_ = (
            (s * s) / total if total > 0 else np.zeros_like(s)
        )
        return self

    @property
    def effective_rank_(self) -> int:
        """Rank actually computed (may be < requested for small matrices)."""
        if self.singular_values_ is None:
            raise NotFittedError("TruncatedSVD.effective_rank_ before fit")
        return int(len(self.singular_values_))

    def transform(self, x: np.ndarray | sp.spmatrix) -> np.ndarray:
        """Project rows of ``x`` into the latent space."""
        if self.components_ is None:
            raise NotFittedError("TruncatedSVD.transform before fit")
        if sp.issparse(x):
            return np.asarray(x @ self.components_.T)
        return np.asarray(x, dtype=np.float64) @ self.components_.T

    def fit_transform(self, x: np.ndarray | sp.spmatrix) -> np.ndarray:
        """Fit then project the same matrix."""
        return self.fit(x).transform(x)

    def inverse_transform(self, z: np.ndarray) -> np.ndarray:
        """Map latent rows back to feature space (rank-k reconstruction)."""
        if self.components_ is None:
            raise NotFittedError("TruncatedSVD.inverse_transform before fit")
        return np.asarray(z, dtype=np.float64) @ self.components_

    def reconstruction_error(self, x: np.ndarray | sp.spmatrix) -> float:
        """Relative Frobenius error of the rank-k reconstruction of ``x``."""
        dense = x.toarray() if sp.issparse(x) else np.asarray(x, dtype=np.float64)
        approx = self.inverse_transform(self.transform(dense))
        denom = np.linalg.norm(dense)
        if denom == 0:
            return 0.0
        return float(np.linalg.norm(dense - approx) / denom)
