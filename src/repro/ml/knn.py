"""k-nearest-neighbour classifier baseline.

Brute-force Euclidean or cosine neighbours with optional distance
weighting.  Appears in the model ablation; also mirrors the memory-based
flavour of classical collaborative filtering for comparison purposes.
"""

from __future__ import annotations

import numpy as np

from repro.ml.preprocessing import NotFittedError


class KNNClassifier:
    """Majority-vote (optionally distance-weighted) k-NN."""

    def __init__(self, k: int = 5, metric: str = "euclidean", weighted: bool = False):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if metric not in ("euclidean", "cosine"):
            raise ValueError(f"unknown metric {metric!r} (euclidean/cosine)")
        self.k = k
        self.metric = metric
        self.weighted = weighted
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self.classes_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        """Memorize the training set."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if len(x) != len(y):
            raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
        if len(x) == 0:
            raise ValueError("empty training set")
        self._x = x
        self._y = y
        self.classes_ = np.unique(y)
        return self

    def _distances(self, x: np.ndarray) -> np.ndarray:
        if self.metric == "euclidean":
            sq_train = np.sum(self._x * self._x, axis=1)[None, :]
            sq_query = np.sum(x * x, axis=1)[:, None]
            return np.sqrt(np.maximum(sq_query + sq_train - 2.0 * x @ self._x.T, 0.0))
        norm_train = np.linalg.norm(self._x, axis=1)
        norm_query = np.linalg.norm(x, axis=1)
        denom = np.outer(norm_query, norm_train)
        denom[denom == 0.0] = 1.0
        similarity = (x @ self._x.T) / denom
        return 1.0 - similarity

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Neighbour-vote shares per class, columns ordered by ``classes_``."""
        if self._x is None or self._y is None or self.classes_ is None:
            raise NotFittedError("KNNClassifier.predict_proba before fit")
        x = np.asarray(x, dtype=np.float64)
        distances = self._distances(x)
        k = min(self.k, len(self._x))
        neighbour_ids = np.argpartition(distances, k - 1, axis=1)[:, :k]
        votes = np.zeros((len(x), len(self.classes_)), dtype=np.float64)
        class_pos = {label: i for i, label in enumerate(self.classes_.tolist())}
        for row in range(len(x)):
            ids = neighbour_ids[row]
            if self.weighted:
                weights = 1.0 / (distances[row, ids] + 1e-9)
            else:
                weights = np.ones(len(ids))
            for neighbour, weight in zip(ids, weights):
                votes[row, class_pos[self._y[neighbour]]] += weight
        totals = votes.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return votes / totals

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Majority-vote class labels."""
        probabilities = self.predict_proba(x)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Binary convenience: vote share of the greater class label."""
        if self.classes_ is None or len(self.classes_) != 2:
            raise ValueError("decision_function requires binary labels")
        return self.predict_proba(x)[:, 1]
