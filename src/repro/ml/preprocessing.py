"""Feature preprocessing: scaling, encoding, splitting.

All estimators follow a minimal fit/transform protocol and keep their state
in plain attributes, so the Smart Component can snapshot and restore them.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when transform/predict is called before fit."""


class StandardScaler:
    """Zero-mean, unit-variance feature scaling.

    Constant columns (zero variance) are left centered but un-scaled, which
    matters for one-hot blocks where a category may be absent in a fold.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        """Learn per-column mean and standard deviation."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected 2-D matrix, got shape {x.shape}")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the learned standardization."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.transform before fit")
        x = np.asarray(x, dtype=np.float64)
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Undo the standardization."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.inverse_transform before fit")
        return np.asarray(x, dtype=np.float64) * self.scale_ + self.mean_


class OneHotEncoder:
    """One-hot encoding for a single categorical column.

    Unknown categories at transform time map to the all-zeros row (an
    explicit design choice: new demographic categories appear continuously
    in a live LifeLog stream and must not crash scoring).
    """

    def __init__(self) -> None:
        self.categories_: list | None = None
        self._positions: dict | None = None

    def fit(self, values: Sequence) -> "OneHotEncoder":
        """Learn the category vocabulary (sorted for determinism)."""
        self.categories_ = sorted(set(values))
        self._positions = {c: i for i, c in enumerate(self.categories_)}
        return self

    def transform(self, values: Sequence) -> np.ndarray:
        """Encode values to an (n, n_categories) 0/1 matrix."""
        if self.categories_ is None or self._positions is None:
            raise NotFittedError("OneHotEncoder.transform before fit")
        out = np.zeros((len(values), len(self.categories_)), dtype=np.float64)
        for row, value in enumerate(values):
            position = self._positions.get(value)
            if position is not None:
                out[row, position] = 1.0
        return out

    def fit_transform(self, values: Sequence) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(values).transform(values)

    def feature_names(self, prefix: str) -> list[str]:
        """Names of the encoded columns, ``prefix=value`` style."""
        if self.categories_ is None:
            raise NotFittedError("OneHotEncoder.feature_names before fit")
        return [f"{prefix}={category}" for category in self.categories_]


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.25,
    rng: np.random.Generator | None = None,
    stratify: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random train/test split; optionally stratified on binary ``y``.

    Returns ``(x_train, x_test, y_train, y_test)``.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    x = np.asarray(x)
    y = np.asarray(y)
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
    rng = rng or np.random.default_rng(0)

    n = len(x)
    if stratify:
        test_ids: list[int] = []
        for label in np.unique(y):
            ids = np.nonzero(y == label)[0]
            ids = rng.permutation(ids)
            k = max(1, int(round(len(ids) * test_fraction)))
            test_ids.extend(ids[:k].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[np.asarray(test_ids, dtype=np.int64)] = True
    else:
        order = rng.permutation(n)
        k = max(1, int(round(n * test_fraction)))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:k]] = True

    return x[~test_mask], x[test_mask], y[~test_mask], y[test_mask]
