"""Logistic regression baseline (batch gradient descent with L2).

Used in the model ablation (bench A2) as the classical alternative to the
paper's SVM choice, and internally wherever a probabilistic linear model is
convenient.
"""

from __future__ import annotations

import numpy as np

from repro.ml.preprocessing import NotFittedError


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    expz = np.exp(z[~pos])
    out[~pos] = expz / (1.0 + expz)
    return out


class LogisticRegression:
    """L2-regularized logistic regression.

    Full-batch gradient descent with an adaptive step (halving on
    non-improvement), which is robust without tuning for the feature scales
    produced by :class:`~repro.ml.preprocessing.StandardScaler`.
    """

    def __init__(
        self,
        l2: float = 1e-3,
        lr: float = 0.5,
        max_iter: int = 500,
        tol: float = 1e-7,
    ) -> None:
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.l2 = l2
        self.lr = lr
        self.max_iter = max_iter
        self.tol = tol
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0
        self.n_iter_: int = 0

    def _loss(self, x: np.ndarray, y: np.ndarray, w: np.ndarray, b: float) -> float:
        z = x @ w + b
        nll = np.sum(np.logaddexp(0.0, z) - y * z)
        return float(nll / len(x) + 0.5 * self.l2 * np.dot(w, w))

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Train on features ``x`` and binary 0/1 labels ``y``."""
        x = np.asarray(x, dtype=np.float64)
        y01 = (np.asarray(y, dtype=np.float64) > 0).astype(np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected 2-D matrix, got shape {x.shape}")
        if len(x) != len(y01):
            raise ValueError(f"length mismatch: {len(x)} vs {len(y01)}")
        n, d = x.shape
        w = np.zeros(d)
        b = 0.0
        lr = self.lr
        best = self._loss(x, y01, w, b)
        for iteration in range(self.max_iter):
            p = _sigmoid(x @ w + b)
            grad_w = x.T @ (p - y01) / n + self.l2 * w
            grad_b = float(np.mean(p - y01))
            w_new = w - lr * grad_w
            b_new = b - lr * grad_b
            loss = self._loss(x, y01, w_new, b_new)
            if loss > best:
                lr *= 0.5
                if lr < 1e-10:
                    break
                continue
            improvement = best - loss
            w, b, best = w_new, b_new, loss
            self.n_iter_ = iteration + 1
            if improvement < self.tol:
                break
        self.weights_ = w
        self.bias_ = float(b)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Log-odds of class 1."""
        if self.weights_ is None:
            raise NotFittedError("LogisticRegression.decision_function before fit")
        return np.asarray(x, dtype=np.float64) @ self.weights_ + self.bias_

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """P(y=1)."""
        return _sigmoid(self.decision_function(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions."""
        return (self.predict_proba(x) >= 0.5).astype(np.int64)
