"""Model selection: k-fold cross-validation and grid search.

Used by the ablation benches to give every baseline a fair shot, and by
the Smart Component to pick the SVM regularization per campaign domain.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

import numpy as np

Estimator = Any  # fit/predict duck type
ScoreFn = Callable[[np.ndarray, np.ndarray], float]


def kfold_indices(
    n: int, k: int = 5, rng: np.random.Generator | None = None
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (train_ids, test_ids) for k shuffled folds covering [0, n)."""
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if n < k:
        raise ValueError(f"cannot split {n} samples into {k} folds")
    rng = rng or np.random.default_rng(0)
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    for i in range(k):
        test_ids = folds[i]
        train_ids = np.concatenate([folds[j] for j in range(k) if j != i])
        yield train_ids, test_ids


def cross_val_score(
    make_estimator: Callable[[], Estimator],
    x: np.ndarray,
    y: np.ndarray,
    score_fn: ScoreFn,
    k: int = 5,
    use_decision_function: bool = False,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Per-fold scores for a freshly constructed estimator on each fold.

    ``score_fn(y_true, y_hat)`` receives hard predictions by default, or
    ``decision_function`` scores when ``use_decision_function`` is set
    (e.g. for AUC).
    """
    x = np.asarray(x)
    y = np.asarray(y)
    scores = []
    for train_ids, test_ids in kfold_indices(len(x), k=k, rng=rng):
        model = make_estimator()
        model.fit(x[train_ids], y[train_ids])
        if use_decision_function:
            y_hat = model.decision_function(x[test_ids])
        else:
            y_hat = model.predict(x[test_ids])
        scores.append(score_fn(y[test_ids], y_hat))
    return np.asarray(scores, dtype=np.float64)


def grid_search(
    make_estimator: Callable[..., Estimator],
    grid: dict[str, Sequence[Any]],
    x: np.ndarray,
    y: np.ndarray,
    score_fn: ScoreFn,
    k: int = 3,
    use_decision_function: bool = False,
    rng: np.random.Generator | None = None,
) -> tuple[dict[str, Any], float, list[tuple[dict[str, Any], float]]]:
    """Exhaustive grid search by mean CV score (higher is better).

    Returns ``(best_params, best_score, all_results)``.
    """
    if not grid:
        raise ValueError("empty parameter grid")
    names = sorted(grid)
    results: list[tuple[dict[str, Any], float]] = []

    def _combos(position: int, current: dict[str, Any]) -> Iterator[dict[str, Any]]:
        if position == len(names):
            yield dict(current)
            return
        name = names[position]
        for value in grid[name]:
            current[name] = value
            yield from _combos(position + 1, current)
        del current[name]

    for params in _combos(0, {}):
        fold_scores = cross_val_score(
            lambda params=params: make_estimator(**params),
            x,
            y,
            score_fn,
            k=k,
            use_decision_function=use_decision_function,
            rng=rng,
        )
        results.append((params, float(fold_scores.mean())))
    best_params, best_score = max(results, key=lambda item: item[1])
    return best_params, best_score, results
