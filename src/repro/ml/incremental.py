"""Online learning for the Smart Component's incremental mode.

Section 4: "SPA improves the existing platform, embedding powerful
incremental learning mechanisms".  :class:`OnlineSGDClassifier` is a
logistic model trained one mini-batch at a time via ``partial_fit``, so the
Smart Component can fold in each day's LifeLog without retraining from
scratch.
"""

from __future__ import annotations

import numpy as np

from repro.ml.preprocessing import NotFittedError


class OnlineSGDClassifier:
    """Logistic loss + L2, optimized with constant-decay SGD.

    ``partial_fit`` may be called any number of times with new batches; the
    learning rate follows an inverse-scaling schedule on the global step
    count, so late batches refine rather than overwrite.
    """

    def __init__(
        self,
        n_features: int,
        l2: float = 1e-4,
        lr0: float = 0.5,
        power_t: float = 0.35,
    ) -> None:
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        self.n_features = n_features
        self.l2 = l2
        self.lr0 = lr0
        self.power_t = power_t
        self.weights_ = np.zeros(n_features, dtype=np.float64)
        self.bias_ = 0.0
        self.t_ = 0  # number of partial_fit batches seen

    def partial_fit(self, x: np.ndarray, y: np.ndarray) -> "OnlineSGDClassifier":
        """One SGD step on a batch of (features, 0/1 labels)."""
        x = np.asarray(x, dtype=np.float64)
        y01 = (np.asarray(y, dtype=np.float64) > 0).astype(np.float64)
        if x.ndim != 2 or x.shape[1] != self.n_features:
            raise ValueError(
                f"expected (*, {self.n_features}) features, got {x.shape}"
            )
        if len(x) != len(y01):
            raise ValueError(f"length mismatch: {len(x)} vs {len(y01)}")
        if len(x) == 0:
            return self
        self.t_ += 1
        lr = self.lr0 / (self.t_ ** self.power_t)
        z = x @ self.weights_ + self.bias_
        p = _sigmoid(z)
        grad_w = x.T @ (p - y01) / len(x) + self.l2 * self.weights_
        grad_b = float(np.mean(p - y01))
        self.weights_ -= lr * grad_w
        self.bias_ -= lr * grad_b
        return self

    def fit(self, x: np.ndarray, y: np.ndarray, epochs: int = 5,
            batch_size: int = 128, seed: int = 0) -> "OnlineSGDClassifier":
        """Convenience batch training built on ``partial_fit``."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        rng = np.random.default_rng(seed)
        for _ in range(epochs):
            order = rng.permutation(len(x))
            for start in range(0, len(x), batch_size):
                batch = order[start : start + batch_size]
                self.partial_fit(x[batch], y[batch])
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Log-odds of class 1."""
        if self.t_ == 0:
            raise NotFittedError("OnlineSGDClassifier before any partial_fit")
        return np.asarray(x, dtype=np.float64) @ self.weights_ + self.bias_

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """P(y=1)."""
        return _sigmoid(self.decision_function(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions."""
        return (self.predict_proba(x) >= 0.5).astype(np.int64)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    expz = np.exp(z[~pos])
    out[~pos] = expz / (1.0 + expz)
    return out
