"""Classification metrics and the campaign curves of Fig. 6.

Besides the standard menu (accuracy, precision/recall/F1, ROC AUC,
confusion matrix, Brier, log-loss), this module implements the two
marketing-analytics curves the paper reports:

* :func:`cumulative_gain_curve` — the *cumulative redemption curve* of
  Fig. 6(a): after contacting the top ``f`` fraction of the ranked
  population, what fraction of all eventual responders was captured?
* :func:`lift_curve` — the pointwise ratio of that capture rate to the
  random-targeting diagonal.
"""

from __future__ import annotations

import numpy as np


def _binary(y: np.ndarray) -> np.ndarray:
    return (np.asarray(y, dtype=np.float64) > 0).astype(np.int64)


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _binary(y_true), _binary(y_pred)
    _check_lengths(y_true, y_pred)
    if len(y_true) == 0:
        raise ValueError("empty input")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """2×2 matrix ``[[tn, fp], [fn, tp]]``."""
    y_true, y_pred = _binary(y_true), _binary(y_pred)
    _check_lengths(y_true, y_pred)
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    return np.asarray([[tn, fp], [fn, tp]], dtype=np.int64)


def precision(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """TP / (TP + FP); 0.0 when nothing was predicted positive."""
    matrix = confusion_matrix(y_true, y_pred)
    tp, fp = matrix[1, 1], matrix[0, 1]
    return float(tp / (tp + fp)) if (tp + fp) else 0.0


def recall(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """TP / (TP + FN); 0.0 when there are no positives."""
    matrix = confusion_matrix(y_true, y_pred)
    tp, fn = matrix[1, 1], matrix[1, 0]
    return float(tp / (tp + fn)) if (tp + fn) else 0.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(y_true, y_pred)
    r = recall(y_true, y_pred)
    return 2.0 * p * r / (p + r) if (p + r) else 0.0


def roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Rank-based AUC (= P(score⁺ > score⁻), ties count half)."""
    y_true = _binary(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    _check_lengths(y_true, scores)
    n_pos = int(y_true.sum())
    n_neg = int(len(y_true) - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC undefined with a single class")
    # Midrank handling of ties via double argsort on a stable key.
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(len(scores), dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    position = 1.0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        midrank = (position + position + (j - i)) / 2.0
        ranks[order[i : j + 1]] = midrank
        position += j - i + 1
        i = j + 1
    rank_sum_pos = float(ranks[y_true == 1].sum())
    u_statistic = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u_statistic / (n_pos * n_neg))


def log_loss(y_true: np.ndarray, proba: np.ndarray, eps: float = 1e-12) -> float:
    """Mean negative log-likelihood of binary labels under ``proba``."""
    y_true = _binary(y_true)
    proba = np.clip(np.asarray(proba, dtype=np.float64), eps, 1.0 - eps)
    _check_lengths(y_true, proba)
    return float(-np.mean(y_true * np.log(proba) + (1 - y_true) * np.log(1 - proba)))


def brier_score(y_true: np.ndarray, proba: np.ndarray) -> float:
    """Mean squared error of probabilities against binary outcomes."""
    y_true = _binary(y_true)
    proba = np.asarray(proba, dtype=np.float64)
    _check_lengths(y_true, proba)
    return float(np.mean((proba - y_true) ** 2))


# -- campaign curves (Fig. 6a) -------------------------------------------------


def cumulative_gain_curve(
    y_true: np.ndarray, scores: np.ndarray, n_points: int = 101
) -> tuple[np.ndarray, np.ndarray]:
    """The cumulative redemption curve.

    Rank the population by descending score; for each contacted fraction
    ``f`` (the paper's "% of commercial action"), compute the fraction of
    all responders captured (the paper's "% of useful impacts").

    Returns ``(fractions, captured)`` — both in [0, 1], starting at (0, 0)
    and ending at (1, 1); ``captured`` is non-decreasing.
    """
    y_true = _binary(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    _check_lengths(y_true, scores)
    total_pos = int(y_true.sum())
    if total_pos == 0:
        raise ValueError("gain curve undefined with zero positives")
    order = np.argsort(-scores, kind="stable")
    hits = np.cumsum(y_true[order])
    n = len(y_true)
    fractions = np.linspace(0.0, 1.0, n_points)
    captured = np.empty(n_points, dtype=np.float64)
    for i, fraction in enumerate(fractions):
        k = int(round(fraction * n))
        captured[i] = hits[k - 1] / total_pos if k > 0 else 0.0
    return fractions, captured


def gain_at(y_true: np.ndarray, scores: np.ndarray, fraction: float) -> float:
    """Captured-responder share after contacting the top ``fraction``."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    fractions, captured = cumulative_gain_curve(y_true, scores, n_points=1001)
    return float(np.interp(fraction, fractions, captured))


def lift_curve(
    y_true: np.ndarray, scores: np.ndarray, n_points: int = 101
) -> tuple[np.ndarray, np.ndarray]:
    """Pointwise lift over random targeting: gain(f) / f (f > 0)."""
    fractions, captured = cumulative_gain_curve(y_true, scores, n_points)
    lifts = np.ones_like(captured)
    nonzero = fractions > 0
    lifts[nonzero] = captured[nonzero] / fractions[nonzero]
    return fractions, lifts


def response_rate_at(
    y_true: np.ndarray, scores: np.ndarray, fraction: float
) -> float:
    """Responder rate *within* the top ``fraction`` of the ranking.

    This is the "predictive score" of Fig. 6(b): useful impacts divided by
    contacted users.
    """
    y_true = _binary(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    _check_lengths(y_true, scores)
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    k = max(1, int(round(fraction * len(y_true))))
    order = np.argsort(-scores, kind="stable")
    return float(y_true[order[:k]].mean())


def _check_lengths(a: np.ndarray, b: np.ndarray) -> None:
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
