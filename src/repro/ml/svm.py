"""Support vector machines, the paper's workhorse learner (Section 5.2).

Two trainers:

* :class:`LinearSVM` — primal L2-regularized hinge loss minimized with the
  Pegasos stochastic sub-gradient method (Shalev-Shwartz et al., 2007 — a
  contemporary of the paper).  Mini-batched, deterministic under a seed,
  and linear in the number of samples, so it scales to full-population
  propensity scoring.
* :class:`KernelSVM` — the dual problem solved with a simplified SMO
  (Platt, 1998), for non-linear decision boundaries on small/medium data.

Both expose ``decision_function`` margins so :class:`~repro.ml.calibration.
PlattScaler` can turn them into the probabilities the campaign selection
function ranks by.
"""

from __future__ import annotations

import numpy as np

from repro.ml.kernels import KernelFn, linear_kernel
from repro.ml.preprocessing import NotFittedError


def _validate_xy(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y)
    if x.ndim != 2:
        raise ValueError(f"expected 2-D feature matrix, got shape {x.shape}")
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} samples vs {len(y)} labels")
    labels = set(np.unique(y).tolist())
    if not labels <= {0, 1, -1}:
        raise ValueError(f"labels must be binary (0/1 or ±1), got {sorted(labels)}")
    signed = np.where(np.asarray(y, dtype=np.float64) > 0, 1.0, -1.0)
    if len(set(signed.tolist())) < 2:
        raise ValueError("need both classes present to fit an SVM")
    return x, signed


class LinearSVM:
    """Primal linear SVM via Pegasos.

    Parameters
    ----------
    c:
        Inverse regularization strength; ``lambda = 1 / (c * n)``.
    epochs:
        Passes over the data.
    batch_size:
        Mini-batch size for each sub-gradient step.
    seed:
        RNG seed for the sampling order (fit is deterministic given a seed).
    """

    def __init__(
        self,
        c: float = 1.0,
        epochs: int = 20,
        batch_size: int = 64,
        eta_max: float = 1.0,
        seed: int = 0,
    ) -> None:
        if c <= 0:
            raise ValueError(f"c must be positive, got {c}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if eta_max <= 0:
            raise ValueError(f"eta_max must be positive, got {eta_max}")
        self.c = c
        self.epochs = epochs
        self.batch_size = batch_size
        self.eta_max = eta_max
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearSVM":
        """Train on features ``x`` and binary labels ``y`` (0/1 or ±1)."""
        x, signed = _validate_xy(x, y)
        n, d = x.shape
        lam = 1.0 / (self.c * n)
        rng = np.random.default_rng(self.seed)

        w = np.zeros(d, dtype=np.float64)
        b = 0.0
        # Textbook Pegasos uses eta = 1/(lam*t), which is enormous in the
        # early steps when lam is small (large n, weak regularization) and
        # makes mini-batch training bounce without converging.  We clip the
        # step at eta_max (features are expected standardized, so O(1)
        # steps are safe) and Polyak-average the second half of the
        # trajectory, which restores the convergence the 1/(lam t)
        # schedule promises.
        batches_per_epoch = (n + self.batch_size - 1) // self.batch_size
        total_steps = self.epochs * batches_per_epoch
        averaging_from = total_steps // 2
        w_sum = np.zeros(d, dtype=np.float64)
        b_sum = 0.0
        averaged_steps = 0
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                step += 1
                batch = order[start : start + self.batch_size]
                eta = min(self.eta_max, 1.0 / (lam * step))
                margins = signed[batch] * (x[batch] @ w + b)
                violators = margins < 1.0
                # Sub-gradient of the regularized hinge objective.
                grad_w = lam * w
                grad_b = 0.0
                if violators.any():
                    xv = x[batch][violators]
                    yv = signed[batch][violators]
                    grad_w = grad_w - (yv[:, None] * xv).mean(axis=0)
                    grad_b = -float(yv.mean())
                w = w - eta * grad_w
                b = b - eta * grad_b
                # Pegasos projection step keeps ||w|| <= 1/sqrt(lam).
                norm = np.linalg.norm(w)
                radius = 1.0 / np.sqrt(lam)
                if norm > radius:
                    w = w * (radius / norm)
                if step > averaging_from:
                    w_sum += w
                    b_sum += b
                    averaged_steps += 1
        if averaged_steps:
            self.weights_ = w_sum / averaged_steps
            self.bias_ = float(b_sum / averaged_steps)
        else:
            self.weights_ = w
            self.bias_ = float(b)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed margins; positive ⇒ class 1."""
        if self.weights_ is None:
            raise NotFittedError("LinearSVM.decision_function before fit")
        x = np.asarray(x, dtype=np.float64)
        return x @ self.weights_ + self.bias_

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions."""
        return (self.decision_function(x) >= 0.0).astype(np.int64)


class KernelSVM:
    """Dual kernel SVM trained with simplified SMO.

    Suitable for datasets up to a few thousand rows (the Gram matrix is
    materialized).  For the full-population propensity task use
    :class:`LinearSVM`.

    Parameters
    ----------
    c:
        Box constraint on the dual variables.
    kernel:
        A :mod:`repro.ml.kernels` callable (default linear).
    tol:
        KKT violation tolerance.
    max_passes:
        Number of consecutive no-change sweeps before stopping.
    seed:
        RNG seed for partner selection.
    """

    def __init__(
        self,
        c: float = 1.0,
        kernel: KernelFn = linear_kernel,
        tol: float = 1e-3,
        max_passes: int = 5,
        max_iter: int = 200,
        seed: int = 0,
    ) -> None:
        if c <= 0:
            raise ValueError(f"c must be positive, got {c}")
        self.c = c
        self.kernel = kernel
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self.seed = seed
        self.alphas_: np.ndarray | None = None
        self.bias_: float = 0.0
        self._support_x: np.ndarray | None = None
        self._support_y: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KernelSVM":
        """Train on features ``x`` and binary labels ``y`` (0/1 or ±1)."""
        x, signed = _validate_xy(x, y)
        n = len(x)
        rng = np.random.default_rng(self.seed)
        gram = self.kernel(x, x)

        alphas = np.zeros(n, dtype=np.float64)
        b = 0.0
        passes = 0
        iters = 0
        while passes < self.max_passes and iters < self.max_iter:
            iters += 1
            changed = 0
            errors = (alphas * signed) @ gram + b - signed
            for i in range(n):
                e_i = float(errors[i])
                kkt_violated = (
                    (signed[i] * e_i < -self.tol and alphas[i] < self.c)
                    or (signed[i] * e_i > self.tol and alphas[i] > 0)
                )
                if not kkt_violated:
                    continue
                j = int(rng.integers(0, n - 1))
                if j >= i:
                    j += 1
                e_j = float((alphas * signed) @ gram[:, j] + b - signed[j])

                alpha_i_old, alpha_j_old = alphas[i], alphas[j]
                if signed[i] != signed[j]:
                    low = max(0.0, alphas[j] - alphas[i])
                    high = min(self.c, self.c + alphas[j] - alphas[i])
                else:
                    low = max(0.0, alphas[i] + alphas[j] - self.c)
                    high = min(self.c, alphas[i] + alphas[j])
                if low >= high:
                    continue
                eta = 2.0 * gram[i, j] - gram[i, i] - gram[j, j]
                if eta >= 0:
                    continue
                alphas[j] -= signed[j] * (e_i - e_j) / eta
                alphas[j] = float(np.clip(alphas[j], low, high))
                if abs(alphas[j] - alpha_j_old) < 1e-7:
                    continue
                alphas[i] += signed[i] * signed[j] * (alpha_j_old - alphas[j])

                b1 = (
                    b
                    - e_i
                    - signed[i] * (alphas[i] - alpha_i_old) * gram[i, i]
                    - signed[j] * (alphas[j] - alpha_j_old) * gram[i, j]
                )
                b2 = (
                    b
                    - e_j
                    - signed[i] * (alphas[i] - alpha_i_old) * gram[i, j]
                    - signed[j] * (alphas[j] - alpha_j_old) * gram[j, j]
                )
                if 0 < alphas[i] < self.c:
                    b = b1
                elif 0 < alphas[j] < self.c:
                    b = b2
                else:
                    b = (b1 + b2) / 2.0
                errors = (alphas * signed) @ gram + b - signed
                changed += 1
            passes = passes + 1 if changed == 0 else 0

        support = alphas > 1e-8
        self.alphas_ = alphas[support]
        self._support_x = x[support]
        self._support_y = signed[support]
        self.bias_ = float(b)
        return self

    @property
    def n_support_(self) -> int:
        """Number of support vectors found during fit."""
        if self.alphas_ is None:
            raise NotFittedError("KernelSVM.n_support_ before fit")
        return int(len(self.alphas_))

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed margins; positive ⇒ class 1."""
        if self.alphas_ is None or self._support_x is None:
            raise NotFittedError("KernelSVM.decision_function before fit")
        x = np.asarray(x, dtype=np.float64)
        if len(self.alphas_) == 0:
            return np.full(len(x), self.bias_)
        gram = self.kernel(x, self._support_x)
        return gram @ (self.alphas_ * self._support_y) + self.bias_

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions."""
        return (self.decision_function(x) >= 0.0).astype(np.int64)
