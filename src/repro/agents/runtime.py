"""The deterministic in-process agent runtime.

A tiny actor system: agents register under unique names, messages queue on
a global FIFO bus, and :meth:`AgentRuntime.run_until_idle` drains the bus
one message at a time.  Handling a message may emit new messages; a
``max_steps`` guard catches accidental message loops.

Agents may also *spawn* new agents while handling a message — this is how
the LifeLogs Pre-processor Agent "replicates itself in pro-active way
depending of user's interaction" (Section 4).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.agents.messages import Message


class AgentError(RuntimeError):
    """Raised for unknown recipients or runaway message loops."""


class Agent:
    """Base class: override :meth:`handle`."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("agent needs a name")
        self.name = name
        self.handled_count = 0

    def handle(self, message: Message, runtime: "AgentRuntime") -> Iterable[Message]:
        """Process one message; return (or yield) follow-up messages."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, handled={self.handled_count})"


class AgentRuntime:
    """Synchronous FIFO message bus with an agent registry."""

    def __init__(self, max_steps: int = 100_000) -> None:
        if max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        self.max_steps = max_steps
        self._agents: dict[str, Agent] = {}
        self._queue: deque[Message] = deque()
        self.delivered_count = 0
        self.dead_letters: list[Message] = []

    # -- registry ------------------------------------------------------------

    def register(self, agent: Agent) -> Agent:
        """Add an agent; names must be unique."""
        if agent.name in self._agents:
            raise AgentError(f"agent {agent.name!r} already registered")
        self._agents[agent.name] = agent
        return agent

    def spawn(self, agent: Agent) -> Agent:
        """Alias of :meth:`register` used by self-replicating agents."""
        return self.register(agent)

    def get(self, name: str) -> Agent:
        """Fetch a registered agent."""
        try:
            return self._agents[name]
        except KeyError:
            raise AgentError(f"unknown agent {name!r}") from None

    def agent_names(self) -> list[str]:
        """Sorted names of registered agents."""
        return sorted(self._agents)

    def __contains__(self, name: object) -> bool:
        return name in self._agents

    # -- messaging -----------------------------------------------------------

    def send(self, message: Message) -> None:
        """Enqueue one message for later delivery."""
        self._queue.append(message)

    def send_all(self, messages: Iterable[Message]) -> None:
        """Enqueue several messages preserving order."""
        for message in messages:
            self.send(message)

    @property
    def pending(self) -> int:
        """Messages waiting on the bus."""
        return len(self._queue)

    def step(self) -> bool:
        """Deliver one message; returns False when the bus is idle.

        Messages to unknown recipients go to ``dead_letters`` instead of
        raising — a pre-processor replica may legitimately have terminated
        between send and delivery.
        """
        if not self._queue:
            return False
        message = self._queue.popleft()
        agent = self._agents.get(message.recipient)
        if agent is None:
            self.dead_letters.append(message)
            return True
        follow_ups = agent.handle(message, self)
        agent.handled_count += 1
        self.delivered_count += 1
        if follow_ups:
            self.send_all(follow_ups)
        return True

    def run_until_idle(self) -> int:
        """Deliver messages until the bus drains; returns deliveries made."""
        steps = 0
        while self.step():
            steps += 1
            if steps > self.max_steps:
                raise AgentError(
                    f"message loop: exceeded {self.max_steps} deliveries"
                )
        return steps
