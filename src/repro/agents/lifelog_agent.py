"""The LifeLogs Pre-processor Agent (Fig. 3, component 1).

"This agent replicates itself in pro-active way depending of user's
interaction.  Its function is to pre-process raw data in on-line and
off-line environments."

Topics:

* ``lifelog.ingest`` — payload ``{"lines": [...]}``: parse raw weblog
  lines into events and append them to the store.  Batches larger than
  ``replication_threshold`` are split across freshly spawned worker
  replicas (the proactive replication of the paper).
* ``lifelog.extract`` — distil per-user features and reply with
  ``lifelog.features``.
"""

from __future__ import annotations

from typing import Iterable

from repro.agents.messages import Message
from repro.agents.runtime import Agent, AgentRuntime
from repro.lifelog.preprocess import LifeLogPreprocessor
from repro.lifelog.store import EventLog
from repro.lifelog.weblog import WeblogParseError, parse_line, record_to_event


class LifeLogPreprocessorAgent(Agent):
    """Parses raw weblogs into the event store, replicating under load."""

    def __init__(
        self,
        name: str,
        store: EventLog,
        replication_threshold: int = 5_000,
        preprocessor: LifeLogPreprocessor | None = None,
    ) -> None:
        super().__init__(name)
        if replication_threshold < 1:
            raise ValueError("replication_threshold must be >= 1")
        self.store = store
        self.replication_threshold = replication_threshold
        self.preprocessor = preprocessor or LifeLogPreprocessor()
        self.parse_errors = 0
        self.ingested = 0
        self._replica_counter = 0

    def _ingest_lines(self, lines: list[str]) -> None:
        for line in lines:
            try:
                record = parse_line(line)
            except WeblogParseError:
                self.parse_errors += 1
                continue
            event = record_to_event(record)
            if event is not None:
                self.store.append(event)
                self.ingested += 1

    def handle(self, message: Message, runtime: AgentRuntime) -> Iterable[Message]:
        if message.topic == "lifelog.ingested":
            # Completion notice from a replica we spawned: absorb it.
            return []
        if message.topic == "lifelog.ingest":
            lines = list(message.payload.get("lines", ()))
            if len(lines) > self.replication_threshold:
                # Proactive replication: split the batch across new workers.
                half = len(lines) // 2
                replicas = []
                for chunk in (lines[:half], lines[half:]):
                    self._replica_counter += 1
                    replica = LifeLogPreprocessorAgent(
                        f"{self.name}.r{self._replica_counter}",
                        self.store,
                        self.replication_threshold,
                        self.preprocessor,
                    )
                    runtime.spawn(replica)
                    replicas.append(
                        Message(
                            sender=self.name,
                            recipient=replica.name,
                            topic="lifelog.ingest",
                            payload={"lines": chunk},
                        )
                    )
                return replicas
            self._ingest_lines(lines)
            return [
                message.reply(
                    "lifelog.ingested",
                    {"count": len(lines), "errors": self.parse_errors},
                )
            ]
        if message.topic == "lifelog.extract":
            events = list(self.store.events())
            features = self.preprocessor.extract_all(events)
            return [
                message.reply(
                    "lifelog.features",
                    {"features": features, "n_users": len(features)},
                )
            ]
        raise ValueError(f"{self.name}: unknown topic {message.topic!r}")
