"""The SPA multi-agent substrate (Fig. 3).

Section 4 describes SPA as five cooperating components; this subpackage
implements them as message-passing agents over a deterministic in-process
runtime:

* :class:`~repro.agents.lifelog_agent.LifeLogPreprocessorAgent` — raw-data
  pre-processing with proactive self-replication under load;
* :class:`~repro.agents.smart_component.SmartComponentAgent` — incremental
  learning, scoring and ranking;
* :class:`~repro.agents.attributes_agent.AttributesManagerAgent` —
  attribute creation/selection/fusion and sensibility weighting;
* :class:`~repro.agents.messaging_agent.MessagingAgentWrapper` —
  individualized emotional sales arguments (Fig. 5);
* :class:`~repro.agents.interface_agent.IntelligentUserInterfaceAgent` —
  the Human Values Scale and coherence analysis.

The runtime (:mod:`repro.agents.runtime`) is synchronous and deterministic:
messages process in FIFO order, so every multi-agent run is exactly
reproducible — a deliberate substitution for the paper's distributed
platform (see DESIGN.md).
"""

from repro.agents.attributes_agent import AttributesManagerAgent
from repro.agents.interface_agent import IntelligentUserInterfaceAgent
from repro.agents.lifelog_agent import LifeLogPreprocessorAgent
from repro.agents.messaging_agent import MessagingAgentWrapper
from repro.agents.messages import Message
from repro.agents.runtime import Agent, AgentRuntime
from repro.agents.smart_component import SmartComponentAgent

__all__ = [
    "Agent",
    "AgentRuntime",
    "AttributesManagerAgent",
    "IntelligentUserInterfaceAgent",
    "LifeLogPreprocessorAgent",
    "Message",
    "MessagingAgentWrapper",
    "SmartComponentAgent",
]
