"""The Intelligent User Interface agent (Fig. 3, component 5).

"It is an add-on component to manage an individualized and personalized
Human Values Scale of each user in his/her life cycles."

Topics:

* ``interface.observe`` — payload ``{"user_id": int, "signals": {...}}``:
  fold one valued action into the user's Human Values Scale.
* ``interface.coherence`` — payload ``{"user_id": int, "stated": {...}}``:
  reply with the coherence between stated preferences and the acted scale.
* ``interface.report`` — payload ``{"user_id": int}``: reply with the
  user's current value ranking.
"""

from __future__ import annotations

from typing import Iterable

from repro.agents.messages import Message
from repro.agents.runtime import Agent, AgentRuntime
from repro.core.human_values import HumanValuesScale


class IntelligentUserInterfaceAgent(Agent):
    """Owns the per-user Human Values Scales."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._scales: dict[int, HumanValuesScale] = {}

    def scale_for(self, user_id: int) -> HumanValuesScale:
        """The user's scale, created neutral on first touch."""
        scale = self._scales.get(int(user_id))
        if scale is None:
            scale = HumanValuesScale()
            self._scales[int(user_id)] = scale
        return scale

    def handle(self, message: Message, runtime: AgentRuntime) -> Iterable[Message]:
        if message.topic == "interface.observe":
            scale = self.scale_for(message.payload["user_id"])
            scale.observe_action(message.payload["signals"])
            return [
                message.reply(
                    "interface.observed",
                    {"ranking": scale.ranking()},
                )
            ]
        if message.topic == "interface.coherence":
            scale = self.scale_for(message.payload["user_id"])
            coherence = scale.coherence(message.payload["stated"])
            return [
                message.reply("interface.coherence_report", {"coherence": coherence})
            ]
        if message.topic == "interface.report":
            scale = self.scale_for(message.payload["user_id"])
            return [
                message.reply(
                    "interface.value_ranking",
                    {
                        "ranking": scale.ranking(),
                        "weights": dict(scale.weights),
                    },
                )
            ]
        raise ValueError(f"{self.name}: unknown topic {message.topic!r}")
