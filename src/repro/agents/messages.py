"""Typed inter-agent messages.

Messages are immutable envelopes: sender, recipient, topic, payload.
Topics are plain strings namespaced by component (``lifelog.ingest``,
``smart.train``, ``attributes.analyze``, ``messaging.assign``,
``interface.observe``), and payloads are small dicts — keeping the wire
format JSON-friendly the way a distributed deployment would need.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class Message:
    """One envelope on the bus."""

    sender: str
    recipient: str
    topic: str
    payload: dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_COUNTER))

    def __post_init__(self) -> None:
        if not self.topic:
            raise ValueError("message needs a topic")
        if not self.recipient:
            raise ValueError("message needs a recipient")

    def reply(self, topic: str, payload: dict[str, Any] | None = None) -> "Message":
        """An answer envelope addressed back to the sender."""
        return Message(
            sender=self.recipient,
            recipient=self.sender,
            topic=topic,
            payload=payload or {},
        )
