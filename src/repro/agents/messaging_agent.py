"""The Messaging Agent (Fig. 3, component 4) as a bus participant.

"This agent is able to automatically generate emotional arguments from
users' dominant attributes by using messages in each application domain
for each product.  This agent acts on behalf of marketing retailers to
define individualized communication styles for each user."

Topics:

* ``messaging.assign`` — payload ``{"user_ids": [...], "course_id": int}``:
  assign one message per user for the course; replies with assignments and
  the Fig. 5 case distribution.
"""

from __future__ import annotations

from typing import Iterable

from repro.agents.messages import Message
from repro.agents.runtime import Agent, AgentRuntime
from repro.core.sum_model import SumRepository
from repro.datagen.catalog import CourseCatalog
from repro.messaging.assigner import MessageAssigner
from repro.messaging.templates import default_template_bank


class MessagingAgentWrapper(Agent):
    """Bus wrapper around :class:`~repro.messaging.assigner.MessageAssigner`."""

    def __init__(
        self,
        name: str,
        sums: SumRepository,
        catalog: CourseCatalog,
        assigner: MessageAssigner | None = None,
    ) -> None:
        super().__init__(name)
        self.sums = sums
        self.catalog = catalog
        self.assigner = assigner or MessageAssigner(default_template_bank())

    def handle(self, message: Message, runtime: AgentRuntime) -> Iterable[Message]:
        if message.topic == "messaging.assign":
            course = self.catalog.get(int(message.payload["course_id"]))
            user_ids = list(message.payload["user_ids"])
            assignments = [
                self.assigner.assign(self.sums.get(uid), course)
                for uid in user_ids
            ]
            return [
                message.reply(
                    "messaging.assigned",
                    {
                        "assignments": assignments,
                        "cases": self.assigner.case_distribution(assignments),
                    },
                )
            ]
        raise ValueError(f"{self.name}: unknown topic {message.topic!r}")
