"""The Smart Component (Fig. 3, component 2).

"This component implements advanced algorithms and methods for incremental
learning in order to accurately predict user behavior.  It has graphics
tools to monitor and manage scorings, classifications, rankings of
attributes, items and users, user propensity and others capabilities."

Topics:

* ``smart.train`` — payload ``{"x": ndarray, "y": ndarray}``: (re)train
  the propensity model; replies ``smart.trained``.
* ``smart.train_incremental`` — fold one mini-batch into the online model.
* ``smart.score`` — payload ``{"x": ndarray}``: reply ``smart.scores``
  with calibrated propensities.
* ``smart.rank`` — payload ``{"x": ndarray, "user_ids": [...]}``: reply
  ``smart.ranking`` with users ordered by descending propensity.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.agents.messages import Message
from repro.agents.runtime import Agent, AgentRuntime
from repro.campaigns.propensity import EstimatorName, PropensityModel
from repro.ml.incremental import OnlineSGDClassifier


class SmartComponentAgent(Agent):
    """Owns the learning models and answers scoring requests."""

    def __init__(
        self,
        name: str,
        estimator: EstimatorName = "svm",
        seed: int = 0,
    ) -> None:
        super().__init__(name)
        self.estimator: EstimatorName = estimator
        self.seed = seed
        self.model: PropensityModel | None = None
        self.online_model: OnlineSGDClassifier | None = None
        self.train_count = 0

    def handle(self, message: Message, runtime: AgentRuntime) -> Iterable[Message]:
        if message.topic == "smart.train":
            x = np.asarray(message.payload["x"], dtype=np.float64)
            y = np.asarray(message.payload["y"])
            self.model = PropensityModel(self.estimator, seed=self.seed)
            self.model.fit(x, y)
            self.train_count += 1
            return [
                message.reply(
                    "smart.trained",
                    {"n_samples": len(x), "train_count": self.train_count},
                )
            ]
        if message.topic == "smart.train_incremental":
            x = np.asarray(message.payload["x"], dtype=np.float64)
            y = np.asarray(message.payload["y"])
            if self.online_model is None:
                self.online_model = OnlineSGDClassifier(n_features=x.shape[1])
            self.online_model.partial_fit(x, y)
            return [
                message.reply(
                    "smart.trained_incremental",
                    {"t": self.online_model.t_},
                )
            ]
        if message.topic == "smart.score":
            scores = self._score(np.asarray(message.payload["x"]))
            return [message.reply("smart.scores", {"scores": scores})]
        if message.topic == "smart.rank":
            x = np.asarray(message.payload["x"])
            user_ids = list(message.payload["user_ids"])
            if len(user_ids) != len(x):
                raise ValueError(
                    f"{len(user_ids)} user ids for {len(x)} feature rows"
                )
            scores = self._score(x)
            order = sorted(
                range(len(user_ids)),
                key=lambda i: (-float(scores[i]), user_ids[i]),
            )
            ranking = [(user_ids[i], float(scores[i])) for i in order]
            return [message.reply("smart.ranking", {"ranking": ranking})]
        raise ValueError(f"{self.name}: unknown topic {message.topic!r}")

    def _score(self, x: np.ndarray) -> np.ndarray:
        if self.model is not None:
            return self.model.predict_proba(x)
        if self.online_model is not None:
            return self.online_model.predict_proba(x)
        raise RuntimeError(f"{self.name}: no model trained yet")
