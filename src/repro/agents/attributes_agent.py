"""The Attributes Manager Agent (Fig. 3, component 3).

"This agent is able to create, extract, select, and fuse attributes in
order to evaluate similar attributes for multiple domains of interaction
and also to contrast them in an automatic way.  This agent automatically
detects the level of sensibility of each user for each of his/her dominant
attributes by automatically assigning weights (relevancies)."

Topics:

* ``attributes.analyze`` — payload ``{"user_ids": [...]}``: run the
  sensibility analyzer over the given SUMs; replies with per-user dominant
  attributes.
* ``attributes.fuse`` — payload ``{"sources": {name: {attr: value}}}``:
  fuse attribute estimates from several domains by precision-weighted
  averaging; replies with the fused estimate.
* ``attributes.select`` — payload ``{"matrix", "names", "labels", "k"}``:
  rank attributes by point-biserial correlation with an outcome and keep
  the top ``k`` (the "selection" capability).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.agents.messages import Message
from repro.agents.runtime import Agent, AgentRuntime
from repro.core.sensibility import SensibilityAnalyzer
from repro.core.sum_model import SumRepository


class AttributesManagerAgent(Agent):
    """Sensibility weighting, attribute fusion and selection."""

    def __init__(
        self,
        name: str,
        sums: SumRepository,
        analyzer: SensibilityAnalyzer | None = None,
    ) -> None:
        super().__init__(name)
        self.sums = sums
        self.analyzer = analyzer or SensibilityAnalyzer()

    def handle(self, message: Message, runtime: AgentRuntime) -> Iterable[Message]:
        if message.topic == "attributes.analyze":
            user_ids = message.payload.get("user_ids")
            ids = list(user_ids) if user_ids is not None else self.sums.user_ids()
            dominant = {}
            for uid in ids:
                model = self.sums.get(uid)
                dominant[uid] = self.analyzer.dominant(model)
            return [message.reply("attributes.analyzed", {"dominant": dominant})]
        if message.topic == "attributes.fuse":
            sources = message.payload["sources"]
            fused = fuse_attribute_estimates(sources)
            return [message.reply("attributes.fused", {"fused": fused})]
        if message.topic == "attributes.select":
            matrix = np.asarray(message.payload["matrix"], dtype=np.float64)
            names = list(message.payload["names"])
            labels = np.asarray(message.payload["labels"], dtype=np.float64)
            k = int(message.payload.get("k", 10))
            selected = select_attributes(matrix, names, labels, k)
            return [message.reply("attributes.selected", {"selected": selected})]
        raise ValueError(f"{self.name}: unknown topic {message.topic!r}")


def fuse_attribute_estimates(
    sources: dict[str, dict[str, float]],
    weights: dict[str, float] | None = None,
) -> dict[str, float]:
    """Fuse per-domain attribute estimates by weighted averaging.

    ``sources[domain][attribute] = value``; domains missing an attribute
    simply do not vote on it.  Default weights are uniform.
    """
    weights = weights or {domain: 1.0 for domain in sources}
    totals: dict[str, float] = {}
    masses: dict[str, float] = {}
    for domain, estimates in sources.items():
        weight = weights.get(domain, 1.0)
        if weight <= 0:
            continue
        for attribute, value in estimates.items():
            totals[attribute] = totals.get(attribute, 0.0) + weight * value
            masses[attribute] = masses.get(attribute, 0.0) + weight
    return {
        attribute: totals[attribute] / masses[attribute] for attribute in totals
    }


def select_attributes(
    matrix: np.ndarray,
    names: list[str],
    labels: np.ndarray,
    k: int,
) -> list[tuple[str, float]]:
    """Top-``k`` attributes by |point-biserial correlation| with the labels.

    The "attributes which have a high impact on their emotional responses"
    selection of Section 5.2, done the classical filter-method way.
    """
    if matrix.ndim != 2 or matrix.shape[1] != len(names):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match {len(names)} names"
        )
    if len(matrix) != len(labels):
        raise ValueError(f"length mismatch: {len(matrix)} vs {len(labels)}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    scores = []
    label_std = labels.std()
    for j, name in enumerate(names):
        column = matrix[:, j]
        denominator = column.std() * label_std
        if denominator == 0:
            correlation = 0.0
        else:
            correlation = float(
                np.mean((column - column.mean()) * (labels - labels.mean()))
                / denominator
            )
        scores.append((name, correlation))
    scores.sort(key=lambda item: (-abs(item[1]), item[0]))
    return scores[:k]
