"""Write-behind persistence: consumers commit state first, log later.

The hot path of a consumer worker is the SUM update; appending every
event to the segmented :class:`~repro.lifelog.store.EventLog` inline
would put columnar coercion on that path.  :class:`WriteBehindWriter`
buffers applied events and flushes them in batches through
:meth:`EventLog.extend <repro.lifelog.store.EventLog.extend>` (one
segment-roll check per batch), trading a bounded window of un-logged
events for a much shorter critical section.

Durability contract: an event is guaranteed to be in the log only after
:meth:`flush` (the updater's ``drain``/``stop`` call it).  The buffer is
bounded by ``flush_every``; ``add_batch`` flushes synchronously once the
buffer fills, so memory stays O(flush_every) regardless of traffic.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.analysis.contracts import declare_lock, guarded_by, requires_lock
from repro.lifelog.events import Event
from repro.lifelog.store import EventLog
from repro.obs.metrics import MetricsRegistry, NullRegistry, resolve_registry

declare_lock("WriteBehindWriter._lock")


@guarded_by("_lock", "_buffer", "flushed_events", "flush_count")
class WriteBehindWriter:
    """Batched, thread-safe event persistence into an :class:`EventLog`."""

    def __init__(
        self,
        event_log: EventLog,
        flush_every: int = 512,
        telemetry: MetricsRegistry | NullRegistry | None = None,
    ) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.event_log = event_log
        self.flush_every = flush_every
        self._buffer: list[Event] = []
        self._lock = threading.Lock()
        self.flushed_events = 0
        self.flush_count = 0
        # Callback gauges read GIL-atomic aggregates without the writer
        # lock, so a metrics snapshot can never contend with a flush.
        registry = resolve_registry(telemetry)
        registry.gauge(
            "writebehind.pending", fn=lambda: float(len(self._buffer))
        )
        registry.gauge(
            "writebehind.flushed_events",
            fn=lambda: float(self.flushed_events),
        )
        registry.gauge(
            "writebehind.flush_count", fn=lambda: float(self.flush_count)
        )

    def add_batch(self, events: Iterable[Event]) -> int:
        """Buffer applied events; flush if the buffer filled.

        Returns how many events were written through to the log by this
        call (0 while the buffer is still filling).
        """
        with self._lock:
            self._buffer.extend(events)
            if len(self._buffer) < self.flush_every:
                return 0
            return self._flush_locked()

    def flush(self) -> int:
        """Write everything buffered; returns how many events flushed."""
        with self._lock:
            return self._flush_locked()

    @requires_lock("_lock")
    def _flush_locked(self) -> int:
        if not self._buffer:
            return 0
        batch, self._buffer = self._buffer, []
        try:
            written = self.event_log.extend(batch)
        except Exception:
            # Put everything back (in order) so a transient log failure
            # costs a retry on the next flush, not the whole buffer.
            self._buffer = batch + self._buffer
            raise
        self.flushed_events += written
        self.flush_count += 1
        return written

    @property
    def pending(self) -> int:
        """Events buffered but not yet in the log."""
        with self._lock:
            return len(self._buffer)
