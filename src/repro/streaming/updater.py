"""The streaming emotion-update subsystem, assembled.

:class:`StreamingUpdater` wires the whole live Fig. 4 loop together:

.. code-block:: text

    LifeLog events ──▶ EventBus topic "lifelog"
                          │  (hash-partitioned by user_id, bounded,
                          │   at-least-once)
                ┌─────────┼─────────┐
           ShardWorker  ShardWorker  …          one thread per partition
                │            │
                │ mapper: event ──▶ reward/punish/decay ops
                │ cache.apply_and_publish: apply ops + version bump
                │   in one per-user lock hold
                │ write-behind ──▶ EventLog.extend (batched)
                └─▶ cache.mark_batch: one global bump per batch
                          │
                          ▼
          SumCache (versioned snapshots) ◀── RecommendationService.sums

    The Advice stage therefore serves from state at most one in-flight
    batch behind the stream, and the version counters say exactly how
    far behind.

Usage::

    updater = StreamingUpdater(sums, item_emotions, event_log=log)
    service = RecommendationService(sums=updater.cache, ...)
    with updater:                       # start()/stop()
        updater.submit_many(events)
        updater.drain()                 # all applied + flushed
        service.recommend(...)          # fresh emotional state
"""

from __future__ import annotations

from dataclasses import dataclass
from time import monotonic
from typing import Iterable, Mapping

from repro.core.reward import ReinforcementPolicy
from repro.core.sum_model import SumRepository
from repro.core.sum_store import ColumnarSumStore
from repro.lifelog.events import Event
from repro.lifelog.store import EventLog
from repro.obs.metrics import MetricsRegistry, NullRegistry, resolve_registry
from repro.obs.tracing import NULL_TRACER, NullTracer, Tracer
from repro.streaming.bus import EventBus, Topic
from repro.streaming.cache import SumCache
from repro.streaming.consumer import DecayTick, ShardWorker
from repro.streaming.control import ControlPlaneConfig
from repro.streaming.mapper import EventUpdateMapper, MapperConfig
from repro.streaming.writebehind import WriteBehindWriter

#: the single topic the subsystem runs on
LIFELOG_TOPIC = "lifelog"


@dataclass(frozen=True)
class StreamingStats:
    """Aggregate counters across the bus and all shard workers."""

    submitted: int
    applied: int
    ops_applied: int
    batches: int
    redelivered: int
    dead_lettered: int
    failed: int
    log_dropped: int
    queue_depth: int
    flushed_events: int
    flush_count: int
    pending_writes: int
    #: background messages shed at publish (full partition, drop-new or
    #: evicted by a user-class publish)
    shed_background: int = 0
    #: background messages shed at dequeue (bus-level deadline expired)
    shed_expired: int = 0
    #: decay ticks a worker dropped unapplied (value-level deadline)
    expired_dropped: int = 0


class StreamingUpdater:
    """Live incremental SUM updates from a LifeLog event stream.

    Parameters
    ----------
    sums:
        The live SUM collection to update — an object-backed
        :class:`~repro.core.sum_model.SumRepository` or the columnar
        :class:`~repro.core.sum_store.ColumnarSumStore` (workers then
        commit whole batch slices vectorized against row ranges).
        Workers create SUMs on first contact, like the offline loop.
    item_emotions:
        ``str(item_id) -> emotions`` mapping for the update mapper (see
        :meth:`~repro.datagen.catalog.CourseCatalog.emotion_links`).
    policy:
        Reinforcement knobs shared with the offline loop (default
        :class:`~repro.core.reward.ReinforcementPolicy`).
    mapper_config:
        Per-category strengths and decay cadence.
    event_log:
        Optional :class:`~repro.lifelog.store.EventLog` for write-behind
        persistence of every applied event.
    n_shards:
        Consumer parallelism = topic partitions.  Per-user ordering holds
        for any value because users are hash-pinned to shards.
    queue_capacity:
        Bounded-queue size per partition (backpressure threshold).
    batch_max:
        Largest batch one worker applies (and the visibility quantum:
        versions bump once per applied batch).
    max_attempts:
        At-least-once redelivery budget before dead-lettering.
    flush_every:
        Write-behind buffer size, in events.
    mirror_families:
        Extra column families (``"subjective"``, ``"evidence"``) for the
        cache's read mirror to stage beyond the Advice-stage defaults —
        batch consumers of those families then get the same snapshot
        isolation (columnar backends only).
    telemetry:
        A :class:`~repro.obs.metrics.MetricsRegistry` to instrument the
        whole subsystem (bus, workers, cache, write-behind).  Default
        ``None`` runs on null instruments: no locks, no timestamps.
    tracer:
        A :class:`~repro.obs.tracing.Tracer` for per-event lifecycle
        spans (queue wait → map → commit → publish).  When ``telemetry``
        is enabled and no tracer is given, one is created — trace ids
        are then minted at ingest and stamped on every delivery.
    """

    def __init__(
        self,
        sums: "SumRepository | ColumnarSumStore",
        item_emotions: Mapping[str, tuple[str, ...]],
        policy: ReinforcementPolicy | None = None,
        mapper_config: MapperConfig | None = None,
        event_log: EventLog | None = None,
        n_shards: int = 4,
        queue_capacity: int = 2_048,
        batch_max: int = 256,
        max_attempts: int = 3,
        flush_every: int = 512,
        mirror_families: tuple[str, ...] | None = None,
        telemetry: MetricsRegistry | NullRegistry | None = None,
        tracer: Tracer | NullTracer | None = None,
        control_plane: ControlPlaneConfig | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.policy = policy or ReinforcementPolicy()
        #: tail-latency control plane (None = legacy fixed-batch,
        #: never-shed behavior, bit-exact with earlier releases)
        self.control_plane = control_plane
        self.telemetry = resolve_registry(telemetry)
        if tracer is None:
            # enabled telemetry implies tracing: ids minted at ingest
            self.tracer: Tracer | NullTracer = (
                Tracer() if self.telemetry.enabled else NULL_TRACER
            )
        else:
            self.tracer = tracer
        self.cache = SumCache(
            sums, mirror_families=mirror_families, telemetry=self.telemetry
        )
        self.bus = EventBus(telemetry=self.telemetry, tracer=self.tracer)
        self.topic: Topic = self.bus.create_topic(
            LIFELOG_TOPIC, partitions=n_shards,
            capacity=queue_capacity, max_attempts=max_attempts,
        )
        self.write_behind = (
            WriteBehindWriter(event_log, flush_every, telemetry=self.telemetry)
            if event_log is not None else None
        )
        # One mapper per shard: per-user decay counters stay with the
        # worker that owns the user, so they need no cross-thread locking.
        self.workers = [
            ShardWorker(
                partition=partition,
                mapper=EventUpdateMapper(item_emotions, mapper_config),
                cache=self.cache,
                policy=self.policy,
                write_behind=self.write_behind,
                batch_max=batch_max,
                telemetry=self.telemetry,
                tracer=self.tracer,
                control=control_plane,
            )
            for partition in self.topic
        ]
        self._started = False
        self._stopped = False
        self._submitted = 0
        self.telemetry.gauge(
            "streaming.submitted", fn=lambda: float(self._submitted)
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "StreamingUpdater":
        """Start all shard workers (idempotent while running).

        An updater is single-use: worker threads and the bus cannot be
        restarted, so ``start()`` after :meth:`stop` raises — build a
        fresh updater instead (the SUM repository and event log carry
        all durable state, so nothing is lost).
        """
        if self._stopped:
            raise RuntimeError(
                "updater already stopped; create a new StreamingUpdater"
            )
        if not self._started:
            for worker in self.workers:
                worker.start()
            self._started = True
        return self

    def stop(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        """Stop workers (terminal); with ``drain`` process everything first."""
        if self._stopped:
            return
        if drain and self._started:
            self.drain(timeout)
        for worker in self.workers:
            worker.request_stop()
        self.bus.close()
        for worker in self.workers:
            if worker.is_alive():
                worker.join(timeout)
        if self.write_behind is not None:
            self.write_behind.flush()
        self._started = False
        self._stopped = True

    def __enter__(self) -> "StreamingUpdater":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- ingestion ---------------------------------------------------------

    def submit(self, event: Event, timeout: float | None = None) -> int:
        """Publish one event (blocks under backpressure); returns shard."""
        if not self._started:
            raise RuntimeError("updater not started; call start() first")
        shard = self.topic.publish(event, key=event.user_id, timeout=timeout)
        self._submitted += 1
        return shard

    def submit_many(self, events: Iterable[Event], chunk: int = 512) -> int:
        """Publish many events on the batched path (one partition lock
        hold per chunk instead of per event); returns how many."""
        if not self._started:
            raise RuntimeError("updater not started; call start() first")
        pending: list[tuple[Event, int]] = []
        count = 0
        for event in events:
            pending.append((event, event.user_id))
            if len(pending) >= chunk:
                count += self.topic.publish_many(pending)
                pending = []
        if pending:
            count += self.topic.publish_many(pending)
        self._submitted += count
        return count

    def tick(self, user_ids: Iterable[int]) -> int:
        """Schedule one decay tick per user (the between-touches decay).

        With a control plane configured, ticks ride the *background*
        service class: a saturated partition sheds them instead of
        blocking user-facing publishes, and ``tick_ttl`` stamps a
        deadline after which a queued tick is dropped unprocessed
        (exact-counted at whichever layer sheds it)."""
        if not self._started:
            raise RuntimeError("updater not started; call start() first")
        control = self.control_plane
        background = control is not None and control.priority_shedding
        deadline = None
        if control is not None and control.tick_ttl is not None:
            deadline = monotonic() + control.tick_ttl
        count = 0
        for user_id in user_ids:
            self.topic.publish(
                DecayTick(int(user_id), deadline=deadline),
                key=int(user_id),
                background=background,
                deadline=deadline,
            )
            self._submitted += 1
            count += 1
        return count

    # -- synchronization ---------------------------------------------------

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Block until every submitted message is applied (or dead) and
        the write-behind buffer is flushed; returns ``True`` on success."""
        settled = self.topic.join(timeout)
        if self.write_behind is not None:
            self.write_behind.flush()
        return settled

    # -- observability -----------------------------------------------------

    def latencies(self) -> list[float]:
        """Update-to-visible latency samples (seconds) across workers."""
        samples: list[float] = []
        for worker in self.workers:
            samples.extend(worker.stats.latencies)
        return samples

    def stats(self) -> StreamingStats:
        return StreamingStats(
            submitted=self._submitted,
            applied=sum(w.stats.processed for w in self.workers),
            ops_applied=sum(w.stats.ops_applied for w in self.workers),
            batches=sum(w.stats.batches for w in self.workers),
            redelivered=self.topic.redelivered,
            dead_lettered=len(self.topic.dead_letters),
            failed=sum(w.stats.failed for w in self.workers),
            log_dropped=sum(w.stats.log_drops for w in self.workers),
            queue_depth=self.topic.depth,
            flushed_events=(
                self.write_behind.flushed_events
                if self.write_behind is not None else 0
            ),
            flush_count=(
                self.write_behind.flush_count
                if self.write_behind is not None else 0
            ),
            pending_writes=(
                self.write_behind.pending
                if self.write_behind is not None else 0
            ),
            shed_background=self.topic.shed_background,
            shed_expired=self.topic.shed_expired,
            expired_dropped=sum(
                w.stats.expired_dropped for w in self.workers
            ),
        )
