"""Sharded consumer workers: one thread per partition, per-user order.

Each :class:`ShardWorker` owns exactly one partition of the ``lifelog``
topic, so the hash partitioning of :mod:`repro.streaming.bus` guarantees
it sees *all* events of its users, in publish order — the precondition
for the mapper's per-user decay counters and for equivalence with a
sequential replay.

Batch processing protocol (at-least-once, batch-atomic visibility):

1. take up to ``batch_max`` deliveries from the partition;
2. map every delivery exactly once (a malformed event nacks for
   redelivery *before* any of its ops apply, so retries never
   double-apply);
3. group by user, then commit: on a columnar SUM backend the whole
   batch goes through :meth:`SumCache.apply_batch_and_publish
   <repro.streaming.cache.SumCache.apply_batch_and_publish>` — one
   vectorized apply against row ranges under every touched user's lock;
   otherwise (or when batch validation rejects an op) each user's slice
   runs through :meth:`SumCache.apply_and_publish
   <repro.streaming.cache.SumCache.apply_and_publish>` — either way
   apply + version bump + snapshot invalidation happen in one lock
   hold, exactly one version bump per touched user;
4. hand the applied events to the write-behind writer and mark the batch
   (one global-version bump);
5. ack everything applied, recording update-to-visible latency samples.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import monotonic, perf_counter

from repro.core.reward import ReinforcementPolicy
from repro.core.updates import apply_ops
from repro.lifelog.events import Event
from repro.obs.metrics import (
    SIZE_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    labelled,
    resolve_registry,
)
from repro.obs.tracing import NullTracer, Tracer, resolve_tracer
from repro.streaming.bus import Delivery, PartitionQueue
from repro.streaming.cache import SumCache
from repro.streaming.control import AdaptiveBatcher, ControlPlaneConfig
from repro.streaming.mapper import EventUpdateMapper
from repro.streaming.writebehind import WriteBehindWriter


@dataclass(frozen=True)
class DecayTick:
    """Control message: apply one scheduled decay tick to one user."""

    user_id: int
    #: ``time.monotonic()`` deadline stamped at enqueue; a worker that
    #: picks the tick up after this drops it (counted, acked, unapplied).
    #: Lives on the *value* — not the bus delivery — so it survives
    #: pickling onto the multiproc plane and journal replay sees the
    #: same expiry decision the live run made.
    deadline: float | None = None


@dataclass
class WorkerStats:
    """Counters one shard worker maintains (read under the worker lock)."""

    processed: int = 0
    ops_applied: int = 0
    batches: int = 0
    failed: int = 0
    #: applied events whose write-behind flush failed (state is committed
    #: and acked; the events stay buffered and retry on the next flush)
    log_drops: int = 0
    #: decay ticks dropped unapplied because their deadline had passed
    #: by the time the worker dequeued them
    expired_dropped: int = 0
    #: update-to-visible latency samples, seconds (bounded reservoir)
    latencies: list[float] = field(default_factory=list)


class ShardWorker(threading.Thread):
    """One consumer thread bound to one partition queue."""

    #: keep at most this many latency samples per worker
    MAX_LATENCY_SAMPLES = 50_000

    def __init__(
        self,
        partition: PartitionQueue,
        mapper: EventUpdateMapper,
        cache: SumCache,
        policy: ReinforcementPolicy,
        write_behind: WriteBehindWriter | None = None,
        batch_max: int = 256,
        poll_timeout: float = 0.05,
        telemetry: MetricsRegistry | NullRegistry | None = None,
        tracer: Tracer | NullTracer | None = None,
        control: ControlPlaneConfig | None = None,
    ) -> None:
        super().__init__(name=f"sum-shard-{partition.partition}", daemon=True)
        if getattr(cache.repository, "readonly", False):
            # Fail at wiring time, not per delivery: a read-only mmap
            # replica can never commit, and the scalar fallback would
            # just dead-letter the whole stream one batch at a time.
            raise TypeError(
                "cannot consume into a read-only (mmap-loaded) SUM store; "
                "run shard workers against the writable primary"
            )
        self.partition = partition
        self.mapper = mapper
        self.cache = cache
        self.policy = policy
        self.write_behind = write_behind
        self.batch_max = batch_max
        self.poll_timeout = poll_timeout
        self.control = control
        # Adaptive batching replaces the fixed batch_max with a size
        # derived from queue depth + observed commit cost; the batcher is
        # owned by this thread alone (reads/records happen in run()).
        self.batcher = (
            AdaptiveBatcher(control, batch_max)
            if control is not None and control.adaptive_batching
            else None
        )
        self.stats = WorkerStats()
        self._stop_requested = threading.Event()
        # Instruments resolve once here; the batch loop never consults the
        # registry.  All recording happens with no component lock held —
        # instrument locks stay leaves of the process lock graph.
        registry = resolve_registry(telemetry)
        self.tracer = resolve_tracer(tracer)
        self._telemetry_on = registry.enabled
        shard = str(partition.partition)
        self._m_batch_size = registry.histogram(
            "streaming.batch_size", SIZE_BUCKETS
        )
        self._m_commit = registry.histogram(
            labelled("streaming.commit_seconds", shard=shard)
        )
        self._m_visible = registry.histogram(
            "streaming.update_visible_seconds"
        )
        self._m_applied = registry.counter("streaming.events_applied")
        self._m_failed = registry.counter("streaming.events_failed")
        self._m_log_drops = registry.counter("streaming.log_drops")
        self._m_expired = registry.counter("streaming.expired_dropped")

    # -- lifecycle ---------------------------------------------------------

    def request_stop(self) -> None:
        """Ask the worker to exit once its partition is drained."""
        self._stop_requested.set()

    def run(self) -> None:  # pragma: no cover - exercised via integration
        batcher = self.batcher
        while True:
            limit = (
                batcher.next_size(self.partition.depth)
                if batcher is not None
                else self.batch_max
            )
            batch = self.partition.get_batch(limit, self.poll_timeout)
            if batch:
                self._process(batch)
            elif self._stop_requested.is_set() and self.partition.depth == 0:
                return

    # -- batch processing --------------------------------------------------

    def _ops_for(self, delivery: Delivery):
        value = delivery.value
        if isinstance(value, DecayTick):
            return int(value.user_id), self.mapper.tick_ops(value.user_id)
        if isinstance(value, Event):
            return int(value.user_id), self.mapper.ops(value)
        raise TypeError(f"shard worker got non-event message {value!r}")

    def _nack_in_order(
        self, deliveries: list[Delivery], settled: set[int]
    ) -> None:
        """Nack preserving FIFO: front-insertion needs reverse order."""
        self.stats.failed += len(deliveries)
        self._m_failed.inc(len(deliveries))
        for delivery in reversed(deliveries):
            settled.add(id(delivery))
            self.partition.nack(delivery)

    def _process(self, batch: list[Delivery]) -> None:
        """Process one batch, guaranteeing every delivery settles.

        A delivery left neither acked, nacked nor rejected would leak the
        partition's in-flight count and wedge ``join``/``drain`` forever,
        so an exception escaping the batch logic (which should itself
        settle everything) rejects whatever remains unsettled — the shard
        thread survives and the queue keeps moving.
        """
        settled: set[int] = set()
        try:
            self._process_settling(batch, settled)
        except Exception:
            leaked = [d for d in batch if id(d) not in settled]
            self.stats.failed += len(leaked)
            self._m_failed.inc(len(leaked))
            for delivery in leaked:
                self.partition.reject(delivery)

    def _drop_expired(
        self, batch: list[Delivery], settled: set[int]
    ) -> list[Delivery]:
        """Shed decay ticks whose value-level deadline has passed.

        An expired tick is acked (the at-least-once contract settles it —
        it will never redeliver, so the drop happens exactly once per
        tick) but its ops never apply and the mapper's decay counters
        never advance.  The count lands in ``stats.expired_dropped`` and
        the ``streaming.expired_dropped`` counter; user-facing events are
        never dropped here.
        """
        if self.control is None:
            return batch
        now = None
        kept: list[Delivery] = []
        expired: list[Delivery] = []
        for delivery in batch:
            value = delivery.value
            if isinstance(value, DecayTick) and value.deadline is not None:
                if now is None:
                    now = monotonic()
                if now >= value.deadline:
                    expired.append(delivery)
                    continue
            kept.append(delivery)
        if expired:
            for delivery in expired:
                settled.add(id(delivery))
            self.partition.ack_batch(expired)
            self.stats.expired_dropped += len(expired)
            self._m_expired.inc(len(expired))
        return kept

    def _process_settling(
        self, batch: list[Delivery], settled: set[int]
    ) -> None:
        # Map every delivery exactly once across its whole lifetime (the
        # mapper's decay counters are stateful, so a redelivered message
        # must reuse its memoized ops, not advance the counters again),
        # nacking malformed messages before anything applies; then group
        # per user so each user's whole slice of the batch is applied
        # under one lock hold (readers never see a half-batch).
        dequeued_at = perf_counter()
        batch = self._drop_expired(batch, settled)
        if not batch:
            return
        self._m_batch_size.observe(len(batch))
        per_user: dict[int, list[tuple[Delivery, tuple]]] = {}
        order: list[int] = []
        unmappable: list[Delivery] = []
        for delivery in batch:
            if delivery.mapped is None:
                try:
                    delivery.mapped = self._ops_for(delivery)
                except Exception:
                    unmappable.append(delivery)
                    continue
            user_id, ops = delivery.mapped
            if user_id not in per_user:
                per_user[user_id] = []
                order.append(user_id)
            per_user[user_id].append((delivery, ops))
        if unmappable:
            self._nack_in_order(unmappable, settled)
        mapped_at = perf_counter()

        applied = self._apply_batch_columnar(per_user, order)
        if applied is None:
            applied = self._apply_per_user(per_user, order, settled)
        committed_at = perf_counter()
        if self.batcher is not None and applied:
            self.batcher.record(len(applied), committed_at - mapped_at)

        if not applied:
            return
        if self.write_behind is not None:
            to_log = [
                d.value for d in applied if isinstance(d.value, Event)
            ]
            if to_log:
                try:
                    self.write_behind.add_batch(to_log)
                except Exception:
                    # State is already committed; a failing flush must not
                    # stall the partition or double-apply via redelivery.
                    # The writer kept the events buffered for the next
                    # flush — count them so the lag is observable.
                    self.stats.log_drops += len(to_log)
                    self._m_log_drops.inc(len(to_log))
        self.cache.mark_batch()
        visible_at = perf_counter()
        samples = self.stats.latencies
        room = self.MAX_LATENCY_SAMPLES - len(samples)
        if room > 0:
            samples.extend(
                visible_at - d.published_at for d in applied[:room]
            )
        settled.update(id(d) for d in applied)
        self.partition.ack_batch(applied)
        self.stats.processed += len(applied)
        self.stats.batches += 1
        self._m_applied.inc(len(applied))
        self._m_commit.observe(committed_at - mapped_at)
        if self._telemetry_on:
            # update-to-visible is the *user-facing* SLO: background
            # decay rides the lower queue class and is deliberately
            # allowed to wait (burst-enqueued ticks queue behind each
            # other), so its latencies stay out of the histogram the
            # p99 gate watches
            observe = self._m_visible.observe
            for delivery in applied:
                if not delivery.background:
                    observe(visible_at - delivery.published_at)
        tracer = self.tracer
        if tracer.enabled:
            # one trace per event: queue wait, map, commit, publish spans
            for delivery in applied:
                trace_id = delivery.trace_id
                if trace_id is None:
                    continue
                tracer.add(
                    trace_id, "bus.queue", delivery.published_at, dequeued_at
                )
                tracer.add(trace_id, "worker.map", dequeued_at, mapped_at)
                tracer.add(trace_id, "worker.commit", mapped_at, committed_at)
                tracer.add(trace_id, "cache.publish", committed_at, visible_at)

    def _apply_batch_columnar(
        self,
        per_user: dict[int, list[tuple[Delivery, tuple]]],
        order: list[int],
    ) -> list[Delivery] | None:
        """Commit the whole batch as row-range slices on a columnar store.

        Only taken when the cache's repository is columnar
        (``batch_apply_ops``): the store validates every op *before*
        mutating anything, so a validation failure (returning ``None``
        here) safely falls through to the per-user scalar path with its
        per-delivery error isolation — no double-apply is possible.
        """
        if not order:
            return []
        batch_apply = getattr(self.cache, "apply_batch_and_publish", None)
        if batch_apply is None or not callable(
            getattr(self.cache.repository, "batch_apply_ops", None)
        ):
            return None
        items = []
        for user_id in order:
            ops: list = []
            for __, delivery_ops in per_user[user_id]:
                ops.extend(delivery_ops)
            items.append((user_id, tuple(ops)))
        try:
            counts, __ = batch_apply(items, self.policy)
        except (KeyError, TypeError, ValueError):
            # Pre-mutation validation rejected an op; the scalar path
            # will isolate and dead-letter the offending delivery.
            return None
        self.stats.ops_applied += sum(counts)
        return [
            delivery
            for user_id in order
            for delivery, __ in per_user[user_id]
        ]

    def _apply_per_user(
        self,
        per_user: dict[int, list[tuple[Delivery, tuple]]],
        order: list[int],
        settled: set[int],
    ) -> list[Delivery]:
        """The scalar commit path: one lock hold per user, per-delivery
        error isolation (see the class docstring's batch protocol)."""
        applied: list[Delivery] = []
        for user_id in order:
            slice_ = per_user[user_id]
            ok: list[Delivery] = []
            bad: list[Delivery] = []
            ops_applied = [0]

            def apply_user(model, slice_=slice_, ok=ok, bad=bad,
                           ops_applied=ops_applied):
                total = 0
                for delivery, ops in slice_:
                    # Per-delivery isolation: one failing apply must not
                    # poison its neighbours or kill the shard.
                    try:
                        total += apply_ops(model, ops, self.policy)
                    except Exception:
                        bad.append(delivery)
                    else:
                        ok.append(delivery)
                ops_applied[0] = total
                # A failed delivery may have applied a prefix of its ops
                # before raising, so a bad slice must still commit (bump
                # the version, invalidate the snapshot) even if no
                # delivery completed cleanly.
                return total if not bad else max(total, 1)

            # Apply + version bump + snapshot invalidation in one lock
            # hold, so readers never observe the mutation at the old
            # version (no bump when nothing applied).
            try:
                self.cache.apply_and_publish(user_id, apply_user)
            except Exception:
                self._nack_in_order(
                    [delivery for delivery, __ in slice_], settled
                )
                continue
            self.stats.ops_applied += ops_applied[0]
            if bad:
                # Straight to the dead-letter list: the delivery's side
                # effects may be partially in place, so a retry would
                # double-apply — at-most-once past the apply stage.
                self.stats.failed += len(bad)
                self._m_failed.inc(len(bad))
                for delivery in bad:
                    settled.add(id(delivery))
                    self.partition.reject(delivery)
            applied.extend(ok)
        return applied
