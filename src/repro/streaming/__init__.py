"""The streaming emotion-update subsystem: the live Fig. 4 loop.

The paper runs Initialization → Update → Advice one simulated touch at a
time; production emotion-aware systems run the same loop continuously as
signal arrives.  This subpackage turns the raw LifeLog stream into
incremental SUM updates the serving path observes immediately:

* :mod:`repro.streaming.bus` — in-process partitioned event bus with
  bounded queues and at-least-once delivery;
* :mod:`repro.streaming.mapper` — events → reward/punish/decay update
  ops (through :class:`~repro.lifelog.events.ActionCategory`);
* :mod:`repro.streaming.consumer` — sharded workers, hash-partitioned by
  user id so per-user updates stay ordered;
* :mod:`repro.streaming.cache` — versioned per-user SUM snapshots the
  :class:`~repro.serving.service.RecommendationService` serves from;
* :mod:`repro.streaming.writebehind` — batched persistence into the
  segmented :class:`~repro.lifelog.store.EventLog`;
* :mod:`repro.streaming.replay` — replay/load-generator driver;
* :mod:`repro.streaming.updater` — the assembled
  :class:`StreamingUpdater` facade.
"""

from repro.streaming.bus import (
    BusClosed,
    BusStats,
    Delivery,
    EventBus,
    PartitionQueue,
    PublishTimeout,
    Topic,
    partition_for,
)
from repro.streaming.cache import SumCache
from repro.streaming.consumer import DecayTick, ShardWorker, WorkerStats
from repro.streaming.mapper import EventUpdateMapper, MapperConfig
from repro.streaming.replay import ReplayDriver, ReplayStats, stream_events
from repro.streaming.updater import (
    LIFELOG_TOPIC,
    StreamingStats,
    StreamingUpdater,
)
from repro.streaming.writebehind import WriteBehindWriter

__all__ = [
    "BusClosed",
    "BusStats",
    "DecayTick",
    "Delivery",
    "EventBus",
    "EventUpdateMapper",
    "LIFELOG_TOPIC",
    "MapperConfig",
    "PartitionQueue",
    "PublishTimeout",
    "ReplayDriver",
    "ReplayStats",
    "ShardWorker",
    "StreamingStats",
    "StreamingUpdater",
    "SumCache",
    "Topic",
    "WorkerStats",
    "WriteBehindWriter",
    "partition_for",
    "stream_events",
]
