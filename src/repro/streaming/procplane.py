"""Cross-process shard transport: the multi-process streaming plane.

PR 5's in-process sharding parallelized the numpy half of every commit
but left the Python half GIL-serialized — end-to-end streamed replay
stayed at ~1x.  This module moves each shard's *entire* worker loop
(mapper → batch commit → version bump) into its own OS process:

.. code-block:: text

    parent (serving) process                 one worker process per shard
    ────────────────────────                 ───────────────────────────
    MultiProcUpdater.submit_many ──chunks──▶ mp.Queue ─▶ _worker_main
      │  route: partition_for(uid)               │  1-partition EventBus
      │  per-shard replay journal                │  EventUpdateMapper
      │                                          │  ShardWorker thread
      ├─ sync ─────────token──────────────▶      │  SumCache.apply_batch…
      │    ◀─ applied_seq · mapper state ──      │  (commit → shm pages,
      │       metrics snapshot · stats           │   control.mark_commit)
      ▼                                          ▼
    MultiProcSumStore.resync()  ◀─ layout ─ ShardControlBlock (seqlock)

The store's column pages live on shared memory
(:mod:`repro.core.shm_store`), so a worker's commits land directly on
the pages the parent serves from — nothing is copied back.  The parent
adopts structural changes (row growth, new interned columns) only at
``sync`` barriers, reading each shard's seqlock-published layout; serving
captures (:class:`~repro.streaming.cache.SumCache` snapshots) are
point-in-time row copies, so they stay bit-stable while workers commit.

Delivery contract: per-user FIFO (users are pinned to shards by the same
``partition_for`` hash the in-process plane uses; one command queue per
shard preserves chunk order), exactly-once on the recovery path (the
parent journals every chunk per shard; a checkpoint persists each
shard's ``applied_seq`` + mapper decay counters and trims the journal;
a crashed worker restarts from the last checkpoint generation and
replays only journal entries *after* its persisted ``applied_seq``).
Liveness: workers heartbeat through their control block; the parent
restarts dead workers via the same generation/manifest machinery
:class:`~repro.serving.replica.ReplicaRefresher` consumes, so served
generations stay monotonic across crashes.

Fork is the supported start method (``REPRO_MP_CONTEXT`` overrides for
experiments): workers inherit the store's Python-side registries by
copy-on-write at spawn time — only the numpy pages are shared — which is
exactly the ownership split the plane needs.  Consequence: spawn workers
*before* starting unrelated threads, and restart (not reuse) an updater
after ``stop()``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue as queue_mod
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.analysis.contracts import declare_lock
from repro.core.reward import ReinforcementPolicy
from repro.core.sharded_store import read_manifest
from repro.core.shm_store import MultiProcSumStore, copy_shard_into
from repro.core.sum_store import ColumnarSumStore
from repro.lifelog.events import Event
from repro.obs.export import merge_metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER
from repro.streaming.bus import EventBus, partition_for
from repro.streaming.cache import SumCache
from repro.streaming.consumer import DecayTick, ShardWorker
from repro.streaming.control import ControlPlaneConfig
from repro.streaming.mapper import EventUpdateMapper, MapperConfig
from repro.streaming.updater import LIFELOG_TOPIC, StreamingStats

# The command/response channel of one worker is single-owner by protocol
# (the parent's updater thread), but the lock makes that explicit and
# keeps concurrent Checkpointer cadences safe.  multiprocessing.Lock —
# the fork-safe primitive — not threading.Lock (see repro.analysis).
declare_lock("ShardWorkerProcess._io_lock")

#: per-shard checkpoint metadata written next to each generation
PROCPLANE_META = "procplane.json"

#: how long a worker may stay silent before ensure_alive calls it wedged
DEFAULT_SYNC_TIMEOUT = 60.0


class WorkerDied(RuntimeError):
    """A shard worker process exited (or wedged) outside the protocol."""


class _CommitStampingCache(SumCache):
    """A SumCache that stamps the shard control block on every commit.

    Runs inside the worker process: each committed batch bumps the
    shard's shared ``commit_version`` so the parent can observe write
    progress (and the delta-checkpoint path can tell a shard was
    touched) without any cross-process call.
    """

    def __init__(self, *args: Any, control: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._control = control

    def apply_batch_and_publish(self, *args: Any, **kwargs: Any) -> Any:
        result = super().apply_batch_and_publish(*args, **kwargs)
        self._control.mark_commit()
        return result

    def apply_and_publish(self, *args: Any, **kwargs: Any) -> Any:
        result = super().apply_and_publish(*args, **kwargs)
        self._control.mark_commit()
        return result


def _worker_main(
    store: MultiProcSumStore,
    shard_index: int,
    item_emotions: Mapping[str, tuple[str, ...]],
    policy: ReinforcementPolicy,
    mapper_config: MapperConfig | None,
    batch_max: int,
    queue_capacity: int,
    max_attempts: int,
    commands: Any,
    responses: Any,
    mapper_state: Mapping[int, int] | None,
    control_plane: ControlPlaneConfig | None = None,
) -> None:
    """One shard's worker process: the whole in-process loop, relocated.

    The child reuses the real streaming stack unchanged — a one-partition
    :class:`~repro.streaming.bus.EventBus` topic, the
    :class:`~repro.streaming.consumer.ShardWorker` thread, the
    :class:`~repro.streaming.cache.SumCache` commit path — against its
    own shard only.  Bit-equality with sequential replay therefore
    reduces to the per-shard FIFO the command queue already provides.
    """
    shard = store.shards[shard_index]
    control = store.controls[shard_index]
    telemetry = MetricsRegistry()
    bus = EventBus(telemetry=telemetry, tracer=NULL_TRACER)
    topic = bus.create_topic(
        LIFELOG_TOPIC,
        partitions=1,
        capacity=queue_capacity,
        max_attempts=max_attempts,
    )
    cache = _CommitStampingCache(shard, telemetry=telemetry, control=control)
    mapper = EventUpdateMapper(item_emotions, mapper_config)
    if mapper_state:
        # restored decay counters: replay after recovery ticks decay at
        # exactly the offsets the checkpointed run would have
        mapper._since_decay.update(
            {int(uid): int(n) for uid, n in mapper_state.items()}
        )
    (partition,) = tuple(topic)
    worker = ShardWorker(
        partition=partition,
        mapper=mapper,
        cache=cache,
        policy=policy,
        batch_max=batch_max,
        telemetry=telemetry,
        tracer=NULL_TRACER,
        control=control_plane,
    )
    worker.start()
    received_seq = 0

    def _sync_payload(token: Any, settled: bool) -> dict[str, Any]:
        return {
            "token": token,
            "settled": settled,
            "applied_seq": received_seq,
            "n_users": len(shard),
            "mapper_state": dict(mapper._since_decay),
            "metrics": telemetry.snapshot().as_dict(),
            "worker": {
                "processed": worker.stats.processed,
                "ops_applied": worker.stats.ops_applied,
                "batches": worker.stats.batches,
                "failed": worker.stats.failed,
                "log_drops": worker.stats.log_drops,
                "expired_dropped": worker.stats.expired_dropped,
            },
            "latencies": list(worker.stats.latencies),
            "topic": {
                "redelivered": topic.redelivered,
                "dead_letters": len(topic.dead_letters),
                "depth": topic.depth,
            },
        }

    try:
        while True:
            control.beat()
            try:
                message = commands.get(timeout=0.2)
            except queue_mod.Empty:
                continue
            kind = message[0]
            if kind == "events":
                __, seq, chunk = message
                topic.publish_many(
                    [(value, value.user_id) for value in chunk]
                )
                received_seq = int(seq)
            elif kind == "sync":
                settled = topic.join(timeout=30.0)
                store.publish_shard(shard_index, applied_seq=received_seq)
                responses.send(_sync_payload(message[1], settled))
            elif kind == "stop":
                settled = topic.join(timeout=30.0)
                store.publish_shard(shard_index, applied_seq=received_seq)
                worker.request_stop()
                bus.close()
                worker.join(timeout=5.0)
                responses.send(_sync_payload("__stop__", settled))
                return
    finally:
        responses.close()


class ShardWorkerProcess:
    """Parent-side handle for one shard's worker process.

    Owns the command queue (events / sync / stop), the response pipe and
    the liveness view.  ``sync`` is a full barrier for this shard: the
    worker drains its topic, publishes its layout + ``applied_seq`` to
    the control block, and answers with its mapper state, metrics
    snapshot and counters.
    """

    def __init__(
        self,
        store: MultiProcSumStore,
        shard_index: int,
        item_emotions: Mapping[str, tuple[str, ...]],
        policy: ReinforcementPolicy,
        mapper_config: MapperConfig | None = None,
        batch_max: int = 256,
        queue_capacity: int = 2_048,
        max_attempts: int = 3,
        mapper_state: Mapping[int, int] | None = None,
        ctx: Any = None,
        control: ControlPlaneConfig | None = None,
    ) -> None:
        if ctx is None:
            ctx = multiprocessing.get_context(
                os.environ.get("REPRO_MP_CONTEXT", "fork")
            )
        self.store = store
        self.shard_index = int(shard_index)
        self._io_lock = ctx.Lock()
        self.commands = ctx.Queue()
        self._resp_recv, resp_send = ctx.Pipe(duplex=False)
        self._token = 0
        self.process = ctx.Process(
            target=_worker_main,
            name=f"sum-shard-proc-{shard_index}",
            args=(
                store,
                shard_index,
                item_emotions,
                policy,
                mapper_config,
                batch_max,
                queue_capacity,
                max_attempts,
                self.commands,
                resp_send,
                dict(mapper_state) if mapper_state else None,
                control,
            ),
            daemon=True,
        )
        self._resp_send = resp_send

    def start(self) -> "ShardWorkerProcess":
        self.process.start()
        # drop the parent's copy of the send end so a dead worker reads
        # as EOF instead of an eternal poll
        self._resp_send.close()
        return self

    def is_alive(self) -> bool:
        return self.process.is_alive()

    @property
    def heartbeat(self) -> int:
        return self.store.controls[self.shard_index].heartbeat

    def send_events(self, seq: int, chunk: list) -> None:
        with self._io_lock:
            self.commands.put(("events", int(seq), list(chunk)))

    def _await_response(self, token: Any, timeout: float) -> dict[str, Any]:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerDied(
                    f"shard {self.shard_index} worker silent for {timeout}s"
                )
            try:
                if self._resp_recv.poll(min(remaining, 0.2)):
                    payload = self._resp_recv.recv()
                    if payload.get("token") == token:
                        return payload
                    continue  # stale response from a pre-crash sync
            except (EOFError, OSError) as exc:
                raise WorkerDied(
                    f"shard {self.shard_index} worker closed its pipe"
                ) from exc
            if not self.process.is_alive():
                raise WorkerDied(
                    f"shard {self.shard_index} worker exited with code "
                    f"{self.process.exitcode}"
                )

    def sync(self, timeout: float = DEFAULT_SYNC_TIMEOUT) -> dict[str, Any]:
        with self._io_lock:
            self._token += 1
            token = self._token
            self.commands.put(("sync", token))
            return self._await_response(token, timeout)

    def stop(self, timeout: float = DEFAULT_SYNC_TIMEOUT) -> dict[str, Any] | None:
        """Graceful stop: drain, publish, answer a final sync payload."""
        payload: dict[str, Any] | None = None
        with self._io_lock:
            if self.process.is_alive():
                self.commands.put(("stop",))
                try:
                    payload = self._await_response("__stop__", timeout)
                except WorkerDied:
                    payload = None
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - wedged worker
            self.process.terminate()
            self.process.join(timeout=5.0)
        self._drop_channel()
        return payload

    def kill(self) -> None:
        """SIGKILL the worker mid-flight (crash-recovery tests)."""
        self.process.kill()
        self.process.join(timeout=5.0)

    def _drop_channel(self) -> None:
        try:
            self.commands.close()
            self.commands.join_thread()
        except (OSError, ValueError):  # pragma: no cover
            pass
        try:
            self._resp_recv.close()
        except OSError:  # pragma: no cover
            pass


class MultiProcUpdater:
    """Drop-in streamed-update facade over per-shard worker processes.

    Mirrors the :class:`~repro.streaming.updater.StreamingUpdater`
    surface (``start``/``submit_many``/``tick``/``drain``/``stats``/
    ``latencies``/``stop``, context manager) so benches and services swap
    planes without code changes.  Differences worth knowing:

    * ``drain()`` is the visibility barrier: it syncs every worker and
      re-adopts published layouts, so new rows/columns appear to the
      parent *then* (committed values on existing rows are visible
      immediately — same physical pages).
    * ``checkpoint()`` persists store generations plus per-shard replay
      metadata; with a ``checkpoint_root`` the plane survives worker
      crashes exactly-once (see :meth:`recover`).
    * Write-behind event logging stays in the parent's hands (log events
      at ingest if needed); workers only own SUM mutation.
    """

    def __init__(
        self,
        store: MultiProcSumStore,
        item_emotions: Mapping[str, tuple[str, ...]],
        policy: ReinforcementPolicy | None = None,
        mapper_config: MapperConfig | None = None,
        checkpoint_root: str | Path | None = None,
        queue_capacity: int = 2_048,
        batch_max: int = 256,
        max_attempts: int = 3,
        chunk: int = 512,
        sync_timeout: float = DEFAULT_SYNC_TIMEOUT,
        cache: SumCache | None = None,
        control_plane: ControlPlaneConfig | None = None,
    ) -> None:
        if not isinstance(store, MultiProcSumStore):
            raise TypeError(
                "MultiProcUpdater needs a MultiProcSumStore (shared-memory "
                f"pages), got {type(store).__name__}"
            )
        self.store = store
        self.item_emotions = item_emotions
        self.policy = policy or ReinforcementPolicy()
        self.mapper_config = mapper_config
        self.checkpoint_root = (
            Path(checkpoint_root) if checkpoint_root is not None else None
        )
        self.queue_capacity = int(queue_capacity)
        self.batch_max = int(batch_max)
        self.max_attempts = int(max_attempts)
        self.chunk = int(chunk)
        self.sync_timeout = float(sync_timeout)
        self.cache = cache
        #: tail-latency control plane, inherited by every worker process
        #: (picklable frozen dataclass); None = legacy behavior
        self.control_plane = control_plane
        n = len(store.shards)
        self.workers: list[ShardWorkerProcess] = []
        self._pending: list[list[Any]] = [[] for __ in range(n)]
        self._journals: list[list[tuple[int, list[Any]]]] = [
            [] for __ in range(n)
        ]
        self._seqs = [0] * n
        self._last_sync: list[dict[str, Any] | None] = [None] * n
        self._submitted = 0
        self.recoveries = 0
        self._started = False
        self._stopped = False

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, shard_index: int, mapper_state=None) -> ShardWorkerProcess:
        worker = ShardWorkerProcess(
            self.store,
            shard_index,
            self.item_emotions,
            self.policy,
            mapper_config=self.mapper_config,
            batch_max=self.batch_max,
            queue_capacity=self.queue_capacity,
            max_attempts=self.max_attempts,
            mapper_state=mapper_state,
            control=self.control_plane,
        )
        return worker.start()

    def start(self) -> "MultiProcUpdater":
        """Baseline-checkpoint (when configured) and fork all workers."""
        if self._stopped:
            raise RuntimeError(
                "updater already stopped; create a new MultiProcUpdater"
            )
        if self._started:
            return self
        for i in range(len(self.store.shards)):
            self.store.publish_shard(i, applied_seq=self._seqs[i])
        if self.checkpoint_root is not None:
            # generation 0 of the recovery chain: without it, a worker
            # crash before the first explicit checkpoint would have no
            # durable state to replay from
            if read_manifest(self.checkpoint_root) is None:
                self._write_checkpoint()
        self.workers = [
            self._spawn(i) for i in range(len(self.store.shards))
        ]
        self._started = True
        return self

    def stop(self, drain: bool = True, timeout: float | None = 30.0) -> None:
        if self._stopped:
            return
        if drain and self._started:
            self.drain(timeout)
        for i, worker in enumerate(self.workers):
            payload = worker.stop(self.sync_timeout)
            if payload is not None:
                self._last_sync[i] = payload
        self.store.resync()
        if self.cache is not None:
            self.cache.invalidate()
        self._started = False
        self._stopped = True

    def __enter__(self) -> "MultiProcUpdater":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- ingestion -----------------------------------------------------------

    def _route(self, value: Any) -> None:
        shard = partition_for(int(value.user_id), len(self.store.shards))
        bucket = self._pending[shard]
        bucket.append(value)
        self._submitted += 1
        if len(bucket) >= self.chunk:
            self._flush_shard(shard)

    def _flush_shard(self, shard: int) -> None:
        bucket = self._pending[shard]
        if not bucket:
            return
        self._pending[shard] = []
        self._seqs[shard] += 1
        seq = self._seqs[shard]
        self._journals[shard].append((seq, bucket))
        self.workers[shard].send_events(seq, bucket)

    def submit(self, event: Event, timeout: float | None = None) -> int:
        """Buffer one event; returns its shard (flushes on chunk bound)."""
        if not self._started:
            raise RuntimeError("updater not started; call start() first")
        shard = partition_for(int(event.user_id), len(self.store.shards))
        self._route(event)
        return shard

    def submit_many(self, events: Iterable[Event], chunk: int | None = None) -> int:
        if not self._started:
            raise RuntimeError("updater not started; call start() first")
        count = 0
        for event in events:
            self._route(event)
            count += 1
        return count

    def tick(self, user_ids: Iterable[int]) -> int:
        """Schedule one decay tick per user (journaled like any event).

        With a control plane configured, each tick carries a value-level
        deadline (``tick_ttl`` from enqueue).  The deadline pickles with
        the tick into the journal, so a worker — live or replaying after
        recovery — makes the same drop decision for the same tick and
        exactly-once accounting holds: a tick is either applied once or
        dropped-and-counted once, never both."""
        if not self._started:
            raise RuntimeError("updater not started; call start() first")
        control = self.control_plane
        deadline = None
        if control is not None and control.tick_ttl is not None:
            deadline = time.monotonic() + control.tick_ttl
        count = 0
        for user_id in user_ids:
            self._route(DecayTick(int(user_id), deadline=deadline))
            count += 1
        return count

    # -- synchronization ------------------------------------------------------

    def _sync_shard(self, shard: int) -> dict[str, Any]:
        """Barrier one shard, restarting its worker once if it is dead."""
        try:
            payload = self.workers[shard].sync(self.sync_timeout)
        except WorkerDied:
            self.recover(shard)
            payload = self.workers[shard].sync(self.sync_timeout)
        self._last_sync[shard] = payload
        return payload

    def drain(self, timeout: float | None = 30.0) -> bool:
        """Flush, barrier every worker, adopt published layouts.

        After ``drain()`` the parent store reflects every submitted
        event: rows, columns and values — the cross-process equivalent
        of ``StreamingUpdater.drain``.
        """
        if not self._started:
            return True
        for shard in range(len(self.workers)):
            self._flush_shard(shard)
        settled = True
        for shard in range(len(self.workers)):
            payload = self._sync_shard(shard)
            settled = settled and bool(payload.get("settled"))
        self.store.resync()
        if self.cache is not None:
            self.cache.invalidate()
        return settled

    def ensure_alive(self) -> int:
        """Restart any dead worker from the last checkpoint; returns count."""
        restarted = 0
        for shard, worker in enumerate(self.workers):
            if not worker.is_alive():
                self.recover(shard)
                restarted += 1
        return restarted

    # -- durability -----------------------------------------------------------

    def _write_checkpoint(self) -> Path:
        """Persist the (quiescent) store + per-shard replay metadata."""
        assert self.checkpoint_root is not None
        path = self.store.save(self.checkpoint_root)
        shards_meta: dict[str, dict[str, Any]] = {}
        for i in range(len(self.store.shards)):
            payload = self._last_sync[i]
            applied = (
                int(payload["applied_seq"]) if payload else self._seqs[i]
            )
            state = dict(payload["mapper_state"]) if payload else {}
            shards_meta[str(i)] = {
                "applied_seq": applied,
                "mapper_state": {str(k): int(v) for k, v in state.items()},
            }
        meta_path = path / PROCPLANE_META
        meta_path.write_text(
            json.dumps({"shards": shards_meta}, sort_keys=True),
            encoding="utf-8",
        )
        for i in range(len(self.store.shards)):
            floor = shards_meta[str(i)]["applied_seq"]
            self._journals[i] = [
                entry for entry in self._journals[i] if entry[0] > floor
            ]
        return path

    def checkpoint(self) -> Path:
        """Quiesce all shards, persist a generation, trim replay journals."""
        if self.checkpoint_root is None:
            raise RuntimeError("MultiProcUpdater built without checkpoint_root")
        if self._started:
            self.drain()
        return self._write_checkpoint()

    def _checkpoint_meta(self) -> tuple[Path, dict[str, Any]]:
        assert self.checkpoint_root is not None
        manifest = read_manifest(self.checkpoint_root)
        if manifest is None:
            raise RuntimeError(
                f"no checkpoint manifest under {self.checkpoint_root}"
            )
        gen_dir = self.checkpoint_root / str(manifest["path"])
        meta_path = gen_dir / PROCPLANE_META
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        return gen_dir, meta

    def recover(self, shard: int) -> None:
        """Rebuild one shard from the last checkpoint and replay its tail.

        Exactly-once: the checkpoint's ``applied_seq`` floor tells which
        journaled chunks the persisted state already contains; the dead
        worker's partial post-checkpoint writes are discarded with its
        shm pages (a fresh arena-backed shard replaces them), and
        everything after the floor replays in order through a fresh
        worker seeded with the checkpointed mapper decay counters.
        """
        if self.checkpoint_root is None:
            raise WorkerDied(
                f"shard {shard} worker died and no checkpoint_root is "
                "configured; state cannot be recovered"
            )
        old = self.workers[shard]
        if old.process.is_alive():  # wedged, not dead: put it down first
            old.kill()
        old._drop_channel()
        gen_dir, meta = self._checkpoint_meta()
        shard_meta = meta["shards"][str(shard)]
        applied = int(shard_meta["applied_seq"])
        checkpointed = ColumnarSumStore.load(gen_dir / f"shard-{shard:02d}")
        fresh = self.store.fresh_shard(
            shard, capacity=max(1024, len(checkpointed))
        )
        copy_shard_into(checkpointed, fresh)
        self.store.replace_shard(shard, fresh)
        self.store.publish_shard(shard, applied_seq=applied)
        worker = self._spawn(
            shard,
            mapper_state={
                int(uid): int(n)
                for uid, n in shard_meta["mapper_state"].items()
            },
        )
        self.workers[shard] = worker
        for seq, chunk in self._journals[shard]:
            if seq > applied:
                worker.send_events(seq, chunk)
        self.recoveries += 1

    # -- observability ---------------------------------------------------------

    def latencies(self) -> list[float]:
        samples: list[float] = []
        for payload in self._last_sync:
            if payload:
                samples.extend(payload["latencies"])
        return samples

    def metrics_snapshots(self) -> list[dict[str, Any]]:
        """Per-worker ``MetricsRegistry`` snapshots from the last barrier."""
        return [
            dict(payload["metrics"])
            for payload in self._last_sync
            if payload
        ]

    def merged_metrics(self) -> dict[str, dict[str, Any]]:
        """Fleet-wide fold of every worker's snapshot (see
        :func:`repro.obs.export.merge_metrics`)."""
        return merge_metrics(self.metrics_snapshots())

    def stats(self) -> StreamingStats:
        payloads = [p for p in self._last_sync if p]

        def total(*keys: str) -> int:
            out = 0
            for payload in payloads:
                value: Any = payload
                for key in keys:
                    value = value[key]
                out += int(value)
            return out

        return StreamingStats(
            submitted=self._submitted,
            applied=total("worker", "processed"),
            ops_applied=total("worker", "ops_applied"),
            batches=total("worker", "batches"),
            redelivered=total("topic", "redelivered"),
            dead_lettered=total("topic", "dead_letters"),
            failed=total("worker", "failed"),
            log_dropped=total("worker", "log_drops"),
            queue_depth=total("topic", "depth"),
            flushed_events=0,
            flush_count=0,
            pending_writes=sum(len(bucket) for bucket in self._pending),
            expired_dropped=sum(
                int(p["worker"].get("expired_dropped", 0)) for p in payloads
            ),
        )
