"""In-process event bus: partitioned topics, bounded queues, at-least-once.

The smallest bus that has the three properties the live Fig. 4 loop
needs, shaped like the log-based brokers production emotion pipelines sit
on:

* **partitioned topics** — a topic is a fixed array of FIFO partition
  queues; ``publish`` routes by a stable hash of the message key, so all
  events of one user land on one partition and stay ordered;
* **bounded queues** — each partition holds at most ``capacity``
  in-flight messages; publishers block (backpressure) instead of letting
  a slow consumer balloon memory;
* **at-least-once delivery** — a delivery stays owned by the partition
  until the consumer ``ack``s it; ``nack`` requeues it at the *front*
  (order preserved) with an incremented attempt counter, and messages
  that exhaust ``max_attempts`` land in the partition's dead-letter list
  instead of poisoning the stream;
* **two service classes with priority shedding** — publishes tagged
  ``background=True`` (decay / maintenance) never stall a full
  partition: a full-queue background publish is *shed* (dropped and
  exact-counted) instead of blocking, a full-queue user-class publish
  first evicts the oldest queued background message before applying
  backpressure, and background work carrying an expired ``deadline`` is
  shed at dequeue.  User-facing work is never shed.  Both classes share
  one FIFO, so the relative order of surviving messages is exactly the
  publish order — when nothing is shed, the stream is bit-identical to a
  single-class bus.

Everything is plain :mod:`threading`; there is no cross-process story
here, only a faithful in-process model of the semantics.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator

from repro.analysis.contracts import (
    declare_lock,
    declare_queue_classes,
    guarded_by,
    make_lock,
    requires_lock,
)
from repro.obs.metrics import (
    MetricsRegistry,
    NullRegistry,
    labelled,
    resolve_registry,
)
from repro.obs.tracing import NullTracer, Tracer, next_trace_id, resolve_tracer


class BusClosed(RuntimeError):
    """Raised when publishing to or reading from a closed bus."""


class PublishTimeout(RuntimeError):
    """Raised when backpressure held a publish longer than its timeout."""


def partition_for(key: Any, n_partitions: int) -> int:
    """Stable hash-partitioning of a message key.

    Integer keys (user ids) partition by value; anything else goes
    through CRC-32 of its ``repr``.  Deterministic across processes and
    runs — required so "which shard owned user *u*" is reproducible.
    """
    if n_partitions < 1:
        raise ValueError(f"n_partitions must be >= 1, got {n_partitions}")
    if isinstance(key, bool) or not isinstance(key, int):
        return zlib.crc32(repr(key).encode("utf-8")) % n_partitions
    return int(key) % n_partitions


@dataclass
class Delivery:
    """One message handed to a consumer, awaiting ack or nack."""

    value: Any
    key: Any
    partition: int
    offset: int
    attempt: int = 1
    published_at: float = 0.0  # time.perf_counter() at first publish
    #: service class: background (decay / maintenance) work is sheddable
    #: under pressure; user-facing work never is
    background: bool = False
    #: ``time.monotonic()`` deadline after which a *background* delivery
    #: is stale enough to shed at dequeue (``None`` = never expires)
    deadline: float | None = None
    #: consumer scratch: memoized mapping result, survives redelivery so
    #: stateful mappers are consulted exactly once per message
    mapped: Any = None
    #: telemetry: id minted at event ingest (``None`` when tracing is off);
    #: survives redelivery, so every span of one event shares one trace
    trace_id: int | None = None


class TopicInstruments:
    """Pre-resolved telemetry instruments shared by a topic's partitions.

    Resolved once at topic creation so the publish/ack hot paths never
    consult the registry.  All instrument locks are leaves of the lock
    graph: partition queues only touch these *after* releasing their own
    lock, and the null variants (the default) take no locks at all.
    """

    __slots__ = (
        "tracer",
        "published",
        "acked",
        "redelivered",
        "dead_letters",
        "backpressure_stalls",
        "backpressure_seconds",
        "shed_capacity",
        "shed_expired",
    )

    def __init__(
        self,
        telemetry: MetricsRegistry | NullRegistry | None = None,
        tracer: Tracer | NullTracer | None = None,
        topic: str = "",
    ) -> None:
        registry = resolve_registry(telemetry)
        self.tracer = resolve_tracer(tracer)
        labels = {"topic": topic} if topic else {}
        self.published = registry.counter(labelled("bus.published", **labels))
        self.acked = registry.counter(labelled("bus.acked", **labels))
        self.redelivered = registry.counter(
            labelled("bus.redelivered", **labels)
        )
        self.dead_letters = registry.counter(
            labelled("bus.dead_letters", **labels)
        )
        self.backpressure_stalls = registry.counter(
            labelled("bus.backpressure_stalls", **labels)
        )
        self.backpressure_seconds = registry.histogram(
            labelled("bus.backpressure_wait_seconds", **labels)
        )
        # shedding only ever touches the background class — user-facing
        # work blocks (backpressure) instead, so a nonzero user-class
        # shed count is structurally impossible, not merely unexpected
        self.shed_capacity = registry.counter(
            labelled(
                "bus.shed", op_class="background", reason="capacity", **labels
            )
        )
        self.shed_expired = registry.counter(
            labelled(
                "bus.shed", op_class="background", reason="expired", **labels
            )
        )


#: shared by every uninstrumented queue — all methods are no-ops
NULL_TOPIC_INSTRUMENTS = TopicInstruments()


declare_lock(
    "PartitionQueue._lock",
    aliases=(
        "PartitionQueue._not_full",
        "PartitionQueue._not_empty",
        "PartitionQueue._settled",
    ),
)
declare_lock("EventBus._lock")
declare_queue_classes(
    "PartitionQueue",
    classes=("user", "background"),
    shed_counters=("shed_user", "shed_background", "shed_expired"),
)


@guarded_by(
    "_lock",
    "_queue",
    "_next_offset",
    "_in_flight",
    "_closed",
    "published",
    "acked",
    "redelivered",
    "dead_letters",
    "shed_user",
    "shed_background",
    "shed_expired",
    # the three condition variables wrap the same underlying lock, so
    # entering any of them counts as holding it
    aliases=("_not_full", "_not_empty", "_settled"),
)
class PartitionQueue:
    """One bounded FIFO partition with ack/nack redelivery."""

    def __init__(
        self,
        partition: int,
        capacity: int,
        max_attempts: int,
        instruments: TopicInstruments | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.partition = partition
        self.capacity = capacity
        self.max_attempts = max_attempts
        self._instruments = instruments or NULL_TOPIC_INSTRUMENTS
        self._queue: deque[Delivery] = deque()
        # Witness-wrapped under REPRO_LOCK_WITNESS: ContractLock forwards
        # _release_save/_acquire_restore/_is_owned, so the condition
        # variables' wait/notify keep the witness stack accurate.
        self._lock = make_lock("PartitionQueue._lock")
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._settled = threading.Condition(self._lock)
        self._closed = False
        self._next_offset = 0
        self._in_flight = 0
        # -- counters ------------------------------------------------------
        self.published = 0
        self.acked = 0
        self.redelivered = 0
        self.dead_letters: list[Delivery] = []
        # per-class shed accounting.  shed_user exists so fleet views and
        # the CI zero-unexpected-shed gate can assert the invariant
        # explicitly — nothing in this class ever increments it.
        self.shed_user = 0
        self.shed_background = 0
        self.shed_expired = 0

    # -- producer side -----------------------------------------------------

    @requires_lock("_lock")
    def _shed_oldest_background_locked(self) -> bool:
        """Evict the oldest queued background delivery to make room.

        Called by a user-class publish that found the partition full:
        user-facing work sheds background work before it ever blocks.
        Returns ``True`` if a message was evicted.  O(n) scan — only ever
        runs when the partition is already saturated.
        """
        queue = self._queue
        for i, delivery in enumerate(queue):
            if delivery.background:
                del queue[i]
                self.shed_background += 1
                return True
        return False

    def put(
        self,
        value: Any,
        key: Any,
        timeout: float | None = None,
        *,
        background: bool = False,
        deadline: float | None = None,
    ) -> int:
        """Enqueue one message; blocks while the partition is full.

        ``background=True`` marks the message sheddable: instead of
        blocking on a full partition it is dropped and counted, and a
        ``deadline`` (``time.monotonic()`` timebase) lets the consumer
        side shed it unprocessed once expired.  Returns the assigned
        offset, or ``-1`` if the message was shed at publish.
        """
        pub_deadline = None if timeout is None else time.monotonic() + timeout
        inst = self._instruments
        # the trace is born at ingest, before the event ever queues
        trace_id = next_trace_id() if inst.tracer.enabled else None
        stalled = 0.0
        shed = 0
        offset = -1
        with self._not_full:
            while len(self._queue) >= self.capacity:
                if self._closed:
                    raise BusClosed("partition closed during publish")
                if background:
                    # background never blocks a full partition: drop-new
                    self.shed_background += 1
                    shed = 1
                    break
                if self._shed_oldest_background_locked():
                    shed += 1
                    continue
                remaining = None
                if pub_deadline is not None:
                    remaining = pub_deadline - time.monotonic()
                    if remaining <= 0:
                        raise PublishTimeout(
                            f"partition {self.partition} full "
                            f"({self.capacity} messages) for {timeout}s"
                        )
                wait_from = time.monotonic()
                self._not_full.wait(remaining)
                stalled += time.monotonic() - wait_from
            else:
                if self._closed:
                    raise BusClosed("partition closed during publish")
                offset = self._next_offset
                self._next_offset += 1
                self.published += 1
                self._queue.append(Delivery(
                    value=value, key=key, partition=self.partition,
                    offset=offset, attempt=1, published_at=time.perf_counter(),
                    trace_id=trace_id, background=background,
                    deadline=deadline,
                ))
                self._not_empty.notify()
        # instrument locks are leaves: only touched after releasing ours
        if offset >= 0:
            inst.published.inc()
        if shed:
            inst.shed_capacity.inc(shed)
        if stalled > 0.0:
            inst.backpressure_stalls.inc()
            inst.backpressure_seconds.observe(stalled)
        return offset

    def put_many(
        self,
        items: list[tuple[Any, Any]],
        timeout: float | None = None,
        *,
        background: bool = False,
        deadline: float | None = None,
    ) -> int:
        """Enqueue ``(value, key)`` pairs with one lock hold per free slot
        window — the high-rate publish path.  Blocks (backpressure) while
        the partition is full; returns how many messages were placed.

        With ``background=True`` the call never blocks: whatever does not
        fit is shed (dropped and counted) instead, and ``deadline``
        stamps every placed message for expiry-shedding at dequeue."""
        pub_deadline = None if timeout is None else time.monotonic() + timeout
        inst = self._instruments
        mint = inst.tracer.enabled
        placed = 0
        shed = 0
        stalled = 0.0
        stalls = 0
        with self._not_full:
            while placed < len(items):
                while len(self._queue) >= self.capacity:
                    if self._closed:
                        raise BusClosed("partition closed during publish")
                    if background:
                        break
                    if self._shed_oldest_background_locked():
                        shed += 1
                        continue
                    remaining = None
                    if pub_deadline is not None:
                        remaining = pub_deadline - time.monotonic()
                        if remaining <= 0:
                            raise PublishTimeout(
                                f"partition {self.partition} full "
                                f"({self.capacity} messages) for {timeout}s"
                            )
                    wait_from = time.monotonic()
                    self._not_full.wait(remaining)
                    stalled += time.monotonic() - wait_from
                    stalls += 1
                if background and len(self._queue) >= self.capacity:
                    # drop-new: the rest of the batch is shed, not queued
                    dropped = len(items) - placed
                    self.shed_background += dropped
                    shed += dropped
                    break
                if self._closed:
                    raise BusClosed("partition closed during publish")
                room = self.capacity - len(self._queue)
                now = time.perf_counter()
                for value, key in items[placed:placed + room]:
                    self._queue.append(Delivery(
                        value=value, key=key, partition=self.partition,
                        offset=self._next_offset, attempt=1, published_at=now,
                        trace_id=next_trace_id() if mint else None,
                        background=background, deadline=deadline,
                    ))
                    self._next_offset += 1
                take = min(room, len(items) - placed)
                placed += take
                self.published += take
                self._not_empty.notify()
        inst.published.inc(placed)
        if shed:
            inst.shed_capacity.inc(shed)
        if stalls:
            inst.backpressure_stalls.inc(stalls)
            inst.backpressure_seconds.observe(stalled)
        return placed

    # -- consumer side -----------------------------------------------------

    def get(self, timeout: float | None = None) -> Delivery | None:
        """Take the next delivery, or ``None`` on timeout / closed+empty."""
        batch = self.get_batch(1, timeout)
        return batch[0] if batch else None

    def get_batch(
        self, max_items: int, timeout: float | None = None
    ) -> list[Delivery]:
        """Take up to ``max_items`` deliveries (waits for the first only).

        Background deliveries whose ``deadline`` has passed are shed
        here — dropped unprocessed and exact-counted, never entering the
        in-flight set — so a backlogged consumer spends its time on work
        that is still worth doing."""
        if max_items < 1:
            raise ValueError(f"max_items must be >= 1, got {max_items}")
        wait_deadline = None if timeout is None else time.monotonic() + timeout
        shed = 0
        batch: list[Delivery] = []
        with self._not_empty:
            while True:
                now = None
                while self._queue and len(batch) < max_items:
                    head = self._queue[0]
                    if head.background and head.deadline is not None:
                        if now is None:
                            now = time.monotonic()
                        if now >= head.deadline:
                            self._queue.popleft()
                            self.shed_expired += 1
                            shed += 1
                            continue
                    batch.append(self._queue.popleft())
                if batch or self._closed:
                    break
                remaining = None
                if wait_deadline is not None:
                    remaining = wait_deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._not_empty.wait(remaining)
            self._in_flight += len(batch)
            freed = len(batch) + shed
            if freed:
                self._not_full.notify(freed)
        if shed:
            self._instruments.shed_expired.inc(shed)
        return batch

    def ack(self, delivery: Delivery) -> None:
        """Mark one delivery done; it will never be redelivered."""
        with self._lock:
            self._in_flight -= 1
            self.acked += 1
            self._settled.notify_all()
        self._instruments.acked.inc()

    def ack_batch(self, deliveries: list[Delivery]) -> None:
        """Ack a whole applied batch with one lock hold."""
        with self._lock:
            self._in_flight -= len(deliveries)
            self.acked += len(deliveries)
            self._settled.notify_all()
        self._instruments.acked.inc(len(deliveries))

    def reject(self, delivery: Delivery) -> None:
        """Dead-letter one delivery immediately, without redelivery.

        For failures observed *after* side effects may have happened
        (retrying would double-apply); infra failures before any side
        effect use :meth:`nack` and get the at-least-once retries.
        """
        with self._lock:
            self._in_flight -= 1
            self.dead_letters.append(delivery)
            self._settled.notify_all()
        self._instruments.dead_letters.inc()

    def nack(self, delivery: Delivery) -> bool:
        """Return one delivery for redelivery (front of the queue).

        Returns ``True`` if the message was requeued, ``False`` if it
        exhausted ``max_attempts`` and went to the dead-letter list.
        """
        with self._lock:
            self._in_flight -= 1
            if delivery.attempt >= self.max_attempts:
                self.dead_letters.append(delivery)
                self._settled.notify_all()
                requeued = False
            else:
                delivery.attempt += 1
                self.redelivered += 1
                self._queue.appendleft(delivery)
                self._not_empty.notify()
                requeued = True
        if requeued:
            self._instruments.redelivered.inc()
        else:
            self._instruments.dead_letters.inc()
        return requeued

    # -- lifecycle ---------------------------------------------------------

    @property
    def depth(self) -> int:
        """Messages currently queued (excluding in-flight)."""
        with self._lock:
            return len(self._queue)

    def join(self, timeout: float | None = None) -> bool:
        """Block until every published message is acked or dead-lettered."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._settled:
            while self._queue or self._in_flight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._settled.wait(remaining if remaining is not None else 0.1)
            return True

    def close(self) -> None:
        """Stop accepting publishes; wakes all waiters."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()
            self._settled.notify_all()


class Topic:
    """A named array of partition queues."""

    def __init__(
        self,
        name: str,
        partitions: int = 4,
        capacity: int = 2_048,
        max_attempts: int = 3,
        telemetry: MetricsRegistry | NullRegistry | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> None:
        if not name:
            raise ValueError("topic needs a name")
        self.name = name
        registry = resolve_registry(telemetry)
        self.instruments = TopicInstruments(registry, tracer, name)
        self.partitions = [
            PartitionQueue(i, capacity, max_attempts, self.instruments)
            for i in range(partitions)
        ]
        # callback gauges: evaluated only at snapshot time, lock-free from
        # the gauge's side (each probe takes the partition lock briefly)
        registry.gauge(labelled("bus.depth", topic=name), fn=lambda: self.depth)
        for queue in self.partitions:
            registry.gauge(
                labelled(
                    "bus.partition_depth",
                    topic=name,
                    partition=str(queue.partition),
                ),
                fn=lambda q=queue: q.depth,
            )

    def __len__(self) -> int:
        return len(self.partitions)

    def __iter__(self) -> Iterator[PartitionQueue]:
        return iter(self.partitions)

    def publish(
        self,
        value: Any,
        key: Any,
        timeout: float | None = None,
        *,
        background: bool = False,
        deadline: float | None = None,
    ) -> int:
        """Route by key hash; returns the partition index."""
        index = partition_for(key, len(self.partitions))
        self.partitions[index].put(
            value, key, timeout, background=background, deadline=deadline
        )
        return index

    def publish_many(
        self,
        pairs: list[tuple[Any, Any]],
        timeout: float | None = None,
        *,
        background: bool = False,
        deadline: float | None = None,
    ) -> int:
        """Publish many ``(value, key)`` pairs, grouped per partition.

        Per-key order is preserved (one key always lands on one
        partition, and pairs append in input order); returns the number
        published."""
        n_partitions = len(self.partitions)
        grouped: dict[int, list[tuple[Any, Any]]] = {}
        for value, key in pairs:
            grouped.setdefault(
                partition_for(key, n_partitions), []
            ).append((value, key))
        published = 0
        for index, items in grouped.items():
            published += self.partitions[index].put_many(
                items, timeout, background=background, deadline=deadline
            )
        return published

    def join(self, timeout: float | None = None) -> bool:
        """Wait until all partitions settle (acked or dead-lettered)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for queue in self.partitions:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            if not queue.join(remaining):
                return False
        return True

    def close(self) -> None:
        for queue in self.partitions:
            queue.close()

    # -- counters ----------------------------------------------------------

    @property
    def published(self) -> int:
        return sum(q.published for q in self.partitions)

    @property
    def acked(self) -> int:
        return sum(q.acked for q in self.partitions)

    @property
    def redelivered(self) -> int:
        return sum(q.redelivered for q in self.partitions)

    @property
    def dead_letters(self) -> list[Delivery]:
        dead: list[Delivery] = []
        for queue in self.partitions:
            dead.extend(queue.dead_letters)
        return dead

    @property
    def depth(self) -> int:
        return sum(q.depth for q in self.partitions)

    @property
    def shed_user(self) -> int:
        return sum(q.shed_user for q in self.partitions)

    @property
    def shed_background(self) -> int:
        return sum(q.shed_background for q in self.partitions)

    @property
    def shed_expired(self) -> int:
        return sum(q.shed_expired for q in self.partitions)


@dataclass
class BusStats:
    """Aggregate counters across all topics of one bus."""

    topics: int
    published: int
    acked: int
    redelivered: int
    dead_lettered: int
    depth: int
    #: user-class messages shed — structurally always 0; reported so the
    #: per-class invariant is visible, not assumed
    shed_user: int = 0
    #: background messages shed at publish (full partition)
    shed_background: int = 0
    #: background messages shed at dequeue (deadline expired)
    shed_expired: int = 0


@guarded_by("_lock", "_topics", "_closed")
class EventBus:
    """Named topics over partitioned bounded queues."""

    def __init__(
        self,
        telemetry: MetricsRegistry | NullRegistry | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> None:
        self._topics: dict[str, Topic] = {}
        self._lock = threading.Lock()
        self._closed = False
        self.telemetry = resolve_registry(telemetry)
        self.tracer = resolve_tracer(tracer)
        self.telemetry.gauge(
            "bus.dead_lettered", fn=lambda: float(self.dead_lettered)
        )
        self.telemetry.gauge(
            "bus.redeliveries", fn=lambda: float(self.redelivered)
        )

    def create_topic(
        self,
        name: str,
        partitions: int = 4,
        capacity: int = 2_048,
        max_attempts: int = 3,
    ) -> Topic:
        """Declare a topic; re-declaring an existing name is an error."""
        with self._lock:
            if self._closed:
                raise BusClosed("bus is closed")
            if name in self._topics:
                raise ValueError(f"topic {name!r} already exists")
            topic = Topic(
                name, partitions, capacity, max_attempts,
                telemetry=self.telemetry, tracer=self.tracer,
            )
            self._topics[name] = topic
            return topic

    def topic(self, name: str) -> Topic:
        try:
            return self._topics[name]
        except KeyError:
            raise KeyError(
                f"unknown topic {name!r}; have {sorted(self._topics)}"
            ) from None

    def publish(
        self, topic: str, value: Any, key: Any, timeout: float | None = None
    ) -> int:
        """Publish one message to ``topic``; returns the partition index."""
        if self._closed:
            raise BusClosed("bus is closed")
        return self.topic(topic).publish(value, key, timeout)

    # -- aggregate counters (public observability surface) ------------------

    @property
    def published(self) -> int:
        """Messages published across every topic of this bus."""
        return sum(t.published for t in self._topics.values())

    @property
    def acked(self) -> int:
        """Messages settled successfully across every topic."""
        return sum(t.acked for t in self._topics.values())

    @property
    def redelivered(self) -> int:
        """At-least-once retries: nacked messages requeued for redelivery."""
        return sum(t.redelivered for t in self._topics.values())

    @property
    def dead_lettered(self) -> int:
        """Messages parked in dead-letter lists after exhausting retries."""
        return sum(len(t.dead_letters) for t in self._topics.values())

    @property
    def depth(self) -> int:
        """Messages currently queued (not in flight) across all topics."""
        return sum(t.depth for t in self._topics.values())

    @property
    def shed_background(self) -> int:
        """Background messages shed at publish across every topic."""
        return sum(t.shed_background for t in self._topics.values())

    @property
    def shed_expired(self) -> int:
        """Background messages shed at dequeue (expired) across topics."""
        return sum(t.shed_expired for t in self._topics.values())

    def stats(self) -> BusStats:
        topics = list(self._topics.values())
        return BusStats(
            topics=len(topics),
            published=sum(t.published for t in topics),
            acked=sum(t.acked for t in topics),
            redelivered=sum(t.redelivered for t in topics),
            dead_lettered=sum(len(t.dead_letters) for t in topics),
            depth=sum(t.depth for t in topics),
            shed_user=sum(t.shed_user for t in topics),
            shed_background=sum(t.shed_background for t in topics),
            shed_expired=sum(t.shed_expired for t in topics),
        )

    def close(self) -> None:
        with self._lock:
            self._closed = True
            for topic in self._topics.values():
                topic.close()
