"""Versioned per-user SUM snapshots for the serving path.

The serving layer must never observe a SUM mid-batch: a consumer worker
applying five reward ops should be invisible until the batch commits.
:class:`SumCache` provides that isolation with the cheapest possible
machinery:

* writers apply a whole batch slice and commit it in one per-user lock
  hold (:meth:`SumCache.apply_and_publish`) — dropping the cached
  snapshot and bumping the user's monotonic version counter atomically
  with the mutation (the two-step :meth:`mutate` + :meth:`publish` pair
  also exists, for callers that control their own read timing);
* readers (:class:`~repro.serving.service.RecommendationService` via the
  repository duck-type ``get``/``user_ids``) receive an immutable-by-
  convention snapshot copy, rebuilt lazily on the first read after a
  publish.

Version counters make staleness *observable*: a snapshot at
``version(user) == 3`` reflects every batch published up to 3 and
nothing later, and tests can assert "exactly one bump per applied batch"
instead of sleeping and hoping.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

from repro.core.reward import ReinforcementPolicy
from repro.core.sum_model import SmartUserModel, SumRepository
from repro.core.updates import SumUpdateOp, apply_ops_batch


class SumCache:
    """Snapshot cache + version counters over a :class:`SumRepository`.

    Duck-types the repository read API (``get``, ``user_ids``,
    ``__contains__``, ``__len__``) so it can be handed to
    :class:`~repro.serving.service.RecommendationService` as its ``sums``.
    """

    def __init__(self, repository: SumRepository) -> None:
        self.repository = repository
        self._snapshots: dict[int, SmartUserModel] = {}
        self._versions: dict[int, int] = {}
        self._global_version = 0
        self._registry_lock = threading.Lock()
        self._user_locks: dict[int, threading.Lock] = {}

    # -- locking -----------------------------------------------------------

    def _lock_for(self, user_id: int) -> threading.Lock:
        lock = self._user_locks.get(user_id)  # GIL-atomic fast path
        if lock is None:
            with self._registry_lock:
                lock = self._user_locks.setdefault(user_id, threading.Lock())
        return lock

    # -- write path --------------------------------------------------------

    def write_lock(self, user_id: int) -> threading.Lock:
        """The lock guarding one user's live model.

        Direct repository writers (the offline campaign loop) hold it
        across their mutation so snapshot builds and streamed applies
        serialize with them; pair with :meth:`invalidate` afterwards.
        """
        return self._lock_for(int(user_id))

    def mutate(self, user_id: int, fn) -> object:
        """Run ``fn(model)`` on the live model under the user's lock.

        Two-step write path: pair with :meth:`publish`.  Between the two
        calls a reader whose snapshot was just invalidated can observe
        the pending mutation early (it rebuilds from the live model), so
        the consumer workers use :meth:`apply_and_publish`, which closes
        that window by committing inside the same lock hold.
        """
        user_id = int(user_id)
        with self._lock_for(user_id):
            return fn(self.repository.get_or_create(user_id))

    def apply_and_publish(self, user_id: int, fn) -> tuple[int, int]:
        """Run ``fn(model)`` and commit, all under one user-lock hold.

        The worker write path: readers blocked on the lock (or reading
        the old snapshot) see either the state before ``fn`` at the old
        version or the state after it at the new version — never the
        mutation at the old version.  ``fn`` returns how many ops it
        applied; a zero return means the state did not change, so
        nothing is invalidated and the version stays put.  Returns
        ``(applied ops, version)``.  Bump the batch-level
        :attr:`global_version` separately with :meth:`mark_batch`.
        """
        user_id = int(user_id)
        with self._lock_for(user_id):
            applied = int(fn(self.repository.get_or_create(user_id)))
            version = self._versions.get(user_id, 0)
            if applied:
                self._snapshots.pop(user_id, None)
                version += 1
                self._versions[user_id] = version
        return applied, version

    def apply_batch_and_publish(
        self,
        items: Sequence[tuple[int, tuple[SumUpdateOp, ...]]],
        policy: ReinforcementPolicy,
    ) -> tuple[list[int], dict[int, int]]:
        """Apply a whole batch's op slices and commit, all users at once.

        The columnar commit path: every touched user's lock is acquired
        (in sorted-id order — other writers take one lock at a time, so
        no cycle is possible), the batch is applied through
        :func:`~repro.core.updates.apply_ops_batch` vectorized against
        row ranges, and each touched user's snapshot is dropped and
        version bumped before the locks release.  Readers observe
        exactly the :meth:`apply_and_publish` contract: old state at the
        old version or batch-applied state at the new one, one bump per
        touched user.  Returns ``(per-item applied counts, versions)``.

        Requires a columnar repository (``batch_apply_ops``) and raises
        ``TypeError`` otherwise: the columnar backend validates every op
        *before* any mutation, so a raising call leaves both state and
        versions untouched and callers may safely fall back to the
        per-user scalar path — a guarantee an object-backed sequential
        apply (which can fail mid-sequence, half-applied and
        uninvalidated) cannot make.
        """
        if not callable(getattr(self.repository, "batch_apply_ops", None)):
            raise TypeError(
                "apply_batch_and_publish needs a columnar repository "
                "(batch_apply_ops); use apply_and_publish per user"
            )
        items = [(int(user_id), tuple(ops)) for user_id, ops in items]
        ids = sorted({user_id for user_id, __ in items})
        locks = [self._lock_for(user_id) for user_id in ids]
        for lock in locks:
            lock.acquire()
        try:
            counts = apply_ops_batch(self.repository, items, policy)
            applied_by_user: dict[int, int] = {}
            for (user_id, __), count in zip(items, counts):
                applied_by_user[user_id] = applied_by_user.get(user_id, 0) + count
            versions: dict[int, int] = {}
            for user_id in ids:
                version = self._versions.get(user_id, 0)
                if applied_by_user.get(user_id, 0):
                    self._snapshots.pop(user_id, None)
                    version += 1
                    self._versions[user_id] = version
                versions[user_id] = version
        finally:
            for lock in reversed(locks):
                lock.release()
        return counts, versions

    def mark_batch(self) -> int:
        """Count one applied batch; returns the new global version."""
        with self._registry_lock:
            self._global_version += 1
            return self._global_version

    def publish(self, user_id: int) -> int:
        """Commit one user's pending mutations; returns the new version."""
        user_id = int(user_id)
        with self._lock_for(user_id):
            self._snapshots.pop(user_id, None)
            version = self._versions.get(user_id, 0) + 1
            self._versions[user_id] = version
        with self._registry_lock:
            self._global_version += 1
        return version

    def invalidate(self, user_ids: Iterable[int] | None = None) -> dict[int, int]:
        """Invalidate users written *outside* the streaming path.

        For writers that mutate the underlying repository directly —
        the offline campaign loop rewarding touched users, a bulk
        import — rather than through :meth:`apply_and_publish`.  Drops
        the snapshots and bumps each user's version (``None`` means
        every user the repository knows); the whole call counts as one
        batch on :attr:`global_version`.
        """
        ids = (
            self.repository.user_ids()
            if user_ids is None
            else sorted({int(uid) for uid in user_ids})
        )
        versions: dict[int, int] = {}
        for user_id in ids:
            with self._lock_for(user_id):
                self._snapshots.pop(user_id, None)
                versions[user_id] = self._versions.get(user_id, 0) + 1
                self._versions[user_id] = versions[user_id]
        if versions:
            with self._registry_lock:
                self._global_version += 1
        return versions

    # -- read path (repository duck-type) ----------------------------------

    def get(self, user_id: int) -> SmartUserModel:
        """Snapshot of one user's SUM as of their last published version."""
        user_id = int(user_id)
        snapshot = self._snapshots.get(user_id)
        if snapshot is not None:
            return snapshot
        with self._lock_for(user_id):
            snapshot = self._snapshots.get(user_id)
            if snapshot is None:
                live = self.repository.get(user_id)
                snapshot = SmartUserModel.from_dict(live.to_dict())
                self._snapshots[user_id] = snapshot
            return snapshot

    def get_or_create(self, user_id: int) -> SmartUserModel:
        """Repository parity; creating flows through to the live store."""
        self.repository.get_or_create(int(user_id))
        return self.get(user_id)

    def user_ids(self) -> list[int]:
        return self.repository.user_ids()

    def __contains__(self, user_id: object) -> bool:
        return user_id in self.repository

    def __len__(self) -> int:
        return len(self.repository)

    # -- observability -----------------------------------------------------

    def version(self, user_id: int) -> int:
        """Monotonic per-user version (0 before the first publish)."""
        return self._versions.get(int(user_id), 0)

    @property
    def global_version(self) -> int:
        """Total number of published batches across all users."""
        return self._global_version

    @property
    def cached_users(self) -> int:
        """How many snapshots are currently materialized."""
        return len(self._snapshots)
