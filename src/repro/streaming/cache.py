"""Versioned per-user SUM snapshots for the serving path.

The serving layer must never observe a SUM mid-batch: a consumer worker
applying five reward ops should be invisible until the batch commits.
:class:`SumCache` provides that isolation with the cheapest possible
machinery:

* writers apply a whole batch slice and commit it in one per-user lock
  hold (:meth:`SumCache.apply_and_publish` / batch-wide
  :meth:`SumCache.apply_batch_and_publish`) — dropping the cached
  snapshot and bumping the user's monotonic version counter atomically
  with the mutation (the two-step :meth:`mutate` + :meth:`publish` pair
  also exists, for callers that control their own read timing);
* readers receive **genuinely immutable** snapshots, rebuilt lazily on
  the first read after a publish.  On a columnar repository the snapshot
  is a copy of the user's row slices (no ``to_dict()``/``from_dict()``
  object rebuild) and batch readers get whole column slices through
  :meth:`SumCache.batch`; on an object repository it is a frozen deep
  copy.  Either way a mutation attempt on a snapshot *raises* — one
  misbehaving reader can no longer poison every other reader at that
  version.

Version counters make staleness *observable*: a snapshot at
``version(user) == 3`` reflects every batch published up to 3 and
nothing later, and tests can assert "exactly one bump per applied batch"
instead of sleeping and hoping.

Columnar fast path
------------------

With a :class:`~repro.core.sum_store.ColumnarSumStore` underneath, the
cache keeps a :class:`~repro.core.sum_store.ColumnMirror` — a
copy-on-write staging copy of the emotional and sensibility columns.
The first read of a user after a publish copies that user's row slices
into the mirror **without blocking writers**: the copy runs the seqlock
read protocol against the store's per-row generation counters
(:attr:`~repro.core.sum_store.ColumnarSumStore.row_generations`),
retrying the handful of rows a writer is actively committing instead of
taking any lock.  Every later read at the same version is a pure column
slice with zero per-user work, so
:class:`~repro.serving.service.RecommendationService` takes the same
allocation-free batch path on *live streamed* state that it takes on a
bare store.  Writers never touch the mirror, so captures cannot observe
a half-applied batch — and a whole capture runs inside a layout-epoch
window, so :meth:`~repro.core.sum_store.ColumnarSumStore.compact_vocab`
can run against live mirrors without quiescing anyone.
"""

from __future__ import annotations

import threading
import time
from types import MappingProxyType
from typing import Iterable, Sequence

from repro.analysis.contracts import (
    declare_lock,
    declare_order,
    guarded_by,
    make_lock,
    manual_guard,
    requires_lock,
    seqlock_reader,
)
from repro.core.reward import ReinforcementPolicy
from repro.core.sum_model import SmartUserModel, SumRepository
from repro.core.sum_store import FrozenSumBatch, seal_attributes
from repro.core.updates import (
    SumUpdateOp,
    applied_counts_by_user,
    apply_ops_batch,
)
from repro.obs.metrics import MetricsRegistry, NullRegistry, resolve_registry


# The cache's locking protocol, as checkable declarations:
#
# * the registry lock hands out per-user locks (never held while taking
#   anything else);
# * per-user locks form one *family* — apply_batch_and_publish holds
#   many at once, made safe by sorted-id acquisition order;
# * each mirror shard's capture lock serializes that shard's refreshes
#   and captures against each other.  Captures no longer take user locks
#   or the store lock: row copies run the lock-free seqlock protocol
#   against ColumnarSumStore.row_generations, and writers only flag
#   staleness (a GIL-atomic set.add) under their user lock.
declare_lock("SumCache._registry_lock")
declare_lock(
    "SumCache._lock_for()",
    family=True,
    self_order="sorted user id",
    aliases=("SumCache.write_lock()",),
)
declare_lock("_MirrorShard.lock", reentrant=True)
# Applying ops under a user's write lock mutates the columnar store,
# which takes the store lock; hidden from the AST behind the
# duck-typed repository, so asserted here.
declare_order("SumCache._lock_for()", "ColumnarSumStore._lock")
# A starved seqlock capture falls back to one row copy under the store
# writer lock while holding its shard's capture lock.  Safe to nest this
# way because writers never take a shard lock (they only bump versions
# and flag staleness GIL-atomically), so the reverse edge cannot exist.
declare_order("_MirrorShard.lock", "ColumnarSumStore._lock")


@guarded_by("_MirrorShard.lock", "versions", "stale", "epoch")
class _MirrorShard:
    """One store partition's read-mirror state, isolated per shard.

    A sharded repository gets one of these per partition: its own
    copy-on-write mirror, its own ``uid -> staged version`` map, its own
    dirty set and its own capture lock — so a write burst on shard 3
    flags staleness (and serializes refreshes) only there, and shard 0's
    captures proceed untouched.  A single columnar store is the one-shard
    special case of the same machinery.
    """

    __slots__ = ("store", "mirror", "versions", "stale", "lock", "epoch")

    def __init__(self, store, families) -> None:
        self.store = store
        self.mirror = store.mirror(families)
        #: uid -> version stamp of the data staged in the mirror row
        self.versions: dict[int, int] = {}
        #: uids published since their last mirror refresh; writers add
        #: under the user's lock (GIL-atomic — see _mark_mirror_stale),
        #: readers refresh-and-discard under the shard lock — so a read
        #: is O(writes since last read), not O(population)
        self.stale: set[int] = set()
        #: serializes this shard's mirror refreshes and captures against
        #: each other (writers never take it — they only bump versions)
        self.lock = make_lock("_MirrorShard.lock", reentrant=True)
        #: the store layout epoch the mirror rows were staged under; a
        #: mismatch at capture time means compact_vocab() moved columns
        #: and every staged row must restage before serving
        self.epoch = int(store.layout_epoch)


def _freeze_object_model(live: SmartUserModel) -> SmartUserModel:
    """A deep-copied, genuinely immutable snapshot of an object-backed SUM.

    The copy's mapping attributes are re-bound as read-only proxies, its
    question sets as frozensets, and the instance *and* its nested
    emotional/EI objects are sealed against attribute rebinding
    (:func:`~repro.core.sum_store.seal_attributes`) — so every mutation
    path (scalar attribute writes, ``activate_emotion``, EIT
    bookkeeping, wholesale attribute swaps like
    ``snapshot.emotional.intensities = {...}``) raises instead of
    silently corrupting the snapshot other readers share.
    """
    snapshot = SmartUserModel.from_dict(live.to_dict())
    snapshot.objective = MappingProxyType(snapshot.objective)
    snapshot.subjective = MappingProxyType(snapshot.subjective)
    snapshot.sensibility = MappingProxyType(snapshot.sensibility)
    snapshot.evidence = MappingProxyType(snapshot.evidence)
    snapshot.emotional.intensities = MappingProxyType(
        snapshot.emotional.intensities
    )
    snapshot.ei_profile.scores = MappingProxyType(snapshot.ei_profile.scores)
    snapshot.asked_questions = frozenset(snapshot.asked_questions)
    snapshot.answered_questions = frozenset(snapshot.answered_questions)
    seal_attributes(snapshot.emotional)
    seal_attributes(snapshot.ei_profile)
    seal_attributes(snapshot)
    return snapshot


@guarded_by("_registry_lock", "_user_locks", "_global_version")
@guarded_by("_lock_for()", "_snapshots", "_versions")
class SumCache:
    """Snapshot cache + version counters over a :class:`SumRepository`.

    Duck-types the repository read API (``get``, ``user_ids``,
    ``__contains__``, ``__len__`` — plus ``batch`` when the repository is
    columnar) so it can be handed to
    :class:`~repro.serving.service.RecommendationService` as its ``sums``.
    """

    #: optimistic seqlock attempts per row before a capture gives up and
    #: copies under the store writer lock; large enough that any writer
    #: with idle time between commits wins a round, small enough that a
    #: saturated writer costs a capture ~1ms, not forever
    _SEQLOCK_SPIN_LIMIT = 512

    def __init__(
        self,
        repository: SumRepository,
        mirror_families: Sequence[str] | None = None,
        telemetry: MetricsRegistry | NullRegistry | None = None,
    ) -> None:
        self.repository = repository
        self._snapshots: dict[int, SmartUserModel] = {}
        self._versions: dict[int, int] = {}
        self._global_version = 0
        self._registry_lock = make_lock("SumCache._registry_lock")
        self._user_locks: dict[int, threading.Lock] = {}
        self._columnar = callable(getattr(repository, "freeze_view", None))
        if self._columnar:
            # One mirror per store partition: a sharded repository exposes
            # its partitions via ``shards`` and routes via ``shard_of``; a
            # single store is the one-shard special case (every uid maps
            # to mirror shard 0), so a write burst on one partition never
            # stalls or invalidates another partition's captures.
            partitions = getattr(repository, "shards", None)
            stores = list(partitions) if partitions is not None else [repository]
            shard_of = getattr(repository, "shard_of", None)
            self._shard_of = shard_of if shard_of is not None else (lambda uid: 0)
            self._mirror_shards: list[_MirrorShard] = [
                _MirrorShard(store, mirror_families) for store in stores
            ]
            # The columnar resolver duck-type: RecommendationService
            # probes ``callable(sums.batch)`` to pick the zero-copy path,
            # so the attribute only exists when the backend can serve it.
            self.batch = self._snapshot_batch
        elif mirror_families:
            raise TypeError(
                "mirror_families needs a columnar repository; the object "
                "backend has no column mirror to scope"
            )
        # Telemetry: counters recorded strictly after lock scopes release
        # (instrument locks are leaves); gauges are snapshot-time callbacks
        # reading GIL-atomic aggregates, so they take no cache lock at all.
        registry = resolve_registry(telemetry)
        self._m_publishes = registry.counter("cache.publishes")
        self._m_captures = registry.counter("cache.captures")
        self._m_refreshed_rows = registry.counter("cache.capture_refreshed_rows")
        registry.gauge(
            "cache.snapshots", fn=lambda: float(len(self._snapshots))
        )
        registry.gauge(
            "cache.global_version", fn=lambda: float(self._global_version)
        )
        if self._columnar:
            registry.gauge(
                "cache.mirror_stale_rows",
                fn=lambda: float(
                    sum(len(s.stale) for s in self._mirror_shards)
                ),
            )
            registry.gauge(
                "cache.mirrored_users", fn=lambda: float(self.mirrored_users)
            )

    @requires_lock("_lock_for()")
    @manual_guard(
        "writers flag staleness with a GIL-atomic set.add under the "
        "user's write lock, not the shard lock guarding `stale`: the "
        "capture side tolerates the flag landing at any point relative "
        "to its own discard because publishes bump the user's version "
        "*before* flagging (see _capture_shard) — every interleaving "
        "converges to a refresh at the newest version"
    )
    def _mark_mirror_stale(self, user_id: int) -> None:
        """Flag a published user's mirror row as behind (caller holds the
        user's lock; the capture side re-checks under the shard lock)."""
        if self._columnar:
            self._mirror_shards[self._shard_of(user_id)].stale.add(user_id)

    # -- locking -----------------------------------------------------------

    def _lock_for(self, user_id: int) -> threading.Lock:
        lock = self._user_locks.get(user_id)  # GIL-atomic fast path
        if lock is None:
            with self._registry_lock:
                lock = self._user_locks.setdefault(
                    user_id, make_lock("SumCache._lock_for()")
                )
        return lock

    # -- write path --------------------------------------------------------

    def write_lock(self, user_id: int) -> threading.Lock:
        """The lock guarding one user's live model.

        Direct repository writers (the offline campaign loop) hold it
        across their mutation so snapshot builds and streamed applies
        serialize with them; pair with :meth:`invalidate` afterwards.
        """
        return self._lock_for(int(user_id))

    def mutate(self, user_id: int, fn) -> object:
        """Run ``fn(model)`` on the live model under the user's lock.

        Two-step write path: pair with :meth:`publish`.  Between the two
        calls a reader whose snapshot was just invalidated can observe
        the pending mutation early (it rebuilds from the live model), so
        the consumer workers use :meth:`apply_and_publish`, which closes
        that window by committing inside the same lock hold.
        """
        user_id = int(user_id)
        with self._lock_for(user_id):
            return fn(self.repository.get_or_create(user_id))

    def apply_and_publish(self, user_id: int, fn) -> tuple[int, int]:
        """Run ``fn(model)`` and commit, all under one user-lock hold.

        The worker write path: readers blocked on the lock (or reading
        the old snapshot) see either the state before ``fn`` at the old
        version or the state after it at the new version — never the
        mutation at the old version.  ``fn`` returns how many ops it
        applied; a zero return means the state did not change, so
        nothing is invalidated and the version stays put.  Returns
        ``(applied ops, version)``.  Bump the batch-level
        :attr:`global_version` separately with :meth:`mark_batch`.
        """
        user_id = int(user_id)
        with self._lock_for(user_id):
            applied = int(fn(self.repository.get_or_create(user_id)))
            version = self._versions.get(user_id, 0)
            if applied:
                self._snapshots.pop(user_id, None)
                # version before stale: lock-free captures discard the
                # stale flag before reading the version, so flagging
                # *last* means a capture either reads the new version or
                # leaves the flag set for the next capture to correct
                version += 1
                self._versions[user_id] = version
                self._mark_mirror_stale(user_id)
        if applied:
            self._m_publishes.inc()
        return applied, version

    @manual_guard(
        "acquires every touched user's lock in sorted-id order via a "
        "loop + try/finally; loop-acquired locks are invisible to the "
        "with-scope analysis"
    )
    def apply_batch_and_publish(
        self,
        items: Sequence[tuple[int, tuple[SumUpdateOp, ...]]],
        policy: ReinforcementPolicy,
    ) -> tuple[list[int], dict[int, int]]:
        """Apply a whole batch's op slices and commit, all users at once.

        The columnar commit path: every touched user's lock is acquired
        (in sorted-id order — other writers take one lock at a time, so
        no cycle is possible), the batch is applied through
        :func:`~repro.core.updates.apply_ops_batch` vectorized against
        row ranges, and each touched user's snapshot is dropped and
        version bumped before the locks release.  Readers observe
        exactly the :meth:`apply_and_publish` contract: old state at the
        old version or batch-applied state at the new one, one bump per
        touched user.  The mirror is *not* written here — it refreshes
        lazily on the next read, which sees the bumped version.  Returns
        ``(per-item applied counts, versions)``.

        Requires a columnar repository (``batch_apply_ops``) and raises
        ``TypeError`` otherwise: the columnar backend validates every op
        *before* any mutation, so a raising call leaves both state and
        versions untouched and callers may safely fall back to the
        per-user scalar path — a guarantee an object-backed sequential
        apply (which can fail mid-sequence, half-applied and
        uninvalidated) cannot make.
        """
        if not callable(getattr(self.repository, "batch_apply_ops", None)):
            raise TypeError(
                "apply_batch_and_publish needs a columnar repository "
                "(batch_apply_ops); use apply_and_publish per user"
            )
        items = [(int(user_id), tuple(ops)) for user_id, ops in items]
        ids = sorted({user_id for user_id, __ in items})
        locks = [self._lock_for(user_id) for user_id in ids]
        for lock in locks:
            lock.acquire()
        try:
            counts = apply_ops_batch(self.repository, items, policy)
            applied_by_user = applied_counts_by_user(items, counts)
            versions: dict[int, int] = {}
            bumped = 0
            for user_id in ids:
                version = self._versions.get(user_id, 0)
                if applied_by_user.get(user_id, 0):
                    self._snapshots.pop(user_id, None)
                    # version before stale (see apply_and_publish)
                    version += 1
                    self._versions[user_id] = version
                    self._mark_mirror_stale(user_id)
                    bumped += 1
                versions[user_id] = version
        finally:
            for lock in reversed(locks):
                lock.release()
        if bumped:
            self._m_publishes.inc(bumped)
        return counts, versions

    def mark_batch(self) -> int:
        """Count one applied batch; returns the new global version."""
        with self._registry_lock:
            self._global_version += 1
            return self._global_version

    def publish(self, user_id: int) -> int:
        """Commit one user's pending mutations; returns the new version."""
        user_id = int(user_id)
        with self._lock_for(user_id):
            self._snapshots.pop(user_id, None)
            # version before stale (see apply_and_publish)
            version = self._versions.get(user_id, 0) + 1
            self._versions[user_id] = version
            self._mark_mirror_stale(user_id)
        with self._registry_lock:
            self._global_version += 1
        self._m_publishes.inc()
        return version

    def invalidate(self, user_ids: Iterable[int] | None = None) -> dict[int, int]:
        """Invalidate users written *outside* the streaming path.

        For writers that mutate the underlying repository directly —
        the offline campaign loop rewarding touched users, a bulk
        import — rather than through :meth:`apply_and_publish`.  Drops
        the snapshots and bumps each user's version (``None`` means
        every user the repository knows); the whole call counts as one
        batch on :attr:`global_version`.
        """
        ids = (
            self.repository.user_ids()
            if user_ids is None
            else sorted({int(uid) for uid in user_ids})
        )
        versions: dict[int, int] = {}
        for user_id in ids:
            with self._lock_for(user_id):
                self._snapshots.pop(user_id, None)
                # version before stale (see apply_and_publish)
                versions[user_id] = self._versions.get(user_id, 0) + 1
                self._versions[user_id] = versions[user_id]
                self._mark_mirror_stale(user_id)
        if versions:
            with self._registry_lock:
                self._global_version += 1
            self._m_publishes.inc(len(versions))
        return versions

    # -- read path (repository duck-type) ----------------------------------

    def get(self, user_id: int) -> SmartUserModel:
        """Immutable snapshot of one user's SUM at their last published
        version.

        Columnar repositories are snapshotted as frozen row-slice copies
        (:meth:`~repro.core.sum_store.ColumnarSumStore.freeze_view` — no
        dict round trip); object repositories as a frozen deep copy.
        Either way the snapshot raises on any mutation attempt.
        """
        user_id = int(user_id)
        snapshot = self._snapshots.get(user_id)
        if snapshot is not None:
            return snapshot
        with self._lock_for(user_id):
            snapshot = self._snapshots.get(user_id)
            if snapshot is None:
                if self._columnar:
                    snapshot = self.repository.freeze_view(user_id)
                else:
                    snapshot = _freeze_object_model(
                        self.repository.get(user_id)
                    )
                self._snapshots[user_id] = snapshot
            return snapshot

    def get_or_create(self, user_id: int) -> SmartUserModel:
        """Repository parity; creating flows through to the live store."""
        self.repository.get_or_create(int(user_id))
        return self.get(user_id)

    def user_ids(self) -> list[int]:
        return self.repository.user_ids()

    def __contains__(self, user_id: object) -> bool:
        return user_id in self.repository

    def __len__(self) -> int:
        return len(self.repository)

    # -- columnar batch read path ------------------------------------------

    @seqlock_reader("ColumnarSumStore.row_generations")
    def _refresh_row_published(self, shard: _MirrorShard, row: int) -> None:
        """Copy one live row into the mirror — without any write lock.

        The seqlock read protocol over
        :attr:`~repro.core.sum_store.ColumnarSumStore.row_generations`:
        read the row's generation counter (retrying while *odd* — a
        writer is mid-commit), copy the row, then re-read and accept only
        if the counter is unchanged *and* the generation array itself was
        not replaced (row-capacity growth swaps it; identity is the
        cross-swap tear detector).  Writers never block on this path, and
        a reader only spins while the specific row it wants is actually
        being written.

        The spin is bounded: a writer saturating the row (back-to-back
        batch commits keep the generation odd for essentially its whole
        duty cycle, and numpy releases the GIL *inside* that window, so
        it is exactly where this thread gets scheduled) would starve an
        unbounded retry forever.  After the bound the capture falls back
        to one row copy under
        :attr:`~repro.core.sum_store.ColumnarSumStore.writer_lock` —
        holding the writers' own lock excludes every generation bump, so
        the copy needs no retry.  Writers still never wait on readers;
        only a starved reader ever waits on writers.
        """
        gens = shard.store.row_generations
        for __ in range(self._SEQLOCK_SPIN_LIMIT):
            observed = gens.values
            if row >= observed.shape[0]:
                time.sleep(0)  # racing a row-capacity growth; re-fetch
                continue
            before = int(observed[row])
            if before & 1:  # a writer is mid-commit on this row
                time.sleep(0)
                continue
            shard.mirror.refresh_row(row)
            if gens.values is observed and int(observed[row]) == before:
                return
            time.sleep(0)
        with shard.store.writer_lock:  # starved: exclude writers outright
            shard.mirror.refresh_row(row)

    def _capture_shard(
        self, shard: _MirrorShard, shard_ids: list[int], rows
    ) -> FrozenSumBatch:
        """Refresh + capture one mirror shard (its lock held throughout).

        The hot serving path: captures never take the store write lock or
        any user lock.  Stale rows are copied via the per-row seqlock
        retry (:meth:`_refresh_row_published`), and the whole capture
        runs inside a layout-epoch window — if a
        :meth:`~repro.core.sum_store.ColumnarSumStore.compact_vocab`
        swapped the column layout mid-capture (or since the last one),
        every staged row restages and the capture retries.
        """
        store = shard.store
        refreshed = 0
        with shard.lock:
            while True:
                epoch = int(store.layout_epoch)
                if epoch & 1:  # compaction mid-swap; new layout imminent
                    time.sleep(0)
                    continue
                if shard.epoch != epoch:
                    # compact_vocab() moved columns since this mirror was
                    # staged: every staged row is laid out wrong now
                    shard.versions.clear()
                    shard.epoch = epoch
                shard.mirror.sync_shape()
                mirrored = shard.versions
                stale = shard.stale
                # Staleness is O(writes since the last read), not
                # O(batch): set algebra runs in C, and only never-
                # mirrored or freshly-published users pay a row copy.
                ids_set = set(shard_ids)
                need = ids_set.difference(mirrored)
                if stale:
                    need |= ids_set.intersection(stale)
                for uid in need:
                    # discard before reading the version: a publish
                    # bumps the version *before* re-flagging, so either
                    # we read the bumped version here or the flag lands
                    # after our discard and survives for the next capture
                    stale.discard(uid)
                    version = self._versions.get(uid, 0)
                    self._refresh_row_published(shard, store.row_index(uid))
                    mirrored[uid] = version
                refreshed += len(need)
                # Stamps only need to cover the requested ids: small
                # reads build them per id, population-scale reads take
                # one C-level dict copy (cheaper than a Python loop over
                # the batch).  The batch resolves per-user stamps lazily.
                if len(shard_ids) < len(mirrored) // 4:
                    stamps = {uid: mirrored.get(uid, 0) for uid in shard_ids}
                else:
                    stamps = dict(mirrored)
                batch = shard.mirror.capture(
                    shard_ids, rows, stamps, resolve=self.get
                )
                if int(store.layout_epoch) == epoch:
                    break
                # a compaction landed mid-capture; restage and go again
        # instruments only after the shard lock releases (leaf-lock rule)
        self._m_captures.inc()
        if refreshed:
            self._m_refreshed_rows.inc(refreshed)
        return batch

    def _snapshot_batch(self, user_ids: Sequence[int], create: bool = False):
        """Version-stamped columnar batch read — the serving fast path.

        The first read of a user after a publish copies that user's row
        slices into the copy-on-write mirror under the user's write lock;
        every subsequent read at the same version slices the mirror with
        zero per-user work.  The returned batch is frozen (bit-stable no
        matter how many batches land afterwards) and stamped with each
        user's version at capture: old state at the old version or
        batch-applied state at the new one, never a torn read.

        On a sharded repository each partition refreshes and captures
        under its own mirror lock; the per-shard captures gather into one
        :class:`~repro.core.sharded_store.ShardedBatch` in request order.
        Per-user stamping is unaffected: every row is refreshed under its
        user's write lock whichever shard it lives in.

        Unknown users raise one
        :class:`~repro.core.sum_model.UnknownUserError` naming them all;
        ``create=True`` opts into streaming first-contact semantics.
        """
        ids = list(map(int, user_ids))
        if len(self._mirror_shards) == 1:
            shard = self._mirror_shards[0]
            rows = shard.store.rows_for(ids, create=create)
            return self._capture_shard(shard, ids, rows)
        # Resolve/create the whole batch first: one typed error naming
        # every unknown id across all shards, not shard-by-shard.
        self.repository.rows_for(ids, create=create)
        shard_of = self._shard_of
        grouped: dict[int, list[int]] = {}
        for pos, uid in enumerate(ids):
            grouped.setdefault(shard_of(uid), []).append(pos)
        parts = []
        for shard_index, positions in grouped.items():
            shard = self._mirror_shards[shard_index]
            shard_ids = [ids[p] for p in positions]
            rows = shard.store.rows_for(shard_ids)
            parts.append((positions, self._capture_shard(shard, shard_ids, rows)))
        if len(parts) == 1:
            return parts[0][1]
        from repro.core.sharded_store import ShardedBatch

        return ShardedBatch(ids, parts, resolve=self.get)

    # -- observability -----------------------------------------------------

    def version(self, user_id: int) -> int:
        """Monotonic per-user version (0 before the first publish)."""
        return self._versions.get(int(user_id), 0)

    @property
    def global_version(self) -> int:
        """Total number of published batches across all users."""
        return self._global_version

    @property
    def cached_users(self) -> int:
        """How many per-user snapshots are currently materialized."""
        return len(self._snapshots)

    @property
    def mirrored_users(self) -> int:
        """How many users have a current row staged in the read mirrors."""
        if not self._columnar:
            return 0
        return sum(len(shard.versions) for shard in self._mirror_shards)

    def versions_snapshot(self) -> dict[int, int]:
        """Point-in-time copy of every user's published version.

        The checkpoint path persists this alongside the column pages so
        replicas loaded from the generation report real per-user version
        floors (see :class:`~repro.serving.replica.Checkpointer`).
        """
        return dict(self._versions)
