"""LifeLog events → incremental SUM update ops.

The streaming half of Fig. 4's Update stage: each raw
:class:`~repro.lifelog.events.Event` is mapped through its
:class:`~repro.lifelog.events.ActionCategory` to the update primitives of
:mod:`repro.core.updates` — a reward for engagement, a punish for
negative explicit feedback, nothing for neutral bookkeeping — plus
evenly scheduled decay ticks so online state forgets exactly like the
offline loop does.

The mapping is deterministic given the mapper's configuration and the
per-user event order, which is what makes "replayed through sharded
consumers" comparable op-for-op against "applied sequentially through
:class:`~repro.core.pipeline.EmotionalContextPipeline`": ops only ever
touch the event's own user, per-user order is preserved by hash
partitioning, and the per-user decay counters live with the mapper that
owns that user's shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.emotions import EMOTION_NAMES
from repro.core.updates import DecayOp, PunishOp, RewardOp, SumUpdateOp
from repro.lifelog.events import ActionCategory, Event


@dataclass(frozen=True)
class MapperConfig:
    """Per-category reinforcement strengths and the decay cadence.

    Strengths scale the policy's learning rate exactly like the campaign
    engine's ``reward_*`` knobs; a strength of 0 disables the category.
    ``decay_every`` inserts one :class:`~repro.core.updates.DecayOp`
    before every Nth op-bearing event of a user (``None`` disables
    event-count decay; explicit ticks still work).
    """

    reward_navigation: float = 0.10
    reward_info_request: float = 0.60
    reward_enrollment: float = 1.0
    reward_opinion: float = 0.40
    reward_campaign_open: float = 0.30
    reward_campaign_click: float = 0.60
    rating_strength: float = 0.50
    rating_like_threshold: int = 4
    decay_every: int | None = 25

    def __post_init__(self) -> None:
        for name in (
            "reward_navigation", "reward_info_request", "reward_enrollment",
            "reward_opinion", "reward_campaign_open", "reward_campaign_click",
            "rating_strength",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} {value} outside [0, 1]")
        if self.decay_every is not None and self.decay_every < 1:
            raise ValueError(f"decay_every must be >= 1, got {self.decay_every}")


class EventUpdateMapper:
    """Stateful per-user mapping of events to SUM update ops.

    Parameters
    ----------
    item_emotions:
        ``str(item_id) -> emotional attributes`` behind each item (build
        one from a catalog with
        :meth:`~repro.datagen.catalog.CourseCatalog.emotion_links`).
        Events whose payload ``target`` resolves to no emotions produce
        no ops — there is nothing to reinforce.
    config:
        Strengths and decay cadence (defaults above).

    The only state is the per-user count of op-bearing events since the
    last decay, so one mapper instance must see *all* events of the users
    it serves, in order — exactly the guarantee hash partitioning gives
    each shard worker.
    """

    def __init__(
        self,
        item_emotions: Mapping[str, tuple[str, ...]],
        config: MapperConfig | None = None,
    ) -> None:
        # Validate the whole mapping up front: an unknown emotion name
        # would otherwise only explode mid-apply on the consumer, after
        # some of its sibling attributes were already reinforced.
        known = set(EMOTION_NAMES)
        for item, emotions in item_emotions.items():
            unknown = set(emotions) - known
            if unknown:
                raise ValueError(
                    f"item_emotions[{item!r}] names unknown emotional "
                    f"attributes {sorted(unknown)}"
                )
        self.item_emotions = {
            str(item): tuple(emotions)
            for item, emotions in item_emotions.items()
        }
        self.config = config or MapperConfig()
        self._since_decay: dict[int, int] = {}

    # -- resolution --------------------------------------------------------

    def emotions_for(self, event: Event) -> tuple[str, ...]:
        """The emotional attributes an event's item excites.

        The item is the payload's ``course`` when present (campaign
        events keep ``target`` for the campaign id and name the
        advertised course separately), otherwise ``target`` (organic
        browsing, ratings, enrollments).
        """
        item = event.payload.get("course", event.payload.get("target"))
        if item is None:
            return ()
        return self.item_emotions.get(str(item), ())

    def _strength(self, event: Event) -> tuple[float, bool]:
        """(strength, is_reward) for one event; strength 0 means skip."""
        cfg = self.config
        category = event.category
        if category is ActionCategory.NAVIGATION:
            return cfg.reward_navigation, True
        if category is ActionCategory.INFO_REQUEST:
            return cfg.reward_info_request, True
        if category is ActionCategory.ENROLLMENT:
            return cfg.reward_enrollment, True
        if category is ActionCategory.OPINION:
            return cfg.reward_opinion, True
        if category is ActionCategory.RATING:
            value = int(event.payload.get("value", cfg.rating_like_threshold))
            return cfg.rating_strength, value >= cfg.rating_like_threshold
        if category is ActionCategory.CAMPAIGN:
            if event.action.endswith("_click"):
                return cfg.reward_campaign_click, True
            if event.action.endswith("_open"):
                return cfg.reward_campaign_open, True
            return 0.0, True
        # EIT answers flow through the Gradual EIT, account actions are
        # bookkeeping: neither is reinforcement signal.
        return 0.0, True

    # -- mapping -----------------------------------------------------------

    def ops(self, event: Event) -> tuple[SumUpdateOp, ...]:
        """Update ops for one event (possibly empty)."""
        strength, is_reward = self._strength(event)
        if strength <= 0.0:
            return ()
        emotions = self.emotions_for(event)
        if not emotions:
            return ()
        update: SumUpdateOp = (
            RewardOp(emotions, strength)
            if is_reward
            else PunishOp(emotions, strength)
        )
        if self.config.decay_every is None:
            return (update,)
        count = self._since_decay.get(event.user_id, 0) + 1
        if count >= self.config.decay_every:
            self._since_decay[event.user_id] = 0
            return (DecayOp(), update)
        self._since_decay[event.user_id] = count
        return (update,)

    def tick_ops(self, user_id: int) -> tuple[SumUpdateOp, ...]:
        """Ops for one explicit (scheduled) decay tick of one user."""
        self._since_decay[int(user_id)] = 0
        return (DecayOp(),)
