"""Replay / load generation: stream stored or generated events at a rate.

The driver half of the streaming bench and the live examples: take any
iterable of :class:`~repro.lifelog.events.Event` — an
:class:`~repro.lifelog.store.EventLog`'s contents, a day of
:mod:`repro.datagen` browsing traffic, a synthetic firehose — and publish
it into a :class:`~repro.streaming.updater.StreamingUpdater` either as
fast as backpressure allows (``rate=None``) or paced to a target
events/sec (token-bucket style, checked once per chunk so pacing costs
one clock read per ``chunk`` events).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.lifelog.events import Event


@dataclass(frozen=True)
class ReplayStats:
    """What one replay run did."""

    published: int
    seconds: float

    @property
    def events_per_sec(self) -> float:
        return self.published / self.seconds if self.seconds > 0 else 0.0


class ReplayDriver:
    """Streams events into an updater at a configurable rate.

    Parameters
    ----------
    updater:
        Anything with ``submit(event)`` — a
        :class:`~repro.streaming.updater.StreamingUpdater`.
    rate:
        Target publish rate in events/sec, or ``None`` for flat-out
        (bounded only by queue backpressure).
    chunk:
        Pacing granularity: the clock is checked every ``chunk`` events.
    """

    def __init__(
        self,
        updater: object,
        rate: float | None = None,
        chunk: int = 256,
    ) -> None:
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self.updater = updater
        self.rate = rate
        self.chunk = chunk

    def replay(self, events: Iterable[Event]) -> ReplayStats:
        """Publish all events; returns publish-side throughput stats."""
        submit_many = getattr(self.updater, "submit_many", None)

        def publish(chunk: list[Event]) -> int:
            if submit_many is not None:
                return int(submit_many(chunk))
            for event in chunk:
                self.updater.submit(event)
            return len(chunk)

        published = 0
        buffer: list[Event] = []
        start = time.perf_counter()
        for event in events:
            buffer.append(event)
            if len(buffer) >= self.chunk:
                published += publish(buffer)
                buffer = []
                if self.rate is not None:
                    sleep_for = published / self.rate - (
                        time.perf_counter() - start
                    )
                    if sleep_for > 0:
                        time.sleep(sleep_for)
        if buffer:
            published += publish(buffer)
        return ReplayStats(published, time.perf_counter() - start)


def stream_events(log_or_events: Iterable[Event]) -> Iterator[Event]:
    """Normalize an :class:`EventLog` or plain iterable to an iterator.

    :class:`~repro.lifelog.store.EventLog` exposes ``events()``; anything
    else is iterated directly.
    """
    events = getattr(log_or_events, "events", None)
    if callable(events):
        return iter(events())
    return iter(log_or_events)
