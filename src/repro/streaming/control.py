"""Tail-latency control plane knobs for the streaming write path.

PR 7 made p99 update-to-visible an observable number and PR 8 moved the
commit loops off the GIL; this module adds the *control* half of the
ROADMAP's serving-SLO item — the policies that keep those numbers inside
budget when offered load exceeds capacity:

* :class:`ControlPlaneConfig` — one frozen bundle of knobs shared by the
  in-process (:class:`~repro.streaming.updater.StreamingUpdater`) and
  multi-process (:class:`~repro.streaming.procplane.MultiProcUpdater`)
  planes, picklable so worker processes inherit it at fork/spawn;
* :class:`AdaptiveBatcher` — sizes each shard commit from observed queue
  depth and an EWMA of recent per-op commit seconds: shallow queues get
  small batches (visibility latency), deep queues get big ones
  (throughput amortizes the per-batch overhead while backlog latency
  already dominates).

Everything here is deliberately deterministic given the same observation
sequence — no wall-clock reads, no randomness — so replay tests can
drive it and the chosen sizes are reproducible.  A batcher is
single-owner by protocol (one per shard worker thread) and therefore
needs no locking.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ControlPlaneConfig:
    """Knobs of the tail-latency control plane (all opt-in).

    The default-constructed config enables every mechanism; passing
    ``control_plane=None`` to an updater (the default) disables them
    all, keeping the legacy fixed-batch, never-shed behavior bit-exact.
    """

    #: size commit batches from queue depth + recent commit seconds
    #: instead of the fixed ``batch_max``
    adaptive_batching: bool = True
    #: floor of the adaptive batch size (amortizes per-batch overhead)
    min_batch: int = 8
    #: soft per-commit latency target the batcher sizes against: one
    #: commit should take about this long, so update-to-visible waits
    #: at most ~one target behind the head of the queue
    target_commit_seconds: float = 0.005
    #: EWMA smoothing factor for observed per-op commit seconds
    ewma_alpha: float = 0.2
    #: publish decay/maintenance work on the background service class
    #: (sheddable under pressure — see repro.streaming.bus)
    priority_shedding: bool = True
    #: seconds a scheduled decay tick stays worth applying; after this
    #: the tick is shed (dropped and exact-counted) instead of applied.
    #: ``None`` means ticks never expire.
    tick_ttl: float | None = 0.25

    def __post_init__(self) -> None:
        if self.min_batch < 1:
            raise ValueError(f"min_batch must be >= 1, got {self.min_batch}")
        if self.target_commit_seconds <= 0:
            raise ValueError(
                "target_commit_seconds must be > 0, got "
                f"{self.target_commit_seconds}"
            )
        if not (0.0 < self.ewma_alpha <= 1.0):
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.tick_ttl is not None and self.tick_ttl <= 0:
            raise ValueError(
                f"tick_ttl must be > 0 (or None), got {self.tick_ttl}"
            )


class AdaptiveBatcher:
    """Depth- and latency-aware commit batch sizing for one shard.

    The policy, in order:

    1. a saturated queue (``depth >= batch_max``) always gets the full
       ``batch_max`` — backlog latency dominates, throughput wins;
    2. otherwise the size tracks the queue depth (take what is there,
       never less than ``min_batch``), capped by the *latency cap*:
       how many ops fit in ``target_commit_seconds`` at the EWMA of
       observed per-op commit cost.

    Before the first :meth:`record` there is no cost estimate, so the
    cap is inactive and the batcher degrades to depth-clamping alone.
    """

    __slots__ = ("min_batch", "batch_max", "target_seconds", "alpha",
                 "_per_op_seconds")

    def __init__(self, config: ControlPlaneConfig, batch_max: int) -> None:
        if batch_max < config.min_batch:
            raise ValueError(
                f"batch_max ({batch_max}) below min_batch "
                f"({config.min_batch})"
            )
        self.min_batch = config.min_batch
        self.batch_max = batch_max
        self.target_seconds = config.target_commit_seconds
        self.alpha = config.ewma_alpha
        self._per_op_seconds = 0.0

    @property
    def per_op_seconds(self) -> float:
        """Current EWMA of per-op commit cost (0.0 until first record)."""
        return self._per_op_seconds

    def record(self, n_ops: int, commit_seconds: float) -> None:
        """Feed one observed commit (batch size, wall seconds) back."""
        if n_ops <= 0 or commit_seconds < 0.0:
            return
        per_op = commit_seconds / n_ops
        if self._per_op_seconds == 0.0:
            self._per_op_seconds = per_op
        else:
            self._per_op_seconds += self.alpha * (
                per_op - self._per_op_seconds
            )

    def next_size(self, depth: int) -> int:
        """Batch size for the next dequeue given current queue depth."""
        if depth >= self.batch_max:
            return self.batch_max
        size = max(self.min_batch, depth)
        if self._per_op_seconds > 0.0:
            cap = max(
                self.min_batch,
                int(self.target_seconds / self._per_op_seconds),
            )
            size = min(size, cap)
        return min(size, self.batch_max)
