"""The Smart Prediction Assistant facade.

One object wiring the whole of Fig. 3 together: the five agents on a
deterministic bus, the campaign engine, the Gradual EIT, the LifeLog
store and the propensity stack.  This is the library's headline entry
point:

>>> from repro import SmartPredictionAssistant, SimulatedWorld
>>> world = SimulatedWorld.generate(n_users=2000, seed=7)
>>> spa = SmartPredictionAssistant(world)
>>> spa.bootstrap()
>>> results = spa.run_default_plan()
>>> summary = spa.summary(results)

The *world* (population + catalog + behaviour model) stands in for
emagister.com's real users; SPA itself only ever observes outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.agents.attributes_agent import AttributesManagerAgent
from repro.agents.interface_agent import IntelligentUserInterfaceAgent
from repro.agents.lifelog_agent import LifeLogPreprocessorAgent
from repro.agents.messages import Message
from repro.agents.messaging_agent import MessagingAgentWrapper
from repro.agents.runtime import Agent, AgentRuntime
from repro.agents.smart_component import SmartComponentAgent
from repro.campaigns.campaign import CampaignResult
from repro.campaigns.delivery import CampaignEngine, EngineConfig
from repro.campaigns.redemption import (
    ascii_curve,
    combined_gain_curve,
    gain_at_fraction,
)
from repro.campaigns.reporting import CampaignSummary, build_summary
from repro.datagen.behavior import BehaviorModel, BehaviorParams
from repro.datagen.campaigns_plan import CampaignSpec, default_campaign_plan
from repro.datagen.catalog import CourseCatalog
from repro.datagen.population import Population
from repro.serving.requests import (
    RecommendationRequest,
    RecommendationResponse,
    SelectionRequest,
    SelectionResponse,
)
from repro.serving.service import RecommendationService
from repro.streaming.updater import StreamingUpdater


@dataclass
class SimulatedWorld:
    """The environment SPA operates against (stand-in for emagister.com)."""

    population: Population
    catalog: CourseCatalog
    behavior: BehaviorModel

    @classmethod
    def generate(
        cls,
        n_users: int = 5_000,
        n_courses: int = 120,
        seed: int = 7,
        params: BehaviorParams | None = None,
    ) -> "SimulatedWorld":
        """Generate a reproducible world of the given size."""
        population = Population.generate(n_users, seed=seed)
        catalog = CourseCatalog.generate(n_courses, seed=seed)
        behavior = BehaviorModel(population, catalog, params, seed=seed)
        return cls(population=population, catalog=catalog, behavior=behavior)


class SmartPredictionAssistant:
    """The assembled SPA platform."""

    def __init__(
        self,
        world: SimulatedWorld,
        config: EngineConfig | None = None,
    ) -> None:
        self.world = world
        self.engine = CampaignEngine(world.behavior, config)
        # -- the Fig. 3 agent wiring ------------------------------------
        self.runtime = AgentRuntime()
        self.lifelog_agent = self.runtime.register(
            LifeLogPreprocessorAgent("lifelog", self.engine.event_log)
        )
        self.smart_component = self.runtime.register(
            SmartComponentAgent("smart", estimator=self.engine.config.estimator)
        )
        self.attributes_agent = self.runtime.register(
            AttributesManagerAgent("attributes", self.engine.sums)
        )
        self.messaging_agent = self.runtime.register(
            MessagingAgentWrapper(
                "messaging", self.engine.sums, world.catalog, self.engine.assigner
            )
        )
        self.interface_agent = self.runtime.register(
            IntelligentUserInterfaceAgent("interface")
        )

    # -- lifecycle -----------------------------------------------------------

    def bootstrap(self, browsing_days: float = 30.0) -> None:
        """Register the population and ingest the organic LifeLog."""
        self.engine.register_population()
        self.engine.ingest_browsing(horizon_days=browsing_days)

    def run_default_plan(
        self, n_warmups: int = 3, personalize: bool = True
    ) -> list[CampaignResult]:
        """Run the paper's 8-push + 2-newsletter plan with warm-ups."""
        plan = default_campaign_plan(self.world.catalog, seed=self.engine.config.seed)
        planned = {spec.course_id for spec in plan}
        spare = [c for c in self.world.catalog.course_ids() if c not in planned]
        warmups = [
            CampaignSpec(f"warmup-{i:02d}", "push", spare[i % len(spare)], 0.42)
            for i in range(n_warmups)
        ]
        return self.engine.run_plan(plan, warmup=warmups, personalize=personalize)

    def run_baseline_plan(self) -> list[CampaignResult]:
        """The untargeted, standard-message counterfactual (fresh engine)."""
        baseline = CampaignEngine(self.world.behavior, self.engine.config)
        baseline.register_population()
        plan = default_campaign_plan(self.world.catalog, seed=self.engine.config.seed)
        return [
            baseline.run_campaign(spec, scored=False, personalize=False, retrain=False)
            for spec in plan
        ]

    # -- the two paper functions (batch-first serving layer) ----------------

    @property
    def service(self) -> RecommendationService:
        """The batch-first :class:`RecommendationService` over the engine.

        Scorers registered: ``"propensity"`` (default; needs a trained
        model), ``"appeal"`` and ``"engagement"`` — see
        :meth:`~repro.campaigns.delivery.CampaignEngine.recommendation_service`.
        """
        return self.engine.recommendation_service()

    def recommend_courses(
        self,
        user_id: int,
        k: int = 5,
        scorer: str | None = None,
        adjust: bool = True,
        deadline_s: float | None = None,
        partial_ok: bool = False,
    ) -> RecommendationResponse:
        """The paper's *recommendation function* over the whole catalog.

        Top-``k`` courses for one user with per-item score breakdowns,
        served through the :class:`~repro.serving.scorer.Scorer` protocol.
        ``deadline_s`` caps end-to-end latency (typed
        :class:`~repro.serving.budget.DeadlineExceeded` on overrun);
        with ``partial_ok`` a budget exhausted after scoring degrades to
        unadjusted scores (``response.degraded``) instead of aborting.
        """
        return self.service.recommend(RecommendationRequest(
            user_id=user_id,
            items=self.world.catalog.course_ids(),
            k=k,
            scorer=scorer,
            adjust=adjust,
            deadline_s=deadline_s,
            partial_ok=partial_ok,
        ))

    def select_users_for(
        self,
        course_id: int,
        k: int | None = None,
        user_ids: list[int] | None = None,
        scorer: str | None = None,
        adjust: bool = True,
        deadline_s: float | None = None,
        partial_ok: bool = False,
    ) -> SelectionResponse:
        """The paper's *selection function* for one course.

        Users ranked by adjusted propensity (all registered SUMs when
        ``user_ids`` is omitted), best first, truncated to ``k`` if given.
        ``deadline_s``/``partial_ok`` behave as in
        :meth:`recommend_courses`.
        """
        return self.service.select_users(SelectionRequest(
            item=course_id,
            user_ids=user_ids,
            k=k,
            scorer=scorer,
            adjust=adjust,
            deadline_s=deadline_s,
            partial_ok=partial_ok,
        ))

    # -- streaming (the live Fig. 4 loop) ------------------------------------

    def streaming_updater(self, n_shards: int = 4, **kwargs) -> StreamingUpdater:
        """A :class:`~repro.streaming.updater.StreamingUpdater` over SPA.

        Raw LifeLog events stream through hash-sharded consumers into the
        engine's SUMs (same reinforcement policy as the campaign loop),
        with write-behind persistence into the engine's event log.  Pair
        with :meth:`live_service` to serve from the updater's versioned
        snapshots::

            updater = spa.streaming_updater()
            service = spa.live_service(updater)
            with updater:
                updater.submit_many(events)
                updater.drain()
                service.recommend(...)    # fresh emotional state
        """
        return self.engine.streaming_updater(n_shards=n_shards, **kwargs)

    def live_service(self, updater: StreamingUpdater) -> RecommendationService:
        """A recommendation service reading ``updater``'s versioned cache.

        Responses carry ``sum_version`` so callers can tell exactly which
        update batches the served emotional state reflects.
        """
        return self.engine.recommendation_service(sums=updater.cache)

    # -- sharded persistence (the replica refresh protocol) ------------------

    def sum_checkpointer(self, directory, cache=None, **kwargs):
        """Generation-stamped SUM checkpoints (sharded backend only).

        See :class:`~repro.serving.replica.Checkpointer`; pass a live
        updater's ``cache`` so replicas report real version floors::

            spa = SmartPredictionAssistant(world, EngineConfig(
                sum_backend="sharded", n_shards=8))
            updater = spa.streaming_updater(n_shards=8)
            checkpointer = spa.sum_checkpointer("state/", cache=updater.cache)
            checkpointer.checkpoint()       # or .start() with interval=...
        """
        return self.engine.sum_checkpointer(directory, cache=cache, **kwargs)

    def replica_service(self, directory, mmap: bool = True, **kwargs):
        """A serving facade over checkpointed SUM state + its refresher.

        Returns ``(service, refresher)``: the service serves the Advice
        stage from the manifest's current generation (memory-mapped
        read-only), and ``refresher.poll()`` — or ``refresher.start()``
        on a cadence — atomically swaps newer generations under it with
        no restart.  Responses carry the served ``generation`` and
        version floors.
        """
        return self.engine.replica_service(directory, mmap=mmap, **kwargs)

    # -- reporting -----------------------------------------------------------

    def summary(self, results: list[CampaignResult]) -> CampaignSummary:
        """The Fig. 6(b) summary for a set of campaign results."""
        return build_summary(results)

    def redemption_curve(
        self, results: list[CampaignResult], n_points: int = 101
    ) -> tuple[np.ndarray, np.ndarray]:
        """The Fig. 6(a) cumulative redemption curve."""
        return combined_gain_curve(results, n_points=n_points)

    def redemption_at(self, results: list[CampaignResult], fraction: float) -> float:
        """Captured-impact share at one commercial-action fraction."""
        return gain_at_fraction(results, fraction)

    def redemption_chart(self, results: list[CampaignResult]) -> str:
        """ASCII rendering of Fig. 6(a)."""
        fractions, captured = self.redemption_curve(results)
        return ascii_curve(fractions, captured)

    # -- agent-bus conveniences ------------------------------------------------

    def ask_agent(self, recipient: str, topic: str, payload: dict) -> list[Message]:
        """Send one request through the Fig. 3 bus and collect the replies."""
        request = Message(
            sender="operator", recipient=recipient, topic=topic, payload=payload
        )
        collector = _ReplyCollector("operator")
        if "operator" not in self.runtime:
            self.runtime.register(collector)
        else:
            collector = self.runtime.get("operator")  # type: ignore[assignment]
        collector.replies.clear()
        self.runtime.send(request)
        self.runtime.run_until_idle()
        return list(collector.replies)

    def architecture(self) -> list[str]:
        """The Fig. 3 wiring as text lines (used by bench E6)."""
        lines = ["Smart Prediction Assistant (SPA)"]
        descriptions = {
            "lifelog": "LifeLogs Pre-processor Agent (self-replicating)",
            "smart": "Smart Component (incremental learning, scoring, ranking)",
            "attributes": "Attributes Manager Agent (sensibility weights, fusion)",
            "messaging": "Messaging Agent (individualized emotional arguments)",
            "interface": "Intelligent User Interface (Human Values Scale)",
        }
        names = [n for n in self.runtime.agent_names() if n in descriptions]
        for i, name in enumerate(names):
            branch = "└─" if i == len(names) - 1 else "├─"
            lines.append(f"{branch} {name}: {descriptions[name]}")
        return lines


class _ReplyCollector(Agent):
    """Terminal agent that stores everything addressed to it."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.replies: list[Message] = []

    def handle(self, message: Message, runtime: AgentRuntime) -> list[Message]:
        self.replies.append(message)
        return []
