"""Emotion-markup serialization (the paper's reference [12]).

The paper points at the W3C Emotion Incubator Group — the effort that
later produced EmotionML — as the standards track for exchanging
emotional context.  This module serializes
:class:`~repro.core.emotions.EmotionalState` to an EmotionML-flavoured XML
document and parses it back, so SUM emotional snapshots can cross system
boundaries in the open format the paper anticipates.

The dialect used here follows EmotionML 1.0's core shapes:

* one ``<emotion>`` element per active attribute, carrying a
  ``<category>`` (the attribute name) and ``<dimension>`` elements for
  intensity-scaled valence and arousal;
* a custom ``category-set`` URI naming the paper's ten-attribute
  vocabulary.

Only the subset needed for round-tripping SUM state is implemented —
this is an interchange codec, not a full EmotionML validator.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.core.emotions import EMOTION_CATALOG, EmotionalState, clamp01

#: identifies the paper's ten-attribute vocabulary in the markup
CATEGORY_SET = "urn:repro:emotion-vocabulary:gonzalez2007"

_NS = "http://www.w3.org/2009/10/emotionml"


class EmotionMLError(ValueError):
    """Raised for documents this codec cannot interpret."""


def to_emotionml(state: EmotionalState, min_intensity: float = 0.0) -> str:
    """Serialize a state to an EmotionML-flavoured document.

    Attributes at or below ``min_intensity`` are omitted (EmotionML
    documents enumerate *present* emotions, not the whole vocabulary).
    """
    root = ET.Element("emotionml")
    root.set("xmlns", _NS)
    root.set("category-set", CATEGORY_SET)
    for name in sorted(EMOTION_CATALOG):
        intensity = state[name]
        if intensity <= min_intensity:
            continue
        attribute = EMOTION_CATALOG[name]
        emotion = ET.SubElement(root, "emotion")
        category = ET.SubElement(emotion, "category")
        category.set("name", name)
        intensity_el = ET.SubElement(emotion, "intensity")
        intensity_el.set("value", f"{intensity:.6f}")
        valence = ET.SubElement(emotion, "dimension")
        valence.set("name", "valence")
        # EmotionML dimensions are unipolar [0, 1]; map [-1, 1] onto it.
        valence.set("value", f"{(attribute.valence + 1.0) / 2.0:.6f}")
        arousal = ET.SubElement(emotion, "dimension")
        arousal.set("name", "arousal")
        arousal.set("value", f"{attribute.arousal:.6f}")
    return ET.tostring(root, encoding="unicode")


def from_emotionml(document: str) -> EmotionalState:
    """Parse a document produced by :func:`to_emotionml`.

    Unknown categories raise :class:`EmotionMLError`; missing intensity
    elements default to 1.0 (EmotionML's convention for an unqualified
    emotion annotation).
    """
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise EmotionMLError(f"malformed EmotionML: {exc}") from exc
    tag = root.tag.split("}")[-1]
    if tag != "emotionml":
        raise EmotionMLError(f"expected <emotionml> root, got <{tag}>")

    intensities: dict[str, float] = {}
    for emotion in root:
        if emotion.tag.split("}")[-1] != "emotion":
            continue
        name = None
        intensity = 1.0
        for child in emotion:
            child_tag = child.tag.split("}")[-1]
            if child_tag == "category":
                name = child.get("name")
            elif child_tag == "intensity":
                try:
                    intensity = float(child.get("value", "1.0"))
                except ValueError as exc:
                    raise EmotionMLError(
                        f"bad intensity {child.get('value')!r}"
                    ) from exc
        if name is None:
            raise EmotionMLError("<emotion> without a <category>")
        if name not in EMOTION_CATALOG:
            raise EmotionMLError(f"unknown emotion category {name!r}")
        intensities[name] = clamp01(intensity)
    return EmotionalState(intensities)
