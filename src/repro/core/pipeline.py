"""The Fig. 4 iterative loop: discover, manage and update emotional attributes.

Fig. 4 shows SPA's closed loop: a communication goes out carrying one
Gradual EIT question; if the user answers, the impacted attributes are
activated (Initialization); engagement with the recommendation triggers
the reward mechanism, ignoring it triggers (weaker) punishment (Update);
between touches everything decays slightly; sensibility weights are then
re-analyzed and feed the next touch's message personalization (Advice).

:class:`EmotionalContextPipeline` packages one user-touch of that loop so
campaign simulations, the agents runtime and the benches all share the
exact same semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.emotions import EMOTION_NAMES
from repro.core.gradual_eit import EITQuestion, GradualEIT
from repro.core.reward import ReinforcementPolicy
from repro.core.sensibility import SensibilityAnalyzer
from repro.core.sum_model import SmartUserModel
from repro.core.updates import (
    DecayOp,
    PunishOp,
    RewardOp,
    SumUpdateOp,
    apply_ops,
)


@dataclass(frozen=True)
class TouchResult:
    """What happened in one touch of the Fig. 4 loop."""

    user_id: int
    question_asked: str | None
    question_answered: bool
    rewarded: tuple[str, ...]
    punished: tuple[str, ...]
    dominant: tuple[str, ...]


class EmotionalContextPipeline:
    """One-touch orchestration of the Fig. 4 loop."""

    def __init__(
        self,
        eit: GradualEIT,
        policy: ReinforcementPolicy | None = None,
        analyzer: SensibilityAnalyzer | None = None,
    ) -> None:
        self.eit = eit
        self.policy = policy or ReinforcementPolicy()
        self.analyzer = analyzer or SensibilityAnalyzer()

    def run_touch(
        self,
        model: SmartUserModel,
        answer_option: int | None,
        engaged: bool,
        engaged_attributes: tuple[str, ...] = (),
        engagement_strength: float = 1.0,
    ) -> TouchResult:
        """Process one communication touch for one user.

        Parameters
        ----------
        model:
            The user's SUM.
        answer_option:
            Index of the EIT option the user chose, or ``None`` if the
            question was ignored (the common case — this is what creates
            the sparsity problem of Section 5.2).
        engaged:
            Whether the user opened/clicked the recommendation.
        engaged_attributes:
            The emotional attributes the message leaned on; these are what
            reward/punish touches (Fig. 4's "related attributes").
        engagement_strength:
            1.0 for a transaction, smaller for opens/clicks.
        """
        self.apply_update_ops(model, (DecayOp(),))

        question: EITQuestion | None = self.eit.ask(model)
        answered = False
        if question is not None and answer_option is not None:
            self.eit.record_answer(model, question, answer_option)
            answered = True

        rewarded: tuple[str, ...] = ()
        punished: tuple[str, ...] = ()
        ops: tuple[SumUpdateOp, ...] = ()
        if engaged_attributes:
            if engaged:
                ops = (RewardOp(tuple(engaged_attributes), engagement_strength),)
                rewarded = tuple(engaged_attributes)
            else:
                ops = (PunishOp(tuple(engaged_attributes), engagement_strength),)
                punished = tuple(engaged_attributes)
        self.apply_update_ops(model, ops)

        dominant = tuple(name for name, __ in self.analyzer.dominant(model))
        return TouchResult(
            user_id=model.user_id,
            question_asked=question.qid if question is not None else None,
            question_answered=answered,
            rewarded=rewarded,
            punished=punished,
            dominant=dominant,
        )

    # -- the shared update primitives ----------------------------------------

    def apply_update_ops(
        self,
        model: SmartUserModel,
        ops: tuple[SumUpdateOp, ...] | list[SumUpdateOp],
    ) -> int:
        """Apply incremental SUM update ops through this pipeline's policy.

        Every mutation of emotional state in :meth:`run_touch` goes through
        here, so any other writer using the same primitives (notably the
        sharded consumers of :mod:`repro.streaming`) produces bit-identical
        state for the same per-user op sequence.
        """
        return apply_ops(model, ops, self.policy)

    def apply_event(self, model: SmartUserModel, event: object, mapper: object) -> int:
        """Apply one LifeLog event as incremental update ops.

        ``mapper`` is anything with ``ops(event) -> iterable of ops`` —
        typically a :class:`~repro.streaming.mapper.EventUpdateMapper`
        (duck-typed here so :mod:`repro.core` stays import-free of the
        streaming layer).  This is the sequential, one-event-at-a-time
        reference the streaming subsystem is tested against.
        """
        return self.apply_update_ops(model, tuple(mapper.ops(event)))

    @staticmethod
    def convergence(model: SmartUserModel, latent_traits: np.ndarray) -> float:
        """Cosine similarity between the SUM's emotional vector and the
        (simulator-side) latent traits — the Fig. 4 bench's convergence
        measure.  Returns 0 when either vector is all zeros.
        """
        learned = model.emotional.as_vector(EMOTION_NAMES)
        latent = np.asarray(latent_traits, dtype=np.float64)
        if latent.shape != learned.shape:
            raise ValueError(
                f"latent traits shape {latent.shape} != {learned.shape}"
            )
        denom = np.linalg.norm(learned) * np.linalg.norm(latent)
        if denom == 0.0:
            return 0.0
        return float(np.dot(learned, latent) / denom)
