"""The paper's primary contribution: emotional context for recommenders.

This package implements Sections 2–3 of the paper:

* the emotion catalog and valence algebra (:mod:`repro.core.emotions`),
* the context taxonomy of Fig. 1 (:mod:`repro.core.context`),
* the Four-Branch Model of Emotional Intelligence, Table 1
  (:mod:`repro.core.four_branch`),
* the Gradual EIT (:mod:`repro.core.gradual_eit`),
* Smart User Models (:mod:`repro.core.sum_model`) and their columnar
  struct-of-arrays backend (:mod:`repro.core.sum_store`),
* the three-stage methodology — Initialization / Advice / Update — via
  :mod:`repro.core.gradual_eit`, :mod:`repro.core.advice` and
  :mod:`repro.core.reward`,
* sensibility weighting (:mod:`repro.core.sensibility`),
* the emotion-aware recommendation and selection functions
  (:mod:`repro.core.recommender`),
* the Fig. 4 iterative loop (:mod:`repro.core.pipeline`), and
* the Human Values Scale of SPA component 5 (:mod:`repro.core.human_values`).
"""

from repro.core.advice import AdviceEngine, DomainProfile
from repro.core.emotions import (
    EMOTION_CATALOG,
    EMOTION_NAMES,
    EmotionalAttribute,
    EmotionalState,
    NEGATIVE_EMOTIONS,
    POSITIVE_EMOTIONS,
)
from repro.core.four_branch import Branch, FourBranchProfile, branch_table
from repro.core.gradual_eit import (
    AnswerOption,
    EITQuestion,
    GradualEIT,
    QuestionBank,
)
from repro.core.human_values import HumanValuesScale
from repro.core.pipeline import EmotionalContextPipeline, TouchResult
from repro.core.recommender import EmotionAwareRecommender, RankedItem
from repro.core.reward import ReinforcementPolicy
from repro.core.sensibility import SensibilityAnalyzer
from repro.core.sum_model import (
    AttributeKind,
    AttributeSpec,
    SmartUserModel,
    SumRepository,
    UnknownUserError,
)
from repro.core.sum_store import ColumnarSumStore, SumBatch, SumRowView
from repro.core.sharded_store import ShardedBatch, ShardedSumStore
from repro.core.updates import (
    DecayOp,
    PunishOp,
    RewardOp,
    SumUpdateOp,
    apply_op,
    apply_ops,
    apply_ops_batch,
)

__all__ = [
    "AdviceEngine",
    "AnswerOption",
    "AttributeKind",
    "AttributeSpec",
    "Branch",
    "ColumnarSumStore",
    "DecayOp",
    "DomainProfile",
    "EITQuestion",
    "EMOTION_CATALOG",
    "EMOTION_NAMES",
    "EmotionAwareRecommender",
    "EmotionalAttribute",
    "EmotionalContextPipeline",
    "EmotionalState",
    "FourBranchProfile",
    "GradualEIT",
    "HumanValuesScale",
    "NEGATIVE_EMOTIONS",
    "POSITIVE_EMOTIONS",
    "PunishOp",
    "QuestionBank",
    "RankedItem",
    "ReinforcementPolicy",
    "RewardOp",
    "SensibilityAnalyzer",
    "ShardedBatch",
    "ShardedSumStore",
    "SmartUserModel",
    "SumBatch",
    "SumRepository",
    "SumRowView",
    "SumUpdateOp",
    "TouchResult",
    "UnknownUserError",
    "apply_op",
    "apply_ops",
    "apply_ops_batch",
    "branch_table",
]
