"""Cross-domain transfer of Smart User Models.

The SUM concept (the paper's reference [5], González et al. 2005) is
explicitly *cross-domain*: emotional attributes learned while a user
interacts with one application (e-learning) should inform recommendations
in another (tourism, music, ...).  This module implements that transfer:

* emotional attributes and the Four-Branch profile are **domain-general**
  — they copy across with a confidence discount;
* sensibility weights transfer through the *overlap* of the two domains'
  excitatory structures: an emotion whose links behave similarly in both
  domains keeps its weight, one that is irrelevant in the target domain
  is attenuated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.advice import DomainProfile
from repro.core.emotions import EMOTION_NAMES, clamp01
from repro.core.sum_model import SmartUserModel


def emotion_domain_relevance(profile: DomainProfile, emotion: str) -> float:
    """How much one emotion matters in a domain: total absolute link gain,
    squashed to [0, 1] (1 - 1/(1 + mass))."""
    targets = profile.links.get(emotion, {})
    mass = sum(abs(g) for g in targets.values())
    return mass / (1.0 + mass)


@dataclass(frozen=True)
class CrossDomainTransfer:
    """Transfers a SUM's emotional knowledge into a new domain.

    Parameters
    ----------
    confidence:
        Global discount on transferred emotional intensities in (0, 1];
        knowledge about a user is never *more* certain in a domain it was
        not learned in.
    """

    confidence: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence <= 1.0:
            raise ValueError(f"confidence {self.confidence} outside (0, 1]")

    def transfer(
        self,
        source: SmartUserModel,
        source_profile: DomainProfile,
        target_profile: DomainProfile,
    ) -> SmartUserModel:
        """A new SUM for the target domain, seeded from ``source``.

        * objective attributes copy verbatim (they are facts);
        * emotional intensities copy with the ``confidence`` discount;
        * the Four-Branch profile copies verbatim (emotional intelligence
          is a person-level construct, not a domain one);
        * sensibility weights are re-scaled by how relevant each emotion
          is in the *target* domain relative to the source domain;
        * subjective attributes and EIT bookkeeping do **not** transfer —
          they are domain-specific by construction.
        """
        model = SmartUserModel(source.user_id)
        model.objective = dict(source.objective)
        for name in EMOTION_NAMES:
            intensity = source.emotional[name]
            if intensity > 0.0:
                model.emotional.intensities[name] = clamp01(
                    intensity * self.confidence
                )
            evidence = source.evidence.get(name, 0)
            if evidence:
                # Evidence halves across the domain boundary (rounded down),
                # so the sensibility analyzer treats transferred knowledge
                # as weaker than natively observed knowledge.
                model.evidence[name] = evidence // 2
        model.ei_profile.scores.update(source.ei_profile.scores)

        for name, weight in source.sensibility.items():
            source_relevance = emotion_domain_relevance(source_profile, name)
            target_relevance = emotion_domain_relevance(target_profile, name)
            if source_relevance == 0.0:
                # Weight was not grounded in the source domain's structure;
                # transfer it with the plain confidence discount.
                transferred = weight * self.confidence
            else:
                transferred = (
                    weight * self.confidence
                    * min(1.0, target_relevance / source_relevance)
                )
            if transferred > 0.0:
                model.set_sensibility(name, transferred)
        return model
