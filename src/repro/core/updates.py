"""Incremental SUM update primitives.

The Update stage of Fig. 4 boils down to three incremental operations on
one user's SUM: decay everything a little, reward some attributes, punish
some attributes.  This module names those operations as small frozen
dataclasses so every writer of emotional state — the one-touch
:class:`~repro.core.pipeline.EmotionalContextPipeline`, the campaign
engine and the streaming consumers of :mod:`repro.streaming` — applies
the *same* primitives through the same
:class:`~repro.core.reward.ReinforcementPolicy`, and "replayed online"
versus "applied offline" can be compared op for op.

Ops are data, not behaviour: applying them requires a policy, so the same
op sequence can be replayed under different reinforcement knobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple, Union

from repro.core.reward import ReinforcementPolicy
from repro.core.sum_model import SmartUserModel


@dataclass(frozen=True)
class DecayOp:
    """Multiplicative forgetting across all attributes (one decay tick)."""


@dataclass(frozen=True)
class RewardOp:
    """Reinforce ``attributes`` after a positive interaction."""

    attributes: tuple[str, ...]
    strength: float = 1.0

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ValueError("RewardOp needs at least one attribute")


@dataclass(frozen=True)
class PunishOp:
    """Weaken ``attributes`` after a negative interaction."""

    attributes: tuple[str, ...]
    strength: float = 1.0

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ValueError("PunishOp needs at least one attribute")


#: Any single incremental SUM update.
SumUpdateOp = Union[DecayOp, RewardOp, PunishOp]


def apply_op(
    model: SmartUserModel,
    op: SumUpdateOp,
    policy: ReinforcementPolicy,
) -> None:
    """Apply one update op to one SUM through ``policy``."""
    if isinstance(op, DecayOp):
        policy.apply_decay(model)
    elif isinstance(op, RewardOp):
        policy.reward(model, op.attributes, op.strength)
    elif isinstance(op, PunishOp):
        policy.punish(model, op.attributes, op.strength)
    else:
        raise TypeError(f"unknown SUM update op {op!r}")


def apply_ops(
    model: SmartUserModel,
    ops: Iterable[SumUpdateOp],
    policy: ReinforcementPolicy,
) -> int:
    """Apply ops in order; returns how many were applied.

    Ops touch only ``model``, so sequences for *different* users commute —
    the property that makes hash-partitioned streaming consumers
    (:mod:`repro.streaming.consumer`) equivalent to a single sequential
    pass, as long as each user's own ops stay ordered.
    """
    count = 0
    for op in ops:
        apply_op(model, op, policy)
        count += 1
    return count


def apply_ops_batch(
    repository: object,
    items: Sequence[Tuple[int, Iterable[SumUpdateOp]]],
    policy: ReinforcementPolicy,
) -> list[int]:
    """Apply per-user op sequences against a whole SUM collection.

    ``items`` pairs each user id with their (ordered) op sequence.  On a
    columnar backend (:class:`~repro.core.sum_store.ColumnarSumStore`,
    which exposes ``batch_apply_ops``) the whole batch is applied
    vectorized — one decay tick over a shard is one array multiply,
    rewards/punishes are scatter-adds through the same
    :class:`~repro.core.reward.ReinforcementPolicy` clamps.  On an
    object-backed repository it falls back to sequential
    :func:`apply_ops` per user.  Both paths produce bit-identical state
    (the Hypothesis suite in ``tests/properties`` pins this).

    Returns per-item applied-op counts, aligned with ``items``.
    """
    batch_apply = getattr(repository, "batch_apply_ops", None)
    if callable(batch_apply):
        return batch_apply(items, policy)
    counts = []
    for user_id, ops in items:
        counts.append(apply_ops(repository.get_or_create(user_id), ops, policy))
    return counts


def applied_counts_by_user(
    items: Sequence[Tuple[int, Iterable[SumUpdateOp]]],
    counts: Sequence[int],
) -> dict[int, int]:
    """Fold per-item applied counts into per-user totals.

    :func:`apply_ops_batch` reports per *item*, but the commit layer —
    snapshot invalidation and version bumps in the streaming cache — is
    keyed per *user*, and a user listed twice in one batch must still get
    exactly one version bump.  Centralizing the fold keeps every commit
    path (columnar batch, scalar fallback, future shards) bumping on the
    same definition of "this user's state changed".
    """
    totals: dict[int, int] = {}
    for (user_id, __), count in zip(items, counts):
        user_id = int(user_id)
        totals[user_id] = totals.get(user_id, 0) + int(count)
    return totals
