"""The Gradual Emotional Intelligence Test (Gradual EIT).

Section 3 (Initialization stage): "acquisition of users' emotional features
based on a gradual and noninvasive emotional intelligence test".  Section
5.2: "only one question every time that push or newsletters are received
... their impacted emotional attributes related with the questions are
gradually activated".

Design:

* A :class:`QuestionBank` holds :class:`EITQuestion` items, each tied to a
  Four-Branch task family (Table 1) and offering several
  :class:`AnswerOption` choices.  Options carry *activations* — bounded
  deltas on emotional attributes — and an *ability score* in [0, 1] used
  to update the Four-Branch profile (MSCEIT-style consensus scoring).
* :class:`GradualEIT` schedules at most one unanswered question per touch,
  cycling branches so coverage grows evenly, and applies answers to the
  user's :class:`~repro.core.sum_model.SmartUserModel`.
* :meth:`GradualEIT.answer_matrix` exports the sparse user × question
  matrix whose dimensionality the paper reduces before SVM training
  ("the sparsity problem in data", Section 5.2).

The MSCEIT V2.0 item texts are proprietary; the bank here is generated
from templates that preserve the instrument's *structure* — four branches,
two task families each, valence-labelled options — which is all the
learning loop consumes (see DESIGN.md substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.emotions import EMOTION_CATALOG, EMOTION_NAMES, clamp01
from repro.core.four_branch import BRANCHES, BRANCH_ORDER, Branch
from repro.core.sum_model import SmartUserModel


@dataclass(frozen=True)
class AnswerOption:
    """One selectable answer.

    Parameters
    ----------
    text:
        The option label shown to the user.
    activations:
        Emotional-attribute deltas applied when this option is chosen;
        each delta must lie in [-1, 1].
    ability:
        MSCEIT-style correctness/consensus score of this option in [0, 1].
    """

    text: str
    activations: dict[str, float] = field(default_factory=dict)
    ability: float = 0.5

    def __post_init__(self) -> None:
        for name, delta in self.activations.items():
            if name not in EMOTION_CATALOG:
                raise KeyError(f"unknown emotional attribute {name!r}")
            if not -1.0 <= delta <= 1.0:
                raise ValueError(f"activation delta {delta} outside [-1, 1]")
        if not 0.0 <= self.ability <= 1.0:
            raise ValueError(f"ability {self.ability} outside [0, 1]")


@dataclass(frozen=True)
class EITQuestion:
    """One Gradual EIT item tied to a Table 1 task family."""

    qid: str
    prompt: str
    branch: Branch
    task: str
    options: tuple[AnswerOption, ...]

    def __post_init__(self) -> None:
        if len(self.options) < 2:
            raise ValueError(f"question {self.qid} needs >= 2 options")
        if self.task not in BRANCHES[self.branch].tasks:
            raise ValueError(
                f"task {self.task!r} does not belong to branch {self.branch.value}"
            )


class QuestionBank:
    """An ordered, id-unique collection of EIT questions."""

    def __init__(self, questions: Iterable[EITQuestion]) -> None:
        self._questions: dict[str, EITQuestion] = {}
        for question in questions:
            if question.qid in self._questions:
                raise ValueError(f"duplicate question id {question.qid!r}")
            self._questions[question.qid] = question
        self._order = list(self._questions)

    def __len__(self) -> int:
        return len(self._questions)

    def __iter__(self) -> Iterator[EITQuestion]:
        for qid in self._order:
            yield self._questions[qid]

    def __contains__(self, qid: object) -> bool:
        return qid in self._questions

    def get(self, qid: str) -> EITQuestion:
        """Fetch a question by id."""
        try:
            return self._questions[qid]
        except KeyError:
            raise KeyError(f"unknown question {qid!r}") from None

    def question_ids(self) -> list[str]:
        """Question ids in bank order."""
        return list(self._order)

    def by_branch(self, branch: Branch) -> list[EITQuestion]:
        """All questions of one branch, in bank order."""
        return [q for q in self if q.branch is branch]

    @classmethod
    def default_bank(cls, per_task: int = 3, seed: int = 7) -> "QuestionBank":
        """Generate a structured bank: ``per_task`` items per Table 1 task.

        Each question offers one strongly positive option, one mildly
        positive option, one negative option and one opt-out, with
        activations drawn deterministically from ``seed``.
        """
        rng = np.random.default_rng(seed)
        positives = [n for n in EMOTION_NAMES if EMOTION_CATALOG[n].valence > 0]
        negatives = [n for n in EMOTION_NAMES if EMOTION_CATALOG[n].valence < 0]
        prompts = {
            Branch.PERCEIVING: "How does this {subject} make you feel?",
            Branch.FACILITATING: "Which feeling would best help you {subject}?",
            Branch.UNDERSTANDING: "What emotion follows when {subject}?",
            Branch.MANAGING: "What would you do to stay positive when {subject}?",
        }
        subjects = {
            "Faces": "expression in the photo",
            "Pictures": "landscape image",
            "Facilitation": "plan your next training course",
            "Sensations": "compare this mood to a colour",
            "Changes": "your course enrolment is confirmed",
            "Blends": "excitement mixes with worry before an exam",
            "Emotion Management": "a course is harder than expected",
            "Emotional Relations": "a study partner becomes discouraged",
        }
        questions: list[EITQuestion] = []
        for branch in BRANCH_ORDER:
            for task in BRANCHES[branch].tasks:
                for item in range(per_task):
                    strong = positives[int(rng.integers(len(positives)))]
                    mild = positives[int(rng.integers(len(positives)))]
                    negative = negatives[int(rng.integers(len(negatives)))]
                    qid = f"{branch.value[:4]}-{task.replace(' ', '_').lower()}-{item}"
                    prompt = prompts[branch].format(subject=subjects[task])
                    options = (
                        AnswerOption(
                            f"strongly {strong}",
                            {strong: 0.60, mild: 0.25},
                            ability=0.9,
                        ),
                        AnswerOption(
                            f"somewhat {mild}",
                            {mild: 0.30},
                            ability=0.65,
                        ),
                        AnswerOption(
                            f"rather {negative}",
                            {negative: 0.45},
                            ability=0.35,
                        ),
                        AnswerOption("prefer not to say", {}, ability=0.5),
                    )
                    questions.append(EITQuestion(qid, prompt, branch, task, options))
        return cls(questions)


@dataclass
class AnswerRecord:
    """One recorded answer: who, which question, which option."""

    user_id: int
    qid: str
    option_index: int


class GradualEIT:
    """The one-question-per-touch scheduler and answer processor."""

    def __init__(self, bank: QuestionBank) -> None:
        self.bank = bank
        self.records: list[AnswerRecord] = []

    def next_question(self, model: SmartUserModel) -> EITQuestion | None:
        """The next unasked question for this user, or None when exhausted.

        Branch coverage is balanced: the branch with the fewest questions
        already asked of this user goes first (ties broken by Table 1
        order), so the Four-Branch profile fills in evenly.
        """
        asked_by_branch = {branch: 0 for branch in BRANCH_ORDER}
        for qid in model.asked_questions:
            if qid in self.bank:
                asked_by_branch[self.bank.get(qid).branch] += 1
        for branch in sorted(
            BRANCH_ORDER, key=lambda b: (asked_by_branch[b], BRANCH_ORDER.index(b))
        ):
            for question in self.bank.by_branch(branch):
                if question.qid not in model.asked_questions:
                    return question
        return None

    def ask(self, model: SmartUserModel) -> EITQuestion | None:
        """Pick the next question and mark it as asked (possibly unanswered)."""
        question = self.next_question(model)
        if question is not None:
            model.asked_questions.add(question.qid)
        return question

    def record_answer(
        self, model: SmartUserModel, question: EITQuestion, option_index: int
    ) -> AnswerOption:
        """Apply one answer to the SUM (Initialization-stage update).

        Emotional activations are applied attribute-wise; the option's
        ability score updates the question's Four-Branch branch.
        """
        if not 0 <= option_index < len(question.options):
            raise IndexError(
                f"option {option_index} out of range for {question.qid}"
            )
        option = question.options[option_index]
        for name, delta in option.activations.items():
            model.activate_emotion(name, delta)
        model.observe_branch(question.branch, option.ability)
        model.asked_questions.add(question.qid)
        model.answered_questions.add(question.qid)
        self.records.append(AnswerRecord(model.user_id, question.qid, option_index))
        return option

    # -- the sparse answer matrix (Section 5.2) ------------------------------

    def answer_matrix(
        self, user_ids: Sequence[int]
    ) -> tuple[sp.csr_matrix, list[str]]:
        """User × question matrix of chosen-option ability scores.

        Unanswered cells are structural zeros — this is the sparse matrix
        whose dimensionality Section 5.2 reduces before SVM training.
        Returns ``(matrix, question_ids)`` with rows following ``user_ids``.
        """
        question_ids = self.bank.question_ids()
        question_pos = {qid: j for j, qid in enumerate(question_ids)}
        user_pos = {int(uid): i for i, uid in enumerate(user_ids)}
        rows, cols, data = [], [], []
        for record in self.records:
            row = user_pos.get(record.user_id)
            col = question_pos.get(record.qid)
            if row is None or col is None:
                continue
            ability = self.bank.get(record.qid).options[record.option_index].ability
            rows.append(row)
            cols.append(col)
            # Shift abilities off zero so "answered with ability 0" is
            # distinguishable from "never answered".
            data.append(clamp01(ability) + 0.01)
        matrix = sp.csr_matrix(
            (data, (rows, cols)),
            shape=(len(user_ids), len(question_ids)),
            dtype=np.float64,
        )
        # Collapse duplicate (user, question) answers by keeping the sum;
        # re-asked questions are rare and the magnitude stays bounded.
        matrix.sum_duplicates()
        return matrix, question_ids

    def sparsity(self, user_ids: Sequence[int]) -> float:
        """Fraction of empty cells in the answer matrix (the paper's problem)."""
        matrix, __ = self.answer_matrix(user_ids)
        total = matrix.shape[0] * matrix.shape[1]
        return 1.0 - (matrix.nnz / total) if total else 1.0
