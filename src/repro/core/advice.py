"""The Advice stage: activation/inhibition of excitatory attributes.

Section 3: "Advice stage: this stage consists of providing emotional
information to recommender systems to improve recommendations made to the
user.  It is based on activation or inhibition of excitatory attributes
from each domain of interaction according to the emotional information."

A :class:`DomainProfile` declares, for one interaction domain (e.g.
"training courses"), which *item attributes* each *emotional attribute*
excites or inhibits.  The :class:`AdviceEngine` turns a user's emotional
state into per-item-attribute multipliers: >1 boosts items carrying the
attribute, <1 suppresses them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.emotions import EMOTION_CATALOG
from repro.core.sum_model import SmartUserModel


@dataclass(frozen=True)
class DomainProfile:
    """Excitatory links of one interaction domain.

    ``links[emotion][item_attribute] = gain`` with gain in [-1, 1]:
    positive gains mean the emotion makes the item attribute more
    appealing (activation), negative gains mean inhibition.
    """

    domain: str
    links: Mapping[str, Mapping[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for emotion, targets in self.links.items():
            if emotion not in EMOTION_CATALOG:
                raise KeyError(f"unknown emotional attribute {emotion!r}")
            for item_attribute, gain in targets.items():
                if not -1.0 <= gain <= 1.0:
                    raise ValueError(
                        f"gain {gain} for {emotion}->{item_attribute} "
                        "outside [-1, 1]"
                    )

    def __hash__(self) -> int:
        """Content hash consistent with the generated ``__eq__``.

        The frozen dataclass's auto-generated ``__hash__`` hashes the
        raw ``links`` mapping and raises ``TypeError`` on first use
        (dicts are unhashable), so profiles could never key caches or
        live in sets.  Hash the canonicalized link structure instead;
        ``links`` is treated as immutable after construction (the same
        assumption :meth:`layout` makes), so the value is computed once.
        """
        cached = self.__dict__.get("_hash")
        if cached is None:
            canonical = tuple(
                (emotion, tuple(sorted(targets.items())))
                for emotion, targets in sorted(self.links.items())
            )
            cached = hash((self.domain, canonical))
            object.__setattr__(self, "_hash", cached)
        return cached

    def layout(self) -> tuple[tuple[str, ...], tuple[str, ...], np.ndarray]:
        """``(emotions, item_attributes, gains)`` — computed once, cached.

        ``gains`` is the dense ``(n_emotions, n_attributes)`` gain matrix
        in sorted-emotion × sorted-attribute order, read-only.  ``links``
        is treated as immutable after construction (it was only ever
        validated once, in ``__post_init__``); every matrix consumer used
        to rebuild this layout per call.
        """
        cached = self.__dict__.get("_layout")
        if cached is None:
            emotions = tuple(sorted(self.links))
            attributes = tuple(
                sorted(
                    {
                        item_attribute
                        for targets in self.links.values()
                        for item_attribute in targets
                    }
                )
            )
            columns = {name: j for j, name in enumerate(attributes)}
            gains = np.zeros((len(emotions), len(attributes)))
            for row, emotion in enumerate(emotions):
                for item_attribute, gain in self.links[emotion].items():
                    gains[row, columns[item_attribute]] = gain
            gains.setflags(write=False)
            cached = (emotions, attributes, gains)
            # frozen dataclass: cache through object.__setattr__
            object.__setattr__(self, "_layout", cached)
        return cached

    def item_attributes(self) -> list[str]:
        """All item attributes referenced by this profile, sorted."""
        return list(self.layout()[1])


@dataclass(frozen=True)
class AdviceEngine:
    """Turns emotional states into item-attribute multipliers.

    Parameters
    ----------
    gain_scale:
        Full-intensity, full-gain deflection of a multiplier away from 1.
        With the default 0.5, multipliers live in [0.5, 1.5] per emotion
        link before combination.
    """

    gain_scale: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.gain_scale <= 1.0:
            raise ValueError(f"gain_scale {self.gain_scale} outside (0, 1]")

    def boosts(
        self, model: SmartUserModel, profile: DomainProfile
    ) -> dict[str, float]:
        """Multiplicative boost per item attribute for this user.

        Each emotion contributes ``1 + gain_scale * gain * intensity *
        sensibility`` and contributions multiply, so independent emotional
        evidence compounds while absent emotions (intensity 0) contribute
        exactly 1.  All outputs are positive.
        """
        multipliers = {name: 1.0 for name in profile.item_attributes()}
        for emotion, targets in profile.links.items():
            intensity = model.emotional[emotion]
            if intensity == 0.0:
                continue
            relevance = model.sensibility.get(emotion, 1.0)
            for item_attribute, gain in targets.items():
                factor = 1.0 + self.gain_scale * gain * intensity * relevance
                multipliers[item_attribute] *= max(factor, 0.05)
        return multipliers

    def adjust_scores(
        self,
        base_scores: Mapping[str, float],
        item_attributes: Mapping[str, Mapping[str, float]],
        model: SmartUserModel,
        profile: DomainProfile,
    ) -> dict[str, float]:
        """Apply boosts to base item scores.

        ``item_attributes[item][attribute] = presence`` in [0, 1]; an
        item's multiplier is the presence-weighted geometric interpolation
        of its attributes' boosts.
        """
        boosts = self.boosts(model, profile)
        adjusted = {}
        for item, base in base_scores.items():
            attributes = item_attributes.get(item, {})
            multiplier = 1.0
            for attribute, presence in attributes.items():
                boost = boosts.get(attribute, 1.0)
                multiplier *= boost ** max(0.0, min(1.0, presence))
            adjusted[item] = base * multiplier
        return adjusted

    # -- vectorized batch path --------------------------------------------

    def boosts_matrix(
        self, models: Sequence[SmartUserModel], profile: DomainProfile
    ) -> np.ndarray:
        """Per-user attribute boosts as a ``(n_users, n_attributes)`` array.

        Row ``u`` equals :meth:`boosts` for ``models[u]`` with columns in
        :meth:`DomainProfile.item_attributes` order.  One tensor product
        replaces the per-user, per-link dict passes.

        ``models`` may be a plain sequence of user models *or* a
        :class:`~repro.core.sum_store.SumBatch`: the batch exposes its
        intensity and sensibility blocks as column slices, so no
        per-model scalar reads happen at all on the columnar path.
        """
        emotions, attributes, gains = profile.layout()
        if not len(models) or not attributes:
            return np.ones((len(models), len(attributes)))
        if hasattr(models, "intensity_matrix"):
            intensity = models.intensity_matrix(emotions)
            relevance = models.sensibility_matrix(emotions, default=1.0)
        else:
            intensity = np.asarray(
                [[m.emotional[e] for e in emotions] for m in models]
            )
            relevance = np.asarray(
                [[m.sensibility.get(e, 1.0) for e in emotions] for m in models]
            )
        # factor[u, e, a] = 1 + gain_scale·gain·intensity·sensibility,
        # floored at 0.05 exactly as in the scalar path; absent links have
        # gain 0 and contribute a factor of exactly 1.  Accumulating one
        # emotion at a time keeps the working set at (users × attributes)
        # instead of materializing the full 3-D factor tensor; the
        # per-element multiplication order is unchanged (e = 0..E−1), so
        # the result is bit-identical.
        evidence = intensity * relevance
        boosts = np.ones((len(models), len(attributes)))
        for row in range(len(emotions)):
            factor = 1.0 + self.gain_scale * np.multiply.outer(
                evidence[:, row], gains[row]
            )
            np.maximum(factor, 0.05, out=factor)
            boosts *= factor
        return boosts

    def presence_matrix(
        self,
        items: Sequence[object],
        item_attributes: Mapping[object, Mapping[str, float]],
        profile: DomainProfile,
    ) -> np.ndarray:
        """Clamped ``(n_items, n_attributes)`` attribute-presence matrix."""
        attributes = profile.item_attributes()
        presence = np.zeros((len(items), len(attributes)))
        columns = {name: j for j, name in enumerate(attributes)}
        for row, item in enumerate(items):
            for attribute, value in item_attributes.get(item, {}).items():
                column = columns.get(attribute)
                if column is not None:
                    presence[row, column] = max(0.0, min(1.0, value))
        return presence

    def multiplier_matrix(
        self,
        models: Sequence[SmartUserModel],
        items: Sequence[object],
        item_attributes: Mapping[object, Mapping[str, float]],
        profile: DomainProfile,
    ) -> np.ndarray:
        """Emotional multipliers for every (user, item) pair at once.

        ``multiplier[u, i] = Π_a boosts[u, a] ** presence[i, a]`` computed
        in log space, so the whole Advice stage is two matmul-shaped ops.
        """
        boosts = self.boosts_matrix(models, profile)
        if boosts.shape[1] == 0:
            return np.ones((len(models), len(items)))
        presence = self.presence_matrix(items, item_attributes, profile)
        return np.exp(np.log(boosts) @ presence.T)

    def adjust_matrix(
        self,
        base: np.ndarray,
        models: Sequence[SmartUserModel],
        items: Sequence[object],
        item_attributes: Mapping[object, Mapping[str, float]],
        profile: DomainProfile,
    ) -> np.ndarray:
        """Vectorized :meth:`adjust_scores` over a ``(users × items)`` batch.

        ``base[u, i]`` is the emotion-free score of ``items[i]`` for
        ``models[u]``; the result applies the same presence-weighted
        geometric boosts as the scalar path, as ndarray ops.
        """
        base = np.asarray(base, dtype=np.float64)
        if base.shape != (len(models), len(items)):
            raise ValueError(
                f"base scores shape {base.shape} does not match "
                f"({len(models)}, {len(items)})"
            )
        return base * self.multiplier_matrix(
            models, items, item_attributes, profile
        )
