"""Reward/punish reinforcement — the Update stage of Section 3.

"Update stage: this stage keeps the SUM informed of user changes according
to recent interactions based on reward and punish mechanisms."  Section
5.2: "each time that users open and surf the recommendation sent in Push
or newsletters communications ... the reward mechanism works to reinforce
the related attributes and values".

:class:`ReinforcementPolicy` implements that mechanism with three knobs:

* ``learning_rate`` — how strongly one interaction moves an attribute;
* ``punish_ratio`` — how much weaker punishment is than reward (asymmetric
  updates keep hard-won positive attributes from being erased by a single
  ignored newsletter);
* ``decay`` — multiplicative forgetting applied between campaigns so stale
  attributes fade unless re-reinforced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.emotions import clamp01
from repro.core.sum_model import SmartUserModel


@dataclass(frozen=True)
class ReinforcementPolicy:
    """Bounded, asymmetric reward/punish updates on SUM attributes."""

    learning_rate: float = 0.20
    punish_ratio: float = 0.5
    decay: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError(f"learning_rate {self.learning_rate} outside (0, 1]")
        if not 0.0 <= self.punish_ratio <= 1.0:
            raise ValueError(f"punish_ratio {self.punish_ratio} outside [0, 1]")
        if not 0.0 <= self.decay < 1.0:
            raise ValueError(f"decay {self.decay} outside [0, 1)")

    def reward(
        self,
        model: SmartUserModel,
        attributes: Iterable[str],
        strength: float = 1.0,
    ) -> None:
        """Reinforce emotional attributes after a positive interaction.

        ``strength`` scales the learning rate (e.g. 0.3 for an open, 1.0
        for a transaction).  Sensibility weights are pulled up alongside
        the intensities, mirroring Fig. 4's joint attribute/value update.
        """
        step = self.learning_rate * clamp01(strength)
        for name in attributes:
            model.activate_emotion(name, step)
            current = model.sensibility.get(name, 0.0)
            model.set_sensibility(name, current + step * 0.5)

    def punish(
        self,
        model: SmartUserModel,
        attributes: Iterable[str],
        strength: float = 1.0,
    ) -> None:
        """Weaken emotional attributes after a negative interaction."""
        step = self.learning_rate * self.punish_ratio * clamp01(strength)
        for name in attributes:
            model.activate_emotion(name, -step)
            current = model.sensibility.get(name, 0.0)
            model.set_sensibility(name, current - step * 0.5)

    def apply_decay(self, model: SmartUserModel) -> None:
        """Forget a little of everything (between campaign rounds)."""
        model.emotional.decay(self.decay)
        for name in list(model.sensibility):
            model.sensibility[name] = clamp01(
                model.sensibility[name] * (1.0 - self.decay)
            )
