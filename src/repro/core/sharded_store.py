"""Partitioned SUM plane: N columnar stores behind one router.

The paper's SUM is per-user state updated by the Fig. 4 loop, which makes
the population trivially partitionable by user id.  PR 3/4 built the
columnar store and its mmap read replicas but left one global writer lock
in front of the whole population.  :class:`ShardedSumStore` finishes the
job: it owns ``P`` independent :class:`~repro.core.sum_store.
ColumnarSumStore` partitions keyed by the *same*
:func:`~repro.streaming.bus.partition_for` hash the event bus already
routes with — so the shard worker that owns a user's event stream is
also the only writer of that user's store partition, and writer threads
on different partitions never contend on a lock.

The router exposes the full store surface (``get``/``get_or_create``,
``batch``, ``rows_for``, ``freeze_view``, ``batch_apply_ops``,
``decay_tick``, ``feature_matrix``, ``dumps``/``loads``,
``save``/``load``, ``compact_vocab``), so every existing layer —
:class:`~repro.streaming.cache.SumCache`,
:class:`~repro.streaming.consumer.ShardWorker`,
:class:`~repro.serving.service.RecommendationService`, the campaign
engine — runs on top of it unchanged.  Vocabularies intern *per shard*:
a campaign attribute seen only by shard 3's users allocates columns only
there.

Persistence is the refresh protocol's on-disk contract
(:mod:`repro.serving.replica` drives it):

.. code-block:: text

    root/
      manifest.json          {"generation": 7, "n_shards": 4,
                              "path": "gen-000007", ...}
      gen-000006/            previous checkpoint (replicas may still map it)
      gen-000007/
        shard-00/            one Catalog directory per partition
        shard-01/ ...

Each :meth:`ShardedSumStore.save` writes a complete new generation
directory, renames it into place, then atomically replaces the manifest
— a replica polling ``manifest.json`` either sees the old complete
generation or the new complete generation, never a half-written one.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.core.sum_model import SumRepository, UnknownUserError
from repro.core.sum_store import (
    ColumnarSumStore,
    SumRowView,
    validate_batch_ops,
)
from repro.core.emotions import EMOTION_NAMES
from repro.core.four_branch import BRANCH_ORDER
from repro.streaming.bus import partition_for

#: the refresh-protocol manifest file at the root of a sharded save dir
MANIFEST_NAME = "manifest.json"
_FORMAT = "sharded-sum-store"


def read_manifest(directory: str | Path) -> dict[str, Any] | None:
    """The current manifest of a sharded save directory (``None`` if absent).

    Safe to call concurrently with :meth:`ShardedSumStore.save`: the
    manifest is replaced atomically (``os.replace``), so a reader sees
    either the previous or the new complete manifest, never a torn one.
    """
    path = Path(directory) / MANIFEST_NAME
    try:
        payload = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    manifest = json.loads(payload)
    if manifest.get("format") != _FORMAT:
        raise ValueError(
            f"{path} is not a sharded SUM store manifest "
            f"(format={manifest.get('format')!r})"
        )
    return manifest


def generation_dirs(directory: str | Path) -> list[tuple[int, Path]]:
    """All complete generation directories under ``directory``, oldest first.

    Retention helpers use this to prune superseded checkpoints; the
    generation the manifest currently points at is always part of the
    listing (callers must keep it).
    """
    root = Path(directory)
    found: list[tuple[int, Path]] = []
    if not root.is_dir():
        return found
    for entry in root.iterdir():
        name = entry.name
        if entry.is_dir() and name.startswith("gen-") and not name.endswith(".tmp"):
            try:
                found.append((int(name[4:]), entry))
            except ValueError:
                continue
    found.sort()
    return found


def _link_tree(src: Path, dst: Path) -> None:
    """Replicate ``src`` into ``dst`` via hardlinks (copy fallback).

    The delta-checkpoint fast path: an untouched shard's page files are
    identical byte for byte, so the new generation links the previous
    generation's inodes instead of re-serializing megabytes of columns.
    Retention pruning (``shutil.rmtree`` on old generations) stays safe —
    the inodes live until their last link goes.  Filesystems without
    hardlinks (or cross-device roots) fall back to plain copies.
    """
    dst.mkdir(parents=True, exist_ok=True)
    for entry in src.iterdir():
        target = dst / entry.name
        if entry.is_dir():
            _link_tree(entry, target)
            continue
        try:
            os.link(entry, target)
        except OSError:
            shutil.copy2(entry, target)


class ShardedBatch:
    """A cross-shard batch: per-shard sub-batches + a gather index.

    Duck-types the consumer surface of :class:`~repro.core.sum_store.
    SumBatch` / :class:`~repro.core.sum_store.FrozenSumBatch` (``len``,
    iteration, the ``*_matrix`` reads, ``versions`` when the parts carry
    stamps), reassembling each shard's column slices into request order —
    so the Advice stage takes the same matrix path over a partitioned
    population as over a single store, bit-equal row for row.
    """

    __slots__ = ("user_ids", "parts", "_resolve", "_versions")

    def __init__(
        self,
        user_ids: Sequence[int],
        parts: Sequence[tuple[Sequence[int], Any]],
        resolve=None,
    ) -> None:
        #: ``parts`` pairs each sub-batch with the positions (indices into
        #: ``user_ids``) its rows occupy in the assembled request order
        self.user_ids = list(user_ids)
        self.parts = list(parts)
        self._resolve = resolve
        self._versions: dict[int, int] | None = None

    def __len__(self) -> int:
        return len(self.user_ids)

    def __iter__(self) -> Iterator[SumRowView]:
        if self._resolve is None:
            raise TypeError(
                "this sharded batch has no per-model resolver; read it "
                "through the matrix accessors"
            )
        for uid in self.user_ids:
            yield self._resolve(uid)

    @property
    def versions(self) -> dict[int, int]:
        """Merged per-user version stamps (frozen captures only)."""
        if self._versions is None:
            merged: dict[int, int] = {}
            for __, sub in self.parts:
                merged.update(sub.versions)
            self._versions = {
                uid: merged.get(uid, 0) for uid in self.user_ids
            }
        return self._versions

    def _gather(self, method: str, *args) -> np.ndarray:
        out: np.ndarray | None = None
        for positions, sub in self.parts:
            block = getattr(sub, method)(*args)
            if out is None:
                out = np.empty(
                    (len(self.user_ids), block.shape[1]), dtype=block.dtype
                )
            out[np.asarray(positions, dtype=np.intp)] = block
        if out is None:  # empty batch: width comes from the order argument
            return np.zeros((0, len(args[0])))
        return out

    def intensity_matrix(self, order: Sequence[str]) -> np.ndarray:
        """``(n_users, len(order))`` emotional intensities, request order."""
        return self._gather("intensity_matrix", order)

    def sensibility_matrix(
        self, order: Sequence[str], default: float = 1.0
    ) -> np.ndarray:
        """``(n_users, len(order))`` sensibilities; absent → ``default``."""
        return self._gather("sensibility_matrix", order, default)

    def subjective_matrix(
        self, order: Sequence[str], default: float = 0.5
    ) -> np.ndarray:
        """``(n_users, len(order))`` subjective tendencies."""
        return self._gather("subjective_matrix", order, default)

    def evidence_matrix(
        self, order: Sequence[str], default: float = 0.0
    ) -> np.ndarray:
        """``(n_users, len(order))`` observation counters (as float64)."""
        return self._gather("evidence_matrix", order, default)


class ShardedSumStore:
    """``P`` independent columnar SUM partitions behind one router.

    Routing is :func:`~repro.streaming.bus.partition_for` on the user id
    — deterministic, and identical to the event bus's partitioner, so a
    topic with the same partition count pins each shard worker to
    exactly one store partition.  Every partition is a full
    :class:`~repro.core.sum_store.ColumnarSumStore` with its own lock,
    its own dynamically interned vocabularies and its own page
    directory on disk.
    """

    def __init__(
        self,
        n_shards: int = 4,
        initial_capacity: int = 1024,
        shard_factory: Callable[[int, int], ColumnarSumStore] | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        per_shard = max(1, int(initial_capacity) // int(n_shards))
        #: ``shard_factory(shard_index, capacity)`` builds one partition —
        #: the hook :class:`~repro.core.shm_store.MultiProcSumStore` uses
        #: to back each partition's pages with shared memory
        factory = shard_factory if shard_factory is not None else (
            lambda __, capacity: ColumnarSumStore(initial_capacity=capacity)
        )
        self.shards: tuple[ColumnarSumStore, ...] = tuple(
            factory(i, per_shard) for i in range(int(n_shards))
        )
        self._snapshot_generation: int | None = None
        self._global_floor: int | None = None
        #: per save-root checkpoint marks for delta saves: resolved root
        #: -> (generation written, per-shard mutation-clock values at
        #: that write) — an untouched shard hardlinks the previous
        #: generation's page files instead of re-serializing them
        self._checkpoint_marks: dict[str, tuple[int, list[int]]] = {}

    # -- routing -------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, user_id: int) -> int:
        """The partition index owning ``user_id`` (stable hash routing).

        Identical to :func:`~repro.streaming.bus.partition_for` — which,
        for integer keys, is plain modulo; the router's hot loops inline
        that rather than pay a function call per id.
        """
        return partition_for(int(user_id), len(self.shards))

    def shard_for(self, user_id: int) -> ColumnarSumStore:
        """The partition store owning ``user_id``."""
        return self.shards[self.shard_of(user_id)]

    def _grouped(self, ids: Sequence[int]) -> dict[int, list[int]]:
        """positions of ``ids`` grouped by owning shard (insertion order).

        ``ids`` must already be ints (every caller coerces) — routing is
        then ``uid % P``, bit-identical to :func:`partition_for`.
        """
        grouped: dict[int, list[int]] = {}
        n = len(self.shards)
        for pos, uid in enumerate(ids):
            grouped.setdefault(uid % n, []).append(pos)
        return grouped

    # -- repository duck-type ------------------------------------------------

    def get_or_create(self, user_id: int) -> SumRowView:
        """Fetch a user's SUM view, creating a row in the owning shard."""
        return self.shard_for(user_id).get_or_create(user_id)

    def get(self, user_id: int) -> SumRowView:
        """Fetch an existing SUM view; raises for unknown users."""
        return self.shard_for(user_id).get(user_id)

    def freeze_view(self, user_id: int) -> SumRowView:
        """Immutable point-in-time copy of one user's SUM (see the shard)."""
        return self.shard_for(user_id).freeze_view(user_id)

    def __contains__(self, user_id: object) -> bool:
        shard = self.shards[partition_for(user_id, len(self.shards))]
        return user_id in shard

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def __iter__(self) -> Iterator[SumRowView]:
        for uid in self.user_ids():
            yield self.get(uid)

    def user_ids(self) -> list[int]:
        """Sorted user ids with a SUM, across every shard."""
        ids: list[int] = []
        for shard in self.shards:
            ids.extend(shard._row_of)
        ids.sort()
        return ids

    @property
    def readonly(self) -> bool:
        """Whether this store is a read-only (mmap-loaded) replica."""
        return bool(self.shards) and all(s.readonly for s in self.shards)

    # -- freshness floors ----------------------------------------------------

    @property
    def snapshot_generation(self) -> int | None:
        """Generation of the checkpoint this store was loaded from."""
        return self._snapshot_generation

    def version(self, user_id: int) -> int | None:
        """Persisted per-user version floor (replicas; ``None`` live)."""
        return self.shard_for(user_id).version(user_id)

    @property
    def global_version(self) -> int | None:
        """Persisted global version floor (``None`` on live stores)."""
        if self._global_floor is not None:
            return int(self._global_floor)
        return self._snapshot_generation

    # -- batch resolution ----------------------------------------------------

    def rows_for(
        self, user_ids: Sequence[int], create: bool = False
    ) -> np.ndarray:
        """``(len(ids), 2)`` array of ``(shard, local row)`` addresses.

        Same contract as the single store's ``rows_for`` — unknown users
        (with ``create=False``) raise one :class:`~repro.core.sum_model.
        UnknownUserError` naming every offending id *across all shards*;
        ``create=True`` creates missing rows in their owning shards.
        """
        ids = [int(uid) for uid in user_ids]
        out = np.empty((len(ids), 2), dtype=np.intp)
        missing: list[int] = []
        n = len(self.shards)
        for i, uid in enumerate(ids):
            s = uid % n
            row = self.shards[s]._row_of.get(uid)
            if row is None:
                if create:
                    row = self.shards[s]._new_row(uid)
                else:
                    missing.append(uid)
                    row = -1
            out[i, 0] = s
            out[i, 1] = row
        if missing:
            raise UnknownUserError(missing)
        return out

    def batch(
        self, user_ids: Sequence[int] | None = None, create: bool = False
    ):
        """Resolve a batch for columnar reads (default: every user).

        One shard touched → that shard's plain
        :class:`~repro.core.sum_store.SumBatch` (zero assembly cost);
        otherwise a :class:`ShardedBatch` gathering per-shard slices
        into request order.
        """
        ids = (
            [int(uid) for uid in user_ids]
            if user_ids is not None
            else self.user_ids()
        )
        # Validate (or create) the whole batch up front so unknown users
        # fail as one typed error naming every id, not shard by shard.
        self.rows_for(ids, create=create)
        parts = []
        for s, positions in self._grouped(ids).items():
            sub = self.shards[s].batch([ids[p] for p in positions])
            parts.append((positions, sub))
        if len(parts) == 1:
            return parts[0][1]
        return ShardedBatch(ids, parts, resolve=self.get)

    def feature_matrix(
        self,
        user_ids: Sequence[int] | None = None,
        subjective_order: Sequence[str] = (),
        include_ei: bool = True,
    ) -> tuple[np.ndarray, list[int]]:
        """Cross-shard :meth:`ColumnarSumStore.feature_matrix` (row order
        preserved; bit-equal to the single-store slices per row)."""
        ids = (
            [int(uid) for uid in user_ids]
            if user_ids is not None
            else self.user_ids()
        )
        subjective_order = tuple(subjective_order)
        width = len(EMOTION_NAMES) + len(subjective_order) + (
            len(BRANCH_ORDER) if include_ei else 0
        )
        if not ids:
            return np.zeros((0, width)), []
        self.rows_for(ids)  # one typed error naming every unknown id
        out = np.empty((len(ids), width))
        for s, positions in self._grouped(ids).items():
            block, __ = self.shards[s].feature_matrix(
                [ids[p] for p in positions], subjective_order, include_ei
            )
            out[np.asarray(positions, dtype=np.intp)] = block
        return out, ids

    # -- vectorized update path ----------------------------------------------

    def batch_apply_ops(self, items, policy) -> list[int]:
        """Apply per-user op sequences, each shard under its own lock.

        The whole cross-shard batch is validated *before any shard
        mutates* (the commit layer's fallback contract: a raising call
        leaves every partition untouched); writers hitting different
        partitions then commit concurrently — the tentpole's contention
        win.  Returns per-item applied counts aligned with ``items``.
        """
        if self.readonly:
            raise TypeError(
                "store is a read-only mmap replica; updates must run "
                "against the writable primary"
            )
        items = [(int(uid), tuple(ops)) for uid, ops in items]
        validate_batch_ops(items)
        n = len(self.shards)
        grouped: dict[int, list[int]] = {}
        for i, (uid, __) in enumerate(items):
            grouped.setdefault(uid % n, []).append(i)
        counts = [0] * len(items)
        for s, positions in grouped.items():
            shard = self.shards[s]
            sub_items = [items[p] for p in positions]
            # straight to the locked apply: the batch is already
            # normalized and validated, and re-validating per shard
            # would put Python work back inside every commit
            with shard._lock:
                shard_counts = shard._batch_apply_ops_locked(sub_items, policy)
            for p, count in zip(positions, shard_counts):
                counts[p] = count
        return counts

    def decay_tick(self, policy, user_ids: Sequence[int] | None = None) -> int:
        """One decay tick (default: every user); returns rows touched.

        Resolution, routing and validation happen in *one* pass over the
        ids (this is a population-cadence operation — per-id Python work
        is the cost that matters), and each shard's rows decay as one
        vectorized call under that shard's own lock.
        """
        if self.readonly:
            raise TypeError(
                "store is a read-only mmap replica; updates must run "
                "against the writable primary"
            )
        if user_ids is None:
            return sum(shard.decay_tick(policy) for shard in self.shards)
        n = len(self.shards)
        by_shard: list[list[int]] = [[] for __ in range(n)]
        missing: list[int] = []
        for uid in user_ids:
            uid = int(uid)
            row = self.shards[uid % n]._row_of.get(uid)
            if row is None:
                missing.append(uid)
            else:
                by_shard[uid % n].append(row)
        if missing:
            raise UnknownUserError(missing)
        touched = 0
        for s, rows in enumerate(by_shard):
            if not rows:
                continue
            shard = self.shards[s]
            with shard._lock:
                shard._decay_rows(np.asarray(rows, dtype=np.intp), policy)
            touched += len(rows)
        return touched

    # -- maintenance ---------------------------------------------------------

    def compact_vocab(self) -> int:
        """Per-shard vocabulary compaction; returns total columns dropped."""
        return sum(shard.compact_vocab() for shard in self.shards)

    # -- JSON import/export (SumRepository-compatible) ------------------------

    def dumps(self) -> str:
        """Serialize to the exact :meth:`SumRepository.dumps` JSON format."""
        return json.dumps([m.to_dict() for m in self], sort_keys=True)

    @classmethod
    def loads(cls, payload: str, n_shards: int = 4) -> "ShardedSumStore":
        """Inverse of :meth:`dumps`; accepts any SUM collection's dumps."""
        store = cls(n_shards=n_shards)
        for item in json.loads(payload):
            store.shard_for(item["user_id"])._ingest(item)
        return store

    @classmethod
    def from_repository(cls, repository, n_shards: int = 4) -> "ShardedSumStore":
        """Partition any SUM collection (object/columnar/sharded)."""
        store = cls(n_shards=n_shards)
        for model in repository:
            store.shard_for(model.user_id)._ingest(model.to_dict())
        return store

    def to_repository(self) -> SumRepository:
        """Export to an object-backed :class:`SumRepository` (deep copy)."""
        return SumRepository.loads(self.dumps())

    # -- generation-stamped persistence ---------------------------------------

    def save(
        self,
        directory: str | Path,
        *,
        versions: Mapping[int, int] | None = None,
        global_version: int | None = None,
    ) -> Path:
        """Write one complete checkpoint generation; returns its directory.

        The generation counter is monotonic per save root: each call
        reads the current manifest, writes ``gen-<g+1>/shard-XX`` page
        directories to a temp dir, renames the generation into place and
        atomically replaces ``manifest.json``.  ``versions`` (the
        streaming cache's per-user counters) is split per shard and
        persisted with the pages, so replicas report real version floors.

        Works on replicas too (save is a pure read) — re-checkpointing a
        served generation under a new root is how a standby seeds its own
        save directory.

        Checkpoint deltas: each save records every shard's mutation-clock
        value per save root.  A shard whose clock did not move since this
        store's previous save to the same root gets its page files
        *hardlinked* from that generation instead of re-serialized, so
        the checkpoint cost scales with the touched fraction of the
        population, not its size.  (A linked shard directory carries the
        per-shard meta of the generation it was first written in — the
        manifest's generation counter is the authoritative stamp, and
        version floors for an untouched shard are by definition
        unchanged under the streaming write path.)
        """
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        manifest = read_manifest(root)
        generation = (int(manifest["generation"]) + 1) if manifest else 1
        gen_name = f"gen-{generation:06d}"

        by_shard: list[dict[int, int] | None] = [None] * len(self.shards)
        if versions is not None:
            by_shard = [{} for __ in self.shards]
            for uid, v in versions.items():
                by_shard[self.shard_of(int(uid))][int(uid)] = int(v)

        # Clocks are read *before* serializing: a write racing the save
        # leaves the recorded value behind the live clock, so the next
        # save re-serializes that shard — over-writing is safe, skipping
        # a dirty shard is not.  (The checkpoint protocol syncs writers
        # first anyway; this is belt and braces.)
        root_key = str(root.resolve())
        marks = self._checkpoint_marks.get(root_key)
        clocks = [shard.mutation_count for shard in self.shards]

        work = root / (gen_name + ".tmp")
        if work.exists():
            shutil.rmtree(work)
        for i, shard in enumerate(self.shards):
            shard_dir = work / f"shard-{i:02d}"
            if marks is not None and i < len(marks[1]) and marks[1][i] == clocks[i]:
                previous = root / f"gen-{marks[0]:06d}" / f"shard-{i:02d}"
                if previous.is_dir():  # pruned → fall through to a full save
                    _link_tree(previous, shard_dir)
                    continue
            shard.save(
                shard_dir,
                generation=generation,
                versions=by_shard[i],
                global_version=global_version,
            )
        target = root / gen_name
        if target.exists():  # leftover of a crashed save that never
            shutil.rmtree(target)  # published a manifest: safe to replace
        os.replace(work, target)

        payload = {
            "format": _FORMAT,
            "generation": generation,
            "n_shards": len(self.shards),
            "path": gen_name,
        }
        if global_version is not None:
            payload["global_version"] = int(global_version)
        tmp_manifest = root / (MANIFEST_NAME + ".tmp")
        tmp_manifest.write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
        )
        os.replace(tmp_manifest, root / MANIFEST_NAME)
        self._checkpoint_marks[root_key] = (generation, clocks)
        return target

    @classmethod
    def load(cls, directory: str | Path, mmap: bool = False) -> "ShardedSumStore":
        """Load the generation the manifest currently points at.

        With ``mmap=True`` every shard's column pages are memory-mapped
        read-only (the replica layout: one physical page-cache copy per
        host, every write raises).  The returned store carries the
        checkpoint's generation and version floors.
        """
        from repro.db.storage import StorageError

        root = Path(directory)
        manifest = read_manifest(root)
        if manifest is None:
            raise StorageError(f"no {MANIFEST_NAME} under {root}")
        n_shards = int(manifest["n_shards"])
        gen_dir = root / str(manifest["path"])
        # minimal capacity: these placeholder partitions are replaced by
        # the loaded ones on the next line, so don't size real arrays
        store = cls(n_shards=n_shards, initial_capacity=n_shards)
        store.shards = tuple(
            ColumnarSumStore.load(gen_dir / f"shard-{i:02d}", mmap=mmap)
            for i in range(n_shards)
        )
        store._snapshot_generation = int(manifest["generation"])
        global_floor = manifest.get("global_version")
        store._global_floor = (
            int(global_floor) if global_floor is not None else None
        )
        return store
