"""Sensibility weighting — the Attributes Manager's relevancy detector.

Section 4 (component 3): "This agent automatically detects the level of
sensibility of each user for each of his/her dominant attributes by
automatically assigning weights (relevancies)."

The analyzer combines two signals per emotional attribute:

* **intensity** — how strongly the attribute is currently activated in the
  user's :class:`~repro.core.emotions.EmotionalState`;
* **evidence** — how many independent observations (EIT answers, rewarded
  interactions) support it, squashed through a saturating curve so a
  single lucky answer cannot dominate a long interaction history.

``weight = intensity^alpha * saturate(evidence)^beta`` — both exponents
configurable; weights land in [0, 1].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.emotions import EMOTION_NAMES, clamp01
from repro.core.sum_model import SmartUserModel


@dataclass(frozen=True)
class SensibilityAnalyzer:
    """Computes and installs sensibility weights on SUMs.

    Parameters
    ----------
    alpha:
        Exponent on intensity (>1 sharpens, <1 flattens).
    beta:
        Exponent on the saturated evidence term.
    evidence_scale:
        Observation count at which evidence support reaches ~63%.
    threshold:
        Default dominance threshold used by :meth:`dominant`.
    """

    alpha: float = 1.0
    beta: float = 0.5
    evidence_scale: float = 2.0
    threshold: float = 0.4

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta < 0:
            raise ValueError("alpha must be > 0 and beta >= 0")
        if self.evidence_scale <= 0:
            raise ValueError("evidence_scale must be positive")
        if not 0.0 <= self.threshold < 1.0:
            raise ValueError(f"threshold {self.threshold} outside [0, 1)")

    def weight(self, intensity: float, evidence: int) -> float:
        """The sensibility weight for one (intensity, evidence) pair."""
        intensity = clamp01(intensity)
        support = 1.0 - 2.718281828459045 ** (-max(evidence, 0) / self.evidence_scale)
        return clamp01((intensity ** self.alpha) * (support ** self.beta))

    def analyze(self, model: SmartUserModel) -> dict[str, float]:
        """Compute weights for every emotional attribute of one SUM.

        The weights are installed on the model (``model.sensibility``) and
        returned; they overwrite earlier reinforcement-era estimates, which
        is intended — this is the periodic re-analysis the Attributes
        Manager Agent performs over fresh LifeLogs.
        """
        weights = {}
        for name in EMOTION_NAMES:
            weights[name] = self.weight(
                model.emotional[name], model.evidence.get(name, 0)
            )
            model.set_sensibility(name, weights[name])
        return weights

    def dominant(
        self, model: SmartUserModel, threshold: float | None = None
    ) -> list[tuple[str, float]]:
        """Freshly analyzed dominant attributes above ``threshold``."""
        self.analyze(model)
        return model.dominant_attributes(
            self.threshold if threshold is None else threshold
        )
