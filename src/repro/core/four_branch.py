"""The Four-Branch Model of Emotional Intelligence (Table 1).

Section 3 grounds the Gradual EIT in the Mayer–Salovey–Caruso model as
measured by MSCEIT V2.0 (Mayer et al., 2003): four hierarchical branches,
each assessed by two task families, grouped into an Experiential and a
Strategic area.  Emotional intelligence "can be measured, ranging from
feelings of boredom to feelings of happiness and euphoria, from hostility
to fondness".

:func:`branch_table` regenerates the content of the paper's Table 1;
:class:`FourBranchProfile` holds per-branch scores and composes them into
area and total scores the way MSCEIT does (task → branch → area → total).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.emotions import clamp01


class Branch(enum.Enum):
    """The four branches, ordered from basic perception to regulation."""

    PERCEIVING = "perceiving"
    FACILITATING = "facilitating"
    UNDERSTANDING = "understanding"
    MANAGING = "managing"


class Area(enum.Enum):
    """MSCEIT's two-area grouping of the branches."""

    EXPERIENTIAL = "experiential"
    STRATEGIC = "strategic"


@dataclass(frozen=True)
class BranchInfo:
    """Descriptive record for one branch (a row of Table 1)."""

    branch: Branch
    title: str
    description: str
    tasks: tuple[str, ...]
    area: Area


#: Table 1 content: branch → (title, ability description, MSCEIT task
#: families, area membership).
BRANCHES: dict[Branch, BranchInfo] = {
    Branch.PERCEIVING: BranchInfo(
        Branch.PERCEIVING,
        "Perceiving Emotions",
        "the ability to perceive emotions in oneself and others, as well "
        "as in objects, art, stories and music",
        ("Faces", "Pictures"),
        Area.EXPERIENTIAL,
    ),
    Branch.FACILITATING: BranchInfo(
        Branch.FACILITATING,
        "Facilitating Thought",
        "the ability to generate, use and feel emotion as necessary to "
        "communicate feelings or employ them in other cognitive processes",
        ("Facilitation", "Sensations"),
        Area.EXPERIENTIAL,
    ),
    Branch.UNDERSTANDING: BranchInfo(
        Branch.UNDERSTANDING,
        "Understanding Emotions",
        "the ability to understand emotional information, how emotions "
        "combine and progress through relationship transitions",
        ("Changes", "Blends"),
        Area.STRATEGIC,
    ),
    Branch.MANAGING: BranchInfo(
        Branch.MANAGING,
        "Managing Emotions",
        "the ability to be open to feelings and to moderate them in "
        "oneself and others so as to promote personal understanding and "
        "growth",
        ("Emotion Management", "Emotional Relations"),
        Area.STRATEGIC,
    ),
}

#: Branch order used for vector layouts.
BRANCH_ORDER: tuple[Branch, ...] = (
    Branch.PERCEIVING,
    Branch.FACILITATING,
    Branch.UNDERSTANDING,
    Branch.MANAGING,
)


def branch_table() -> list[dict[str, str]]:
    """Table 1 rows as dicts (branch, title, tasks, area, description)."""
    rows = []
    for branch in BRANCH_ORDER:
        info = BRANCHES[branch]
        rows.append(
            {
                "branch": branch.value,
                "title": info.title,
                "tasks": ", ".join(info.tasks),
                "area": info.area.value,
                "description": info.description,
            }
        )
    return rows


@dataclass
class FourBranchProfile:
    """Per-branch ability scores in [0, 1] with MSCEIT-style composition.

    Scores aggregate bottom-up exactly like MSCEIT: task scores average
    into branch scores, branch scores average into area scores, and the
    total score averages the two areas.  :meth:`eiq` rescales the total to
    the familiar IQ-like metric (mean 100, sd 15).
    """

    scores: dict[Branch, float] = field(
        default_factory=lambda: {branch: 0.5 for branch in BRANCH_ORDER}
    )

    def __post_init__(self) -> None:
        for branch in BRANCH_ORDER:
            self.scores[branch] = clamp01(self.scores.get(branch, 0.5))

    @classmethod
    def from_task_scores(cls, task_scores: Mapping[str, float]) -> "FourBranchProfile":
        """Build from per-task scores keyed by Table 1 task names.

        Missing tasks fall back to the neutral 0.5; unknown task names are
        rejected to catch typos in question banks.
        """
        task_to_branch: dict[str, Branch] = {}
        for branch, info in BRANCHES.items():
            for task in info.tasks:
                task_to_branch[task] = branch
        unknown = set(task_scores) - set(task_to_branch)
        if unknown:
            raise KeyError(f"unknown MSCEIT tasks: {sorted(unknown)}")
        scores: dict[Branch, float] = {}
        for branch in BRANCH_ORDER:
            tasks = BRANCHES[branch].tasks
            values = [clamp01(task_scores[t]) for t in tasks if t in task_scores]
            scores[branch] = sum(values) / len(values) if values else 0.5
        return cls(scores)

    def branch_score(self, branch: Branch) -> float:
        """Score of one branch."""
        return self.scores[branch]

    def area_score(self, area: Area) -> float:
        """Mean of the branches belonging to ``area``."""
        members = [b for b in BRANCH_ORDER if BRANCHES[b].area is area]
        return sum(self.scores[b] for b in members) / len(members)

    def total_score(self) -> float:
        """Mean of the two area scores, in [0, 1]."""
        return (
            self.area_score(Area.EXPERIENTIAL) + self.area_score(Area.STRATEGIC)
        ) / 2.0

    def eiq(self) -> float:
        """IQ-style scaling of the total score: 100 + 15 · (2·total − 1)·2.

        A total of 0.5 maps to 100; the extremes 0 and 1 map to 70 and 130
        (±2 sd), matching how MSCEIT standard scores are reported.
        """
        return 100.0 + 30.0 * (2.0 * self.total_score() - 1.0)

    def update_branch(self, branch: Branch, observation: float,
                      learning_rate: float = 0.2) -> float:
        """Exponentially smooth one branch toward a new observation."""
        if not 0.0 <= learning_rate <= 1.0:
            raise ValueError(f"learning_rate {learning_rate} outside [0, 1]")
        observation = clamp01(observation)
        updated = (1 - learning_rate) * self.scores[branch] + learning_rate * observation
        self.scores[branch] = clamp01(updated)
        return self.scores[branch]
