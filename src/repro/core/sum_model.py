"""Smart User Models (SUMs).

Section 2: SUMs "act like unobtrusive intelligent user interfaces to
acquire, maintain and update the user's emotional information through an
incremental learning process in everyday life".  Section 5.1: the deployed
SUM "gathers 75 objective, subjective and emotional attributes" per user.

A :class:`SmartUserModel` therefore holds three attribute families:

* **objective** — socio-demographic facts (age, region, …), arbitrary
  values, set once and updated rarely;
* **subjective** — behavioural tendencies in [0, 1] (e.g. preference for
  online courses) learned from implicit feedback;
* **emotional** — an :class:`~repro.core.emotions.EmotionalState` plus a
  :class:`~repro.core.four_branch.FourBranchProfile`, learned by the
  Gradual EIT and the reward/punish loop.

Each non-objective attribute also carries a *sensibility* weight
(the "relevancies" the Attributes Manager Agent assigns automatically),
managed by :mod:`repro.core.sensibility`.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

import numpy as np

from repro.core.emotions import (
    EMOTION_NAMES,
    EmotionalState,
    clamp01,
)
from repro.core.four_branch import BRANCH_ORDER, Branch, FourBranchProfile


class UnknownUserError(KeyError):
    """A lookup named users that have no SUM.

    Raised with the *full* list of offending ids (``user_ids``) so batch
    callers — the serving path resolving a request's whole user list —
    can report every unknown user at once instead of 500ing on the first.
    Subclasses :class:`KeyError` so existing ``except KeyError`` callers
    keep working.
    """

    def __init__(self, user_ids: Iterable[int]) -> None:
        self.user_ids: tuple[int, ...] = tuple(int(uid) for uid in user_ids)
        shown = ", ".join(str(uid) for uid in self.user_ids[:20])
        if len(self.user_ids) > 20:
            shown += f", … ({len(self.user_ids)} total)"
        noun = "user" if len(self.user_ids) == 1 else "users"
        super().__init__(f"no SUM for {noun} {shown}")


class AttributeKind(enum.Enum):
    """The three attribute families of Section 5.1."""

    OBJECTIVE = "objective"
    SUBJECTIVE = "subjective"
    EMOTIONAL = "emotional"


@dataclass(frozen=True)
class AttributeSpec:
    """Declaration of one SUM attribute (name, family, documentation)."""

    name: str
    kind: AttributeKind
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute needs a name")


class SmartUserModel:
    """The per-user model: attributes, sensibilities, EI profile.

    Parameters
    ----------
    user_id:
        Stable identifier of the user across all LifeLog sources.
    """

    def __init__(self, user_id: int) -> None:
        self.user_id = int(user_id)
        self.objective: dict[str, Any] = {}
        self.subjective: dict[str, float] = {}
        self.emotional = EmotionalState()
        self.ei_profile = FourBranchProfile()
        #: sensibility weights (relevancies) per emotional/subjective attribute
        self.sensibility: dict[str, float] = {}
        #: evidence counters: how many observations back each attribute
        self.evidence: dict[str, int] = {}
        #: questions already asked by the Gradual EIT
        self.asked_questions: set[str] = set()
        self.answered_questions: set[str] = set()

    # -- objective/subjective ----------------------------------------------

    def set_objective(self, name: str, value: Any) -> None:
        """Record an objective (socio-demographic) fact."""
        self.objective[name] = value

    def set_subjective(self, name: str, value: float) -> None:
        """Set a subjective tendency, clamped to [0, 1]."""
        self.subjective[name] = clamp01(value)

    def nudge_subjective(self, name: str, delta: float) -> float:
        """Shift a subjective tendency by ``delta`` (clamped); returns it."""
        updated = clamp01(self.subjective.get(name, 0.5) + delta)
        self.subjective[name] = updated
        return updated

    # -- emotional -----------------------------------------------------------

    def activate_emotion(self, name: str, delta: float) -> float:
        """Stage-1/3 entry point: shift one emotional intensity.

        Also bumps the evidence counter so sensibility analysis can weigh
        how well-supported each attribute is.
        """
        value = self.emotional.activate(name, delta)
        self.evidence[name] = self.evidence.get(name, 0) + 1
        return value

    def observe_branch(self, branch: Branch, score: float,
                       learning_rate: float = 0.2) -> float:
        """Fold one EIT task observation into the Four-Branch profile."""
        return self.ei_profile.update_branch(branch, score, learning_rate)

    # -- sensibilities -----------------------------------------------------

    def set_sensibility(self, name: str, weight: float) -> None:
        """Set the relevancy weight of one attribute (clamped to [0, 1])."""
        self.sensibility[name] = clamp01(weight)

    def dominant_attributes(self, threshold: float = 0.5) -> list[tuple[str, float]]:
        """Attributes whose sensibility exceeds ``threshold``, strongest first.

        This is the paper's "attributes of his/her user model that exceed a
        sensibility threshold" (Section 5.3, step 3).
        """
        ranked = sorted(
            (
                (name, weight)
                for name, weight in self.sensibility.items()
                if weight > threshold
            ),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked

    # -- feature extraction ----------------------------------------------------

    def emotional_vector(self) -> np.ndarray:
        """Emotional intensities in catalog order."""
        return self.emotional.as_vector(EMOTION_NAMES)

    def feature_vector(
        self,
        subjective_order: Iterable[str] = (),
        include_ei: bool = True,
    ) -> np.ndarray:
        """Dense numeric features: emotional ∥ subjective ∥ EI branches."""
        parts = [self.emotional_vector()]
        subjective = np.asarray(
            [self.subjective.get(name, 0.5) for name in subjective_order],
            dtype=np.float64,
        )
        parts.append(subjective)
        if include_ei:
            parts.append(
                np.asarray(
                    [self.ei_profile.scores[b] for b in BRANCH_ORDER],
                    dtype=np.float64,
                )
            )
        return np.concatenate(parts)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the full model."""
        return {
            "user_id": self.user_id,
            "objective": dict(self.objective),
            "subjective": dict(self.subjective),
            "emotional": dict(self.emotional.intensities),
            "ei_profile": {b.value: s for b, s in self.ei_profile.scores.items()},
            "sensibility": dict(self.sensibility),
            "evidence": dict(self.evidence),
            "asked_questions": sorted(self.asked_questions),
            "answered_questions": sorted(self.answered_questions),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SmartUserModel":
        """Inverse of :meth:`to_dict`."""
        model = cls(payload["user_id"])
        model.objective = dict(payload.get("objective", {}))
        model.subjective = {
            k: clamp01(v) for k, v in payload.get("subjective", {}).items()
        }
        model.emotional = EmotionalState(dict(payload.get("emotional", {})))
        model.ei_profile = FourBranchProfile(
            {Branch(k): v for k, v in payload.get("ei_profile", {}).items()}
        )
        model.sensibility = {
            k: clamp01(v) for k, v in payload.get("sensibility", {}).items()
        }
        model.evidence = {k: int(v) for k, v in payload.get("evidence", {}).items()}
        model.asked_questions = set(payload.get("asked_questions", ()))
        model.answered_questions = set(payload.get("answered_questions", ()))
        return model

    def __repr__(self) -> str:
        dominant = [name for name, _ in self.dominant_attributes()][:3]
        return (
            f"SmartUserModel(user={self.user_id}, "
            f"mood={self.emotional.mood():+.2f}, dominant={dominant})"
        )


class SumRepository:
    """The SUM collection SPA maintains for the whole population."""

    def __init__(self) -> None:
        self._models: dict[int, SmartUserModel] = {}

    def get_or_create(self, user_id: int) -> SmartUserModel:
        """Fetch a user's SUM, creating an empty one on first contact.

        First contact can now arrive from several threads at once (shard
        workers and the serving path), so the insert uses ``setdefault``
        — atomic under the GIL — and every caller sees the same model.
        """
        user_id = int(user_id)
        model = self._models.get(user_id)
        if model is None:
            model = self._models.setdefault(user_id, SmartUserModel(user_id))
        return model

    def get(self, user_id: int) -> SmartUserModel:
        """Fetch an existing SUM; raises :class:`UnknownUserError`."""
        try:
            return self._models[int(user_id)]
        except KeyError:
            raise UnknownUserError([user_id]) from None

    def __contains__(self, user_id: object) -> bool:
        return user_id in self._models

    def __len__(self) -> int:
        return len(self._models)

    def __iter__(self) -> Iterator[SmartUserModel]:
        for user_id in sorted(self._models):
            yield self._models[user_id]

    def user_ids(self) -> list[int]:
        """Sorted user ids with a SUM."""
        return sorted(self._models)

    def feature_matrix(
        self,
        user_ids: Iterable[int] | None = None,
        subjective_order: Iterable[str] = (),
        include_ei: bool = True,
    ) -> tuple[np.ndarray, list[int]]:
        """Stack feature vectors for ``user_ids`` (default: all, sorted).

        Returns ``(matrix, row_user_ids)``.
        """
        ids = list(user_ids) if user_ids is not None else self.user_ids()
        subjective_order = tuple(subjective_order)
        rows = [
            self.get(uid).feature_vector(subjective_order, include_ei)
            for uid in ids
        ]
        if not rows:
            width = len(EMOTION_NAMES) + len(subjective_order) + (
                len(BRANCH_ORDER) if include_ei else 0
            )
            return np.zeros((0, width)), []
        return np.vstack(rows), ids

    def to_columnar(self):
        """Convert to a :class:`~repro.core.sum_store.ColumnarSumStore`.

        The struct-of-arrays backend serves the same API from contiguous
        columns; see :mod:`repro.core.sum_store`.
        """
        from repro.core.sum_store import ColumnarSumStore

        return ColumnarSumStore.from_repository(self)

    # -- persistence -------------------------------------------------------

    def dumps(self) -> str:
        """Serialize the whole repository to a JSON string."""
        return json.dumps([m.to_dict() for m in self], sort_keys=True)

    @classmethod
    def loads(cls, payload: str) -> "SumRepository":
        """Inverse of :meth:`dumps`."""
        repository = cls()
        for item in json.loads(payload):
            model = SmartUserModel.from_dict(item)
            repository._models[model.user_id] = model
        return repository
