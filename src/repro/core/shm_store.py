"""Shared-memory column pages: the cross-process SUM store backing.

The GIL serializes the Python half of every in-process commit, so PR 5's
sharded write plane never banked its measured win end to end.  This
module supplies the storage layer that lets each
:class:`~repro.core.sharded_store.ShardedSumStore` partition move to its
own OS process (:mod:`repro.streaming.procplane` supplies the transport):

* :class:`ShmArena` — an allocator whose arrays live in
  :class:`multiprocessing.shared_memory.SharedMemory` segments.  Plugged
  into :class:`~repro.core.sum_store.ColumnarSumStore` through its
  ``alloc`` hook, every dense block (family values/masks, user ids, EI)
  becomes a named segment any process can map — the writer process
  mutates in place and the serving process reads the *same physical
  pages* zero-copy.
* :class:`ShardControlBlock` — one small fixed segment per shard holding
  the cross-process handshake: a seqlock-protected layout manifest
  (array → segment name/shape/dtype, column orders), plus commit /
  heartbeat / applied-sequence counters the liveness and recovery
  protocols read.
* :class:`MultiProcSumStore` — a :class:`ShardedSumStore` whose
  partitions are arena-backed.  In-process it behaves exactly like the
  ``sharded`` backend (scalar views, batch applies, save/load — the
  whole tier-1 surface); the process plane is engaged explicitly and
  re-synchronizes the parent's mappings from each shard's control block.

Segment lifecycle
-----------------

``SharedMemory`` names live in ``/dev/shm`` until unlinked, and Python's
``resource_tracker`` (bpo-38119) would otherwise unlink a fork-inherited
segment when the *child* exits, yanking pages out from under the parent.
Every segment created or attached here is therefore immediately
unregistered from the tracker and owned by this module instead: arrays
are weakly tracked, dead arrays' segments are swept (closed + unlinked),
:meth:`ShmArena.close` releases everything an arena still holds, and an
``atexit`` hook closes every arena the process leaks.  Tests assert the
ledger is empty at session end (``tests/conftest.py``).
"""

from __future__ import annotations

import atexit
import json
import os
import time
import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro.analysis.contracts import (
    declare_lock,
    guarded_by,
    make_lock,
    requires_lock,
)
from repro.core.sharded_store import ShardedSumStore
from repro.core.sum_store import ColumnarSumStore

declare_lock("ShmArena._lock")

#: module-wide ledger of segment names this process created or attached
#: and has not yet released — the test-suite leak check reads it
_LIVE_SEGMENTS: dict[str, str] = {}

#: every arena this process built, for the atexit sweep (weak: an arena
#: collected after close() must not be kept alive by the hook)
_ARENAS: "weakref.WeakSet[ShmArena]" = weakref.WeakSet()


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Take a segment away from the resource tracker.

    The tracker unlinks every segment it knows about when the process
    that registered it exits — correct for one-process usage, fatal for
    fork-shared pages (the child's exit would unlink segments the parent
    still serves from).  Ownership moves to this module's explicit
    close/unlink paths instead.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker variations across 3.x
        pass


def live_segment_names() -> list[str]:
    """Names of segments this process still holds (leak-check surface)."""
    return sorted(_LIVE_SEGMENTS)


def _unlink_quiet(shm: shared_memory.SharedMemory) -> None:
    """Unlink without tracker noise.

    ``SharedMemory.unlink`` sends its own unregister message, which —
    after the creation-time :func:`_untrack` — would be the tracker's
    second and log a ``KeyError`` per segment.  Re-registering first
    balances the books.
    """
    try:
        resource_tracker.register(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker variations across 3.x
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        # the peer process already unlinked it — names are shared
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover
            pass


def _release_segment(
    shm: shared_memory.SharedMemory, unlink: bool
) -> bool:
    """Close (and optionally unlink) one segment; ``True`` when closed."""
    try:
        shm.close()
    except BufferError:
        # an ndarray still exports the buffer; retried on the next sweep
        return False
    if unlink:
        _unlink_quiet(shm)
    _LIVE_SEGMENTS.pop(shm.name, None)
    return True


@atexit.register
def _close_leaked_arenas() -> None:  # pragma: no cover - interpreter exit
    for arena in list(_ARENAS):
        arena.close()


@guarded_by("ShmArena._lock", "_entries", "_by_addr")
class ShmArena:
    """Allocates and tracks the shared-memory segments behind one store.

    ``alloc(shape, dtype)`` satisfies the
    :class:`~repro.core.sum_store.ColumnarSumStore` allocator contract:
    a zero-filled writable array (POSIX shm is zero pages by
    construction).  Each array maps 1:1 to one segment;
    :meth:`name_of` recovers the segment name from the array so the
    writer process can publish its layout, and :meth:`attach` maps a
    published segment in a peer process.

    Replaced arrays (capacity growth, compaction) are weakly tracked:
    once the array is garbage its segment is swept — closed and
    unlinked.  Unlinking only removes the *name*; processes that already
    map the segment keep valid pages, which is exactly the refresh
    protocol's window (the serving process re-attaches by name at the
    next sync, before the old name could be reused).
    """

    def __init__(self, tag: str = "sum") -> None:
        self.tag = str(tag)
        self._lock = make_lock("ShmArena._lock")
        #: segment name -> (segment, weakref to its array or None)
        self._entries: dict[
            str, tuple[shared_memory.SharedMemory, weakref.ref | None]
        ] = {}
        #: array data address -> segment name (name_of's index; addresses
        #: are stable for the array's lifetime and freed entries are
        #: dropped by the sweep before the address could be reused)
        self._by_addr: dict[int, str] = {}
        self._closed = False
        _ARENAS.add(self)

    # -- allocation ----------------------------------------------------------

    def alloc(self, shape: tuple[int, ...], dtype: Any) -> np.ndarray:
        """A zero-filled writable array on a fresh shared segment."""
        if self._closed:
            raise ValueError(f"arena {self.tag!r} is closed")
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dt.itemsize)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        _untrack(shm)
        array: np.ndarray = np.ndarray(shape, dtype=dt, buffer=shm.buf)
        with self._lock:
            self._register(shm, array)
            self._sweep_locked()
        return array

    def attach(
        self, name: str, shape: tuple[int, ...], dtype: Any
    ) -> np.ndarray:
        """Map a peer process's published segment as a writable array.

        Idempotent per name: re-attaching a segment this arena already
        maps returns the existing array (one mapping per process keeps
        ``name_of`` single-valued).
        """
        if self._closed:
            raise ValueError(f"arena {self.tag!r} is closed")
        with self._lock:
            entry = self._entries.get(name)
            if entry is not None:
                existing = entry[1]() if entry[1] is not None else None
                if existing is not None:
                    return existing
                # stale mapping (array died): drop the old handle before
                # remapping, or its fd would leak
                _release_segment(entry[0], unlink=False)
                del self._entries[name]
            shm = shared_memory.SharedMemory(name=name)
            _untrack(shm)
            array: np.ndarray = np.ndarray(
                tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf
            )
            self._register(shm, array)
            return array

    @requires_lock("ShmArena._lock")
    def _register(
        self, shm: shared_memory.SharedMemory, array: np.ndarray
    ) -> None:
        address = int(array.__array_interface__["data"][0])
        self._entries[shm.name] = (shm, weakref.ref(array))
        self._by_addr[address] = shm.name
        _LIVE_SEGMENTS[shm.name] = self.tag

    # -- lookup ---------------------------------------------------------------

    def name_of(self, array: np.ndarray) -> str:
        """The segment name backing ``array`` (raises if not arena-backed)."""
        address = int(array.__array_interface__["data"][0])
        name = self._by_addr.get(address)
        if name is None:
            raise KeyError(
                f"array at {address:#x} is not backed by arena {self.tag!r}"
            )
        return name

    def segment_names(self) -> list[str]:
        return sorted(self._entries)

    # -- reclamation ----------------------------------------------------------

    @requires_lock("ShmArena._lock")
    def _sweep_locked(self) -> None:
        dead = [
            name
            for name, (__, ref) in self._entries.items()
            if ref is not None and ref() is None
        ]
        for name in dead:
            shm, __ = self._entries[name]
            if _release_segment(shm, unlink=True):
                del self._entries[name]
                self._by_addr = {
                    addr: seg
                    for addr, seg in self._by_addr.items()
                    if seg != name
                }

    def sweep(self) -> None:
        """Release segments whose arrays are garbage (growth leftovers)."""
        with self._lock:
            self._sweep_locked()

    def close(self) -> None:
        """Release every segment this arena holds (idempotent).

        Arrays still referencing a segment keep it mapped until they die
        (``BufferError`` entries are unlinked by name but stay open); the
        ledger is cleared regardless — after ``close()`` the arena owns
        nothing.
        """
        if self._closed:
            return
        self._closed = True
        with self._lock:
            for name, (shm, __) in list(self._entries.items()):
                if not _release_segment(shm, unlink=True):
                    # name gone from /dev/shm either way; pages live on
                    # until the exporting arrays die
                    _unlink_quiet(shm)
                    _LIVE_SEGMENTS.pop(name, None)
            self._entries.clear()
            self._by_addr.clear()


class ShardControlBlock:
    """The per-shard cross-process handshake block (one small segment).

    Fixed int64 header slots::

        0  seqlock epoch   (odd = layout write in progress)
        1  commit version  (bumped once per committed batch)
        2  n_users         (rows the writer has published)
        3  heartbeat       (bumped by the worker loop; liveness)
        4  applied_seq     (last fully applied transport sequence)
        5  layout length   (bytes of JSON payload currently published)

    then ``LAYOUT_CAPACITY`` bytes of JSON: the shard's array layout
    (segment names, shapes, dtypes, column orders).  Writers publish
    under the seqlock (epoch odd while writing); readers retry until
    they observe one even epoch across the whole read — so a reader can
    never adopt a torn layout, whichever process it runs in.
    """

    SLOT_EPOCH = 0
    SLOT_COMMIT = 1
    SLOT_N_USERS = 2
    SLOT_HEARTBEAT = 3
    SLOT_APPLIED_SEQ = 4
    SLOT_LAYOUT_LEN = 5
    _N_SLOTS = 8
    _HEADER_BYTES = _N_SLOTS * 8
    LAYOUT_CAPACITY = 1 << 18  # 256 KiB of JSON — thousands of columns

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self._shm = shm
        self._slots: np.ndarray = np.ndarray(
            (self._N_SLOTS,), dtype=np.int64, buffer=shm.buf
        )
        self._payload: np.ndarray = np.ndarray(
            (self.LAYOUT_CAPACITY,),
            dtype=np.uint8,
            buffer=shm.buf,
            offset=self._HEADER_BYTES,
        )

    @classmethod
    def create(cls) -> "ShardControlBlock":
        shm = shared_memory.SharedMemory(
            create=True, size=cls._HEADER_BYTES + cls.LAYOUT_CAPACITY
        )
        _untrack(shm)
        _LIVE_SEGMENTS[shm.name] = "control"
        return cls(shm)

    @classmethod
    def attach(cls, name: str) -> "ShardControlBlock":
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        _LIVE_SEGMENTS[shm.name] = "control"
        return cls(shm)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self, unlink: bool = False) -> None:
        self._slots = None  # type: ignore[assignment]
        self._payload = None  # type: ignore[assignment]
        _release_segment(self._shm, unlink=unlink)

    # -- counters (single-word, torn-free on every 64-bit target) ------------

    def mark_commit(self) -> None:
        self._slots[self.SLOT_COMMIT] += 1

    @property
    def commit_version(self) -> int:
        return int(self._slots[self.SLOT_COMMIT])

    def beat(self) -> None:
        self._slots[self.SLOT_HEARTBEAT] += 1

    @property
    def heartbeat(self) -> int:
        return int(self._slots[self.SLOT_HEARTBEAT])

    @property
    def n_users(self) -> int:
        return int(self._slots[self.SLOT_N_USERS])

    @property
    def applied_seq(self) -> int:
        return int(self._slots[self.SLOT_APPLIED_SEQ])

    # -- layout (seqlock) -----------------------------------------------------

    def publish_layout(
        self, layout: Mapping[str, Any], n_users: int, applied_seq: int
    ) -> None:
        """Publish the shard's array layout + row count + applied seq.

        Single-writer by protocol (the shard's owning process), so the
        seqlock needs no CAS: epoch goes odd, payload and slots land,
        epoch goes even.
        """
        data = json.dumps(layout, sort_keys=True).encode("utf-8")
        if len(data) > self.LAYOUT_CAPACITY:
            raise ValueError(
                f"layout JSON is {len(data)} bytes; control block holds "
                f"{self.LAYOUT_CAPACITY}"
            )
        slots = self._slots
        slots[self.SLOT_EPOCH] += 1  # odd: write in progress
        self._payload[: len(data)] = np.frombuffer(data, dtype=np.uint8)
        slots[self.SLOT_LAYOUT_LEN] = len(data)
        slots[self.SLOT_N_USERS] = int(n_users)
        slots[self.SLOT_APPLIED_SEQ] = int(applied_seq)
        slots[self.SLOT_EPOCH] += 1  # even: committed

    def read_layout(
        self, timeout: float = 5.0
    ) -> tuple[dict[str, Any], int, int] | None:
        """``(layout, n_users, applied_seq)`` at one consistent epoch.

        Returns ``None`` when nothing was ever published.  Retries while
        a writer holds the seqlock odd; a writer stuck mid-publish past
        ``timeout`` raises (that process is gone or wedged — callers
        fall back to crash recovery).
        """
        slots = self._slots
        deadline = time.monotonic() + timeout
        while True:
            e1 = int(slots[self.SLOT_EPOCH])
            if e1 == 0:
                return None
            if e1 % 2 == 0:
                length = int(slots[self.SLOT_LAYOUT_LEN])
                n_users = int(slots[self.SLOT_N_USERS])
                applied_seq = int(slots[self.SLOT_APPLIED_SEQ])
                data = bytes(self._payload[:length])
                if int(slots[self.SLOT_EPOCH]) == e1:
                    return (
                        json.loads(data.decode("utf-8")),
                        n_users,
                        applied_seq,
                    )
            if time.monotonic() > deadline:
                raise TimeoutError(
                    "shard control block seqlock held odd past "
                    f"{timeout}s; writer process wedged or dead"
                )
            time.sleep(0.0005)


# -- layout (de)serialization helpers ----------------------------------------


def _array_spec(arena: ShmArena, array: np.ndarray) -> dict[str, Any]:
    return {
        "segment": arena.name_of(array),
        "shape": list(array.shape),
        "dtype": str(array.dtype),
    }


def shard_layout(arena: ShmArena, shard: ColumnarSumStore) -> dict[str, Any]:
    """The publishable layout of one arena-backed shard."""
    layout: dict[str, Any] = {
        "user_ids": _array_spec(arena, shard._user_ids),
        "ei": _array_spec(arena, shard._ei),
        # the per-row seqlock counters ride the manifest too: a reader
        # process that kept watching the pre-growth segment would miss
        # every odd window the writer opens on the replacement
        "row_gen": _array_spec(arena, shard._row_gen.values),
        "row_capacity": int(shard._capacity),
        "families": {},
    }
    for name, family in shard._named_families():
        layout["families"][name] = {
            "values": _array_spec(arena, family.values),
            "mask": _array_spec(arena, family.mask),
            "order": list(family.order),
        }
    return layout


def adopt_layout(
    arena: ShmArena, shard: ColumnarSumStore, layout: Mapping[str, Any],
    n_users: int,
) -> None:
    """Point ``shard``'s arrays at the published segments (zero-copy).

    The reader-side half of the handshake: attach every segment the
    layout names (idempotent for segments already mapped), swap the
    arrays in, rebuild the per-family registries from the published
    orders, and re-derive the Python-side row index and cold state for
    rows the writer created.  Caller must know the writer is quiescent
    (post-``sync``) — the shard lock below serializes the swap against
    *this* process's readers, not the remote writer.
    """
    with shard._lock:
        spec = layout["user_ids"]
        shard._user_ids = arena.attach(
            spec["segment"], spec["shape"], spec["dtype"]
        )
        spec = layout["ei"]
        shard._ei = arena.attach(spec["segment"], spec["shape"], spec["dtype"])
        spec = layout.get("row_gen")
        if spec is not None:
            # swap the counters in place: families alias the same
            # _RowGenerations object, so rebinding .values repoints every
            # writer bump and every lock-free reader at once
            shard._row_gen.values = arena.attach(
                spec["segment"], spec["shape"], spec["dtype"]
            )
        shard._capacity = int(layout["row_capacity"])
        for name, family in shard._named_families():
            published = layout["families"][name]
            spec = published["values"]
            family.values = arena.attach(
                spec["segment"], spec["shape"], spec["dtype"]
            )
            spec = published["mask"]
            family.mask = arena.attach(
                spec["segment"], spec["shape"], spec["dtype"]
            )
            order = [str(column) for column in published["order"]]
            # fresh registries (frozen captures share the old ones by
            # reference)
            family.index = {column: j for j, column in enumerate(order)}
            family.order = order
        n = int(n_users)
        shard._row_of = {
            int(uid): row for row, uid in enumerate(shard._user_ids[:n])
        }
        # Streaming creates rows with empty cold state (objective/EIT
        # writes never ride the event path), so parent-side placeholders
        # are exact.
        while len(shard._objective) < n:
            shard._objective.append({})
            shard._asked.append(set())
            shard._answered.append(set())
        shard._n = n
        # arrays were swapped wholesale: advance the layout epoch (even
        # to even) so mirror captures staged against the old segments
        # restage everything instead of trusting stale stamps
        shard._layout_epoch += 2


def copy_shard_into(src: ColumnarSumStore, dst: ColumnarSumStore) -> None:
    """Bulk-copy one shard's state into a freshly built (empty) shard.

    The recovery path: a checkpoint loads as a heap-backed
    :class:`ColumnarSumStore`, and the restarted worker needs that state
    on *arena* pages — so the plane allocates an empty arena-backed
    shard and copies column-wise (no per-user object round trip).
    """
    if len(dst):
        raise ValueError("copy_shard_into needs an empty destination shard")
    ids = [int(uid) for uid in src.user_ids()]
    if not ids:
        return
    with dst._lock:
        rows = dst.rows_for(ids, create=True)
        src_rows = src.rows_for(ids)
        dst._ei[rows] = src._ei[src_rows]
        for (name, src_family), (__, dst_family) in zip(
            src._named_families(), dst._named_families()
        ):
            for column in src_family.order:
                sj = src_family.index[column]
                dj = dst_family.ensure_column(column)
                dst_family.values[rows, dj] = src_family.values[src_rows, sj]
                dst_family.mask[rows, dj] = src_family.mask[src_rows, sj]
        for r, sr in zip(rows, src_rows):
            dst._objective[r] = dict(src._objective[sr])
            dst._asked[r] = set(src._asked[sr])
            dst._answered[r] = set(src._answered[sr])


class MultiProcSumStore(ShardedSumStore):
    """A sharded SUM store whose partitions live on shared-memory pages.

    Constructing one spawns **no** processes: in-process it is a
    :class:`~repro.core.sharded_store.ShardedSumStore` whose every dense
    block happens to sit on named segments — the full store surface
    (scalar views, ``batch_apply_ops``, caches, save/load, thread-based
    :class:`~repro.streaming.updater.StreamingUpdater`) works unchanged,
    which is what lets it ride the tier-1 backend matrix.  The process
    plane (:class:`~repro.streaming.procplane.MultiProcUpdater`) engages
    the cross-process half explicitly: it forks one writer process per
    shard, and :meth:`resync` re-adopts each shard's published layout in
    this (the serving) process once writers are quiescent.

    Ownership handshake: the parent mutates only while no worker process
    runs (or between ``sync`` barriers); while the plane runs, each
    shard's worker process is its sole writer.
    """

    def __init__(
        self, n_shards: int = 4, initial_capacity: int = 1024
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.arenas: tuple[ShmArena, ...] = tuple(
            ShmArena(tag=f"shard-{i:02d}") for i in range(int(n_shards))
        )
        arenas = self.arenas

        def factory(i: int, capacity: int) -> ColumnarSumStore:
            return ColumnarSumStore(
                initial_capacity=capacity, alloc=arenas[i].alloc
            )

        super().__init__(
            n_shards=n_shards,
            initial_capacity=initial_capacity,
            shard_factory=factory,
        )
        self.controls: tuple[ShardControlBlock, ...] = tuple(
            ShardControlBlock.create() for __ in range(int(n_shards))
        )
        #: last commit_version observed per shard — worker processes bump
        #: their own copy-on-write Python clocks, so the parent derives
        #: "this shard changed" from the shared counter instead
        self._commit_seen = [0] * int(n_shards)
        self._closed = False
        # last resort: unlink the segments when the store is collected
        # without an explicit close() (tests, interactive sessions)
        self._finalizer = weakref.finalize(
            self, _finalize_store, self.arenas, self.controls
        )

    # -- cross-process sync ---------------------------------------------------

    def publish_shard(self, shard_index: int, applied_seq: int = 0) -> None:
        """Publish one shard's current layout to its control block.

        Called by whichever process currently owns the shard's mutation
        (the worker after commits; the parent before handing ownership
        over).
        """
        i = int(shard_index)
        shard = self.shards[i]
        self.controls[i].publish_layout(
            shard_layout(self.arenas[i], shard),
            n_users=len(shard),
            applied_seq=applied_seq,
        )

    def resync_shard(self, shard_index: int) -> int:
        """Adopt one shard's published layout in this process.

        Returns the shard's published ``applied_seq``.  No-op (beyond
        counter reads) when the layout still names the arrays this
        process already maps.  Writers must be quiescent (the plane's
        ``sync`` barrier) — see :func:`adopt_layout`.
        """
        i = int(shard_index)
        published = self.controls[i].read_layout()
        if published is None:
            return 0
        layout, n_users, applied_seq = published
        adopt_layout(self.arenas[i], self.shards[i], layout, n_users)
        self.arenas[i].sweep()
        commit = self.controls[i].commit_version
        if commit != self._commit_seen[i]:
            # keep delta checkpoints honest: the writer process's commits
            # never touched the parent's mutation clock
            self._commit_seen[i] = commit
            self.shards[i]._clock.bump()
        return applied_seq

    def resync(self) -> list[int]:
        """Adopt every shard's published layout; per-shard applied seqs."""
        return [self.resync_shard(i) for i in range(len(self.shards))]

    def replace_shard(self, shard_index: int, shard: ColumnarSumStore) -> None:
        """Swap one partition for a rebuilt one (crash recovery).

        Mirrors the ``.shards`` rebuild the loader does — the store stays
        the same router object, so caches and services keep their
        reference.
        """
        i = int(shard_index)
        shards = list(self.shards)
        shards[i] = shard
        self.shards = tuple(shards)
        # the replacement's clock is unrelated to any recorded mark — a
        # coincidental match would hardlink stale pages, so force the
        # next save to rewrite everything
        self._checkpoint_marks.clear()

    def fresh_shard(self, shard_index: int, capacity: int) -> ColumnarSumStore:
        """An empty arena-backed partition (recovery scratch target)."""
        return ColumnarSumStore(
            initial_capacity=capacity, alloc=self.arenas[int(shard_index)].alloc
        )

    # -- lifecycle -------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Unlink every segment this store owns (idempotent).

        Call with the process plane stopped.  Live arrays in this
        process keep their pages until collected; the shared *names* are
        gone, so no new process can attach.
        """
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _finalize_store(self.arenas, self.controls)


def _finalize_store(
    arenas: Iterable[ShmArena], controls: Iterable[ShardControlBlock]
) -> None:
    for arena in arenas:
        arena.close()
    for control in controls:
        control.close(unlink=True)
