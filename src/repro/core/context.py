"""The Fig. 1 context taxonomy for Ambient Recommender Systems.

Fig. 1 extends Burke's (2001) classification of recommendation knowledge
sources with the *user context* dimensions an Ambient Recommender System
must represent "in a holistic way": cognitive, task, social, emotional,
cultural, physical and location context.

This module encodes that taxonomy as data so the architecture bench (E6)
can regenerate the figure's content from live objects, and so context
dimensions can be attached to :class:`~repro.core.sum_model.SmartUserModel`
instances in a uniform way.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ContextDimension:
    """One axis of the user's circumstances (Fig. 1, right half)."""

    name: str
    description: str
    example_signals: tuple[str, ...] = ()


@dataclass(frozen=True)
class KnowledgeSource:
    """One of Burke's recommendation knowledge sources (Fig. 1, left half)."""

    name: str
    description: str


#: Burke's knowledge sources, the base the paper extends.
KNOWLEDGE_SOURCES: tuple[KnowledgeSource, ...] = (
    KnowledgeSource(
        "collaborative",
        "opinions of peer users: ratings and behaviour of similar users",
    ),
    KnowledgeSource(
        "content",
        "features of the items themselves matched against the user profile",
    ),
    KnowledgeSource(
        "demographic",
        "socio-demographic segments mapped to preference stereotypes",
    ),
    KnowledgeSource(
        "knowledge-based",
        "explicit domain knowledge about how items meet user needs",
    ),
)

#: The paper's context extension (Fig. 1): "cognitive context, task context,
#: social context, emotional context, cultural context, physical context and
#: location context among others".
CONTEXT_DIMENSIONS: tuple[ContextDimension, ...] = (
    ContextDimension(
        "cognitive",
        "what the user knows and can attend to right now",
        ("expertise level", "attention span", "information overload"),
    ),
    ContextDimension(
        "task",
        "the goal the user is currently pursuing",
        ("browsing vs purchasing", "course search intent", "deadline"),
    ),
    ContextDimension(
        "social",
        "who the user is with or communicating with",
        ("alone/accompanied", "group decision", "peer recommendations"),
    ),
    ContextDimension(
        "emotional",
        "the user's affective state and sensibilities — the paper's focus",
        ("valence", "arousal", "dominant emotional attributes"),
    ),
    ContextDimension(
        "cultural",
        "norms and values shaping how suggestions are received",
        ("language", "holidays", "communication style"),
    ),
    ContextDimension(
        "physical",
        "the bodily and environmental situation",
        ("device", "noise", "physiological signals"),
    ),
    ContextDimension(
        "location",
        "where the user is and what is reachable",
        ("home/work/travel", "geo region", "proximity to venues"),
    ),
)


@dataclass
class ContextSnapshot:
    """A concrete assignment of values to context dimensions for one user.

    Unknown dimensions are simply absent; consumers treat missing entries
    as "no information", never as a default value.
    """

    values: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        known = {dimension.name for dimension in CONTEXT_DIMENSIONS}
        unknown = set(self.values) - known
        if unknown:
            raise KeyError(f"unknown context dimensions: {sorted(unknown)}")

    def get(self, dimension: str, default: str | None = None) -> str | None:
        """Current value of one dimension, or ``default``."""
        return self.values.get(dimension, default)

    def set(self, dimension: str, value: str) -> None:
        """Set one dimension (must be a Fig. 1 dimension)."""
        known = {d.name for d in CONTEXT_DIMENSIONS}
        if dimension not in known:
            raise KeyError(f"unknown context dimension {dimension!r}")
        self.values[dimension] = value


def taxonomy_lines() -> list[str]:
    """The Fig. 1 content as indented text lines (used by bench E6)."""
    lines = ["Ambient Recommender System"]
    lines.append("├─ knowledge sources (Burke 2001)")
    for i, source in enumerate(KNOWLEDGE_SOURCES):
        branch = "└─" if i == len(KNOWLEDGE_SOURCES) - 1 else "├─"
        lines.append(f"│  {branch} {source.name}: {source.description}")
    lines.append("└─ user context (this paper's extension)")
    for i, dimension in enumerate(CONTEXT_DIMENSIONS):
        branch = "└─" if i == len(CONTEXT_DIMENSIONS) - 1 else "├─"
        marker = "  ◀ emotional context (focus)" if dimension.name == "emotional" else ""
        lines.append(f"   {branch} {dimension.name} context{marker}")
    return lines
