"""Columnar Smart User Model store — struct-of-arrays for the population.

The paper's SPA "exploits heterogeneous, multi-dimensional and massive
databases" to maintain 75-attribute SUMs for the whole population.  The
object backend (:class:`~repro.core.sum_model.SumRepository`) keeps one
Python object per user, so every batch read rebuilds arrays the hardware
could slice directly.  :class:`ColumnarSumStore` flips the layout: the
*population* owns contiguous numpy columns, and each user is a row.

Layout (struct of arrays, row = user):

* ``emotional``   — ``(n, 10)`` float64 intensities in catalog order,
  plus a presence mask (a dict distinguishes "absent" from "0.0");
* ``ei``          — ``(n, 4)`` float64 Four-Branch scores (dense, the
  profile always has all four branches, neutral 0.5);
* ``sensibility`` — dynamically column-interned vocabulary (seeded with
  the ten emotions) of float64 weights + presence mask.  Presence
  matters: the Advice stage reads absent sensibilities as 1.0 while the
  reward loop reads them as 0.0;
* ``subjective``  — column-interned float64 tendencies + mask (absent
  reads as the neutral 0.5);
* ``evidence``    — column-interned int64 observation counters + mask;
* ``objective`` / EIT question sets — cold per-row Python objects (rarely
  touched, arbitrary values).

:class:`SumRowView` subclasses :class:`~repro.core.sum_model.SmartUserModel`
and re-expresses its attribute families as mapping *views* over one row,
so the entire existing scalar API — ``model.emotional[e]``,
``model.sensibility.get``, ``pipeline.apply_event``, the Gradual EIT —
keeps working unchanged on top of the columns.  Scalar mutations through
a view and vectorized mutations through :meth:`ColumnarSumStore.
batch_apply_ops` are bit-equal by construction: both run the same IEEE
double operations, just batched differently (the property suite in
``tests/properties/test_columnar_batch.py`` pins this down).

Persistence is columnar too: :meth:`ColumnarSumStore.save` writes the
population as ``.npz`` column pages through the :mod:`repro.db` Catalog,
and :meth:`dumps`/:meth:`loads` keep the :class:`SumRepository` JSON
format as a compatible import/export path.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections.abc import MutableMapping
from pathlib import Path
from types import MappingProxyType
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.analysis.contracts import (
    declare_lock,
    declare_seqlock,
    guarded_by,
    make_lock,
    requires_lock,
)
from repro.core.emotions import (
    EMOTION_CATALOG,
    EMOTION_NAMES,
    EmotionalState,
    clamp01,
)
from repro.core.four_branch import BRANCH_ORDER, Branch, FourBranchProfile
from repro.core.sum_model import SmartUserModel, SumRepository, UnknownUserError
from repro.core.updates import DecayOp, PunishOp, RewardOp

_GROWTH_FACTOR = 2
_INITIAL_ROWS = 1024
_INITIAL_COLS = 16


def _zeros(shape: tuple[int, ...], dtype: Any) -> np.ndarray:
    """Default array allocator (private heap pages)."""
    return np.zeros(shape, dtype=dtype)


class _MutationClock:
    """Monotonic per-store write counter (dirty tracking for checkpoints).

    Every mutation path — scalar view writes, batch applies, decay,
    row creation, column interning, compaction — bumps it, so
    ``ShardedSumStore.save`` can tell an untouched shard (clock equal to
    the value recorded at the previous checkpoint) from a dirty one and
    skip re-serializing its pages.  Bumps happen under the store lock or
    on GIL-atomic integer adds; an over-count only costs a redundant
    page rewrite, never a missed one — bumps *before* the write land in
    program order ahead of it under the same lock.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def bump(self) -> None:
        self.value += 1

class _RowGenerations:
    """Per-row seqlock generation counters — readers retry, never block.

    Writers bump a row's counter to *odd* before mutating it and back to
    *even* after committing (always under the store lock, so bumps never
    race each other); a lock-free reader copies a row only between two
    equal even observations of its counter, re-fetching ``values`` each
    attempt so an array replacement (row growth) is caught by identity.
    The array lives behind the store allocator, so a shared-memory store
    publishes the counters to every process mapping its pages — the
    per-row variant of the layout handshake
    :class:`~repro.core.shm_store.ShardControlBlock` proves out.
    """

    __slots__ = ("values", "_alloc")

    def __init__(
        self,
        capacity: int,
        alloc: Callable[[tuple[int, ...], Any], np.ndarray],
    ) -> None:
        self._alloc = alloc
        self.values = alloc((capacity,), np.int64)

    def grow(self, new_capacity: int) -> None:
        grown = self._alloc((new_capacity,), np.int64)
        grown[: self.values.shape[0]] = self.values
        self.values = grown

    def begin(self, rows: Any) -> None:
        """Mark ``rows`` mid-write (even -> odd); store lock held."""
        self.values[rows] += 1

    def end(self, rows: Any) -> None:
        """Mark ``rows`` committed (odd -> even); store lock held."""
        self.values[rows] += 1


class _NullRowGenerations(_RowGenerations):
    """No-op generations for frozen captures (no live writers to race)."""

    def __init__(self) -> None:
        super().__init__(0, _zeros)

    def begin(self, rows: Any) -> None:
        pass

    def end(self, rows: Any) -> None:
        pass


_NULL_ROW_GEN = _NullRowGenerations()


# Column families share their owning store's RLock (one serialization
# domain per store), so "_ColumnFamily.lock" is the same runtime object
# as "ColumnarSumStore._lock" and the analyzer treats them as one node.
declare_lock(
    "ColumnarSumStore._lock",
    reentrant=True,
    aliases=("_ColumnFamily.lock",),
)

# Lock-free reader captures: every mutation path bumps the touched rows'
# generation counters odd before writing and even after (always under
# the store lock), and readers copy a row only between two equal even
# observations.  The mirror copy primitives may therefore be called
# lock-free *only* from @seqlock_reader-marked retry loops — or under
# the writer lock itself, which excludes every generation bump.
declare_seqlock(
    "ColumnarSumStore.row_generations",
    protects=("refresh_row", "copy_row"),
    writer_lock="ColumnarSumStore._lock",
)

#: the frozen emotion vocabulary every store shares; batch-op validation
#: checks against it so the check is store-independent (a sharded router
#: can validate a whole cross-shard batch before any shard mutates)
_EMOTION_INDEX = {name: j for j, name in enumerate(EMOTION_NAMES)}


#: attribute tuples already checked against the emotion catalog — streams
#: repeat the same few tuples endlessly, so validation is O(1) per op
#: after the first sighting of each tuple
_VALID_ATTR_TUPLES: set[tuple[str, ...]] = set()


def validate_batch_ops(items: Sequence[tuple[int, Sequence[Any]]]) -> None:
    """Reject a ``(user_id, ops)`` batch before any mutation.

    The guarantee the streaming commit layer leans on: a raising batch
    apply leaves every store untouched, so callers may fall back to the
    per-user scalar path without risking a double-apply.  Factored out of
    :meth:`ColumnarSumStore.batch_apply_ops` so a sharded router can run
    the *whole* cross-shard batch through it first — otherwise shard A
    could commit before shard B's validation failure.
    """
    valid = _VALID_ATTR_TUPLES
    for __, ops in items:
        for op in ops:
            if isinstance(op, DecayOp):
                continue
            if isinstance(op, (RewardOp, PunishOp)):
                attributes = op.attributes
                if attributes not in valid:
                    for name in attributes:
                        if name not in _EMOTION_INDEX:
                            raise KeyError(
                                f"unknown emotional attribute {name!r}; "
                                f"have {sorted(_EMOTION_INDEX)}"
                            )
                    valid.add(attributes)
                if not math.isfinite(float(op.strength)):
                    raise ValueError(
                        f"non-finite op strength {op.strength!r}"
                    )
            else:
                raise TypeError(f"unknown SUM update op {op!r}")


_SEALED_CLASSES: dict[type, type] = {}


def seal_attributes(obj: object) -> object:
    """Reject all future attribute rebinding on ``obj``.

    The last layer of snapshot freezing: read-only arrays and mapping
    proxies stop item writes, but a plain ``snapshot.sensibility = {...}``
    would still swap a whole family out from under every reader sharing
    the cached snapshot.  Swapping in a sealed subclass keeps
    ``isinstance`` intact while making any later ``setattr`` raise.
    """
    cls = obj.__class__
    sealed = _SEALED_CLASSES.get(cls)
    if sealed is None:
        def __setattr__(self: Any, name: str, value: Any) -> None:
            raise TypeError(
                f"snapshot is read-only; cannot set attribute {name!r}"
            )

        sealed = type(f"_Sealed{cls.__name__}", (cls,), {"__setattr__": __setattr__})
        _SEALED_CLASSES[cls] = sealed
    obj.__class__ = sealed
    return obj


def _masked_matrix(
    family: Any, rows: np.ndarray, names: Sequence[str], default: float
) -> np.ndarray:
    """``(len(rows), len(names))`` family values; absent → ``default``.

    Shared by the live and frozen families so the masked-default
    semantics can never diverge between a snapshot and the store it was
    captured from; ``family`` needs ``column_of``/``values``/``mask``.
    """
    out = np.full((len(rows), len(names)), float(default))
    for k, name in enumerate(names):
        j = family.column_of(name)
        if j is None:
            continue
        out[:, k] = np.where(
            family.mask[rows, j], family.values[rows, j], float(default)
        )
    return out


@guarded_by("lock", "values", "mask", "index", "order")
class _ColumnFamily:
    """One attribute family: named columns of values + presence masks.

    Columns are interned on first write ("dynamic column-interned
    vocabulary"): a new attribute name becomes a new column for the whole
    population, so reads stay contiguous slices.  ``frozen`` families
    (the fixed emotion catalog) reject unknown names instead.

    Thread-safety: unlike the object backend — where every user owns
    independent dicts — rows share arrays, and capacity growth *replaces*
    them, so an unsynchronized write could land in a just-discarded
    array and vanish.  All mutation therefore serializes on the owning
    store's ``lock`` (reads stay lock-free: a stale array holds the same
    committed values for any row whose writer is quiesced, which is the
    same per-user contract the streaming cache's locks already provide).
    """

    __slots__ = ("index", "order", "values", "mask", "frozen", "lock",
                 "seed", "_dtype", "_alloc", "clock", "row_gen")

    def __init__(
        self,
        dtype: np.dtype,
        row_capacity: int,
        lock: threading.RLock,
        seed_names: Sequence[str] = (),
        frozen: bool = False,
        alloc: Callable[[tuple[int, ...], Any], np.ndarray] | None = None,
        clock: _MutationClock | None = None,
        row_gen: _RowGenerations | None = None,
    ) -> None:
        self.lock = lock
        self._alloc = alloc if alloc is not None else _zeros
        self.clock = clock if clock is not None else _MutationClock()
        #: the owning store's per-row seqlock counters; scalar row writes
        #: through views bump them so lock-free captures can retry
        self.row_gen = row_gen if row_gen is not None else _NULL_ROW_GEN
        self._dtype = np.dtype(dtype)
        #: columns the family was constructed with; compaction never drops
        #: them (the emotion seeds pin the shared intensity/sensibility/
        #: evidence column indices the scatter-add path relies on)
        self.seed = tuple(seed_names)
        self.index: dict[str, int] = {name: j for j, name in enumerate(seed_names)}
        self.order: list[str] = list(seed_names)
        col_capacity = max(_INITIAL_COLS, len(self.order))
        self.values = self._alloc((row_capacity, col_capacity), self._dtype)
        self.mask = self._alloc((row_capacity, col_capacity), np.bool_)
        self.frozen = frozen

    @property
    def width(self) -> int:
        return len(self.order)

    def column_of(self, name: str) -> int | None:
        """Column index of ``name`` (``None`` if never interned)."""
        return self.index.get(name)

    def ensure_column(self, name: str) -> int:
        """Intern ``name``; returns its column index."""
        j = self.index.get(name)  # GIL-atomic fast path
        if j is not None:
            return j
        if self.frozen:
            raise KeyError(
                f"unknown attribute {name!r}; have {sorted(self.index)}"
            )
        with self.lock:
            j = self.index.get(name)
            if j is not None:
                return j
            j = len(self.order)
            if j >= self.values.shape[1]:
                new_cols = max(
                    _INITIAL_COLS, self.values.shape[1] * _GROWTH_FACTOR
                )
                grown_v = self._alloc(
                    (self.values.shape[0], new_cols), self._dtype
                )
                grown_v[:, : self.values.shape[1]] = self.values
                grown_m = self._alloc((self.mask.shape[0], new_cols), np.bool_)
                grown_m[:, : self.mask.shape[1]] = self.mask
                self.values, self.mask = grown_v, grown_m
            self.index[name] = j
            self.order.append(name)
            self.clock.bump()
            return j

    def read_matrix(
        self, rows: np.ndarray, names: Sequence[str], default: float
    ) -> np.ndarray:
        """``(len(rows), len(names))`` values; absent entries → ``default``."""
        return _masked_matrix(self, rows, names, default)

    @requires_lock("lock")
    def grow_rows(self, new_capacity: int) -> None:
        grown_v = self._alloc((new_capacity, self.values.shape[1]), self._dtype)
        grown_v[: self.values.shape[0]] = self.values
        grown_m = self._alloc((new_capacity, self.mask.shape[1]), np.bool_)
        grown_m[: self.mask.shape[0]] = self.mask
        self.values, self.mask = grown_v, grown_m

    @requires_lock("lock")
    def clear_row(self, row: int) -> None:
        self.row_gen.begin(row)
        try:
            self.values[row, :] = 0
            self.mask[row, :] = False
        finally:
            self.row_gen.end(row)


class _FrozenFamily:
    """Read-only point-in-time copy of some rows of a column family.

    Shares the owning family's append-only ``index``/``order`` registries
    (bounded by the captured ``width``) instead of rebuilding them, so a
    capture allocates nothing beyond the row slices themselves.  The
    value and mask arrays are marked non-writeable: any mutation attempt
    through a view raises instead of silently diverging from the live
    store — the "immutable-by-convention" era of snapshots is over.
    """

    __slots__ = ("index", "order", "width", "values", "mask", "lock",
                 "clock", "row_gen")

    def __init__(
        self,
        index: Mapping[str, int],
        order: Sequence[str],
        values: np.ndarray,
        mask: np.ndarray,
    ) -> None:
        self.index = index
        # A capture can race a column intern on the live family: bound the
        # logical width by what the arrays actually carry (the sliced-off
        # columns are mask-False for every captured row — interning them
        # did not touch these users, or their version would have bumped).
        self.width = min(len(order), values.shape[1])
        self.order = list(order[: self.width])
        self.values = values
        self.mask = mask
        values.flags.writeable = False
        mask.flags.writeable = False
        # satisfies the row-view locking protocol; the arrays still raise
        self.lock = threading.Lock()
        # absorbs the pre-write clock bump; the read-only arrays still
        # reject the write itself
        self.clock = _MutationClock()
        # frozen rows have no live writers; generation bumps are no-ops
        self.row_gen = _NULL_ROW_GEN

    @classmethod
    def capture(cls, family: _ColumnFamily, rows: np.ndarray) -> "_FrozenFamily":
        """Freeze ``rows`` of a live family (fancy indexing copies)."""
        return cls(
            family.index, family.order, family.values[rows], family.mask[rows]
        )

    def column_of(self, name: str) -> int | None:
        j = self.index.get(name)
        return j if j is not None and j < self.width else None

    def ensure_column(self, name: str) -> int:
        """Column lookup only — a frozen family never interns."""
        j = self.column_of(name)
        if j is None:
            raise KeyError(
                f"attribute {name!r} is not in this read-only snapshot"
            )
        return j

    def read_matrix(
        self, rows: np.ndarray, names: Sequence[str], default: float
    ) -> np.ndarray:
        """Same contract as :meth:`_ColumnFamily.read_matrix`."""
        return _masked_matrix(self, rows, names, default)


class _FrozenRowStore:
    """One user's row, captured across every family and frozen.

    Quacks like :class:`ColumnarSumStore` just enough to back a
    :class:`SumRowView` (families, EI block, cold per-row state), so the
    full scalar :class:`SmartUserModel` API works on the snapshot — and
    every write path raises: array writes hit read-only buffers, interning
    raises in :class:`_FrozenFamily`, and the cold state is proxied.
    """

    __slots__ = ("_emotional", "_sensibility", "_subjective", "_evidence",
                 "_ei", "_objective", "_asked", "_answered", "_lock",
                 "_clock")

    def __init__(self, store: "ColumnarSumStore", row: int) -> None:
        rows = np.asarray([row], dtype=np.intp)
        self._emotional = _FrozenFamily.capture(store._emotional, rows)
        self._sensibility = _FrozenFamily.capture(store._sensibility, rows)
        self._subjective = _FrozenFamily.capture(store._subjective, rows)
        self._evidence = _FrozenFamily.capture(store._evidence, rows)
        ei = store._ei[rows]
        ei.flags.writeable = False
        self._ei = ei
        self._objective = (MappingProxyType(dict(store._objective[row])),)
        self._asked = (frozenset(store._asked[row]),)
        self._answered = (frozenset(store._answered[row]),)
        self._lock = threading.RLock()
        # writes through a frozen view still raise (read-only arrays /
        # proxied cold state); the clock only absorbs the pre-write bump
        self._clock = _MutationClock()


class FrozenSumBatch:
    """A version-stamped, immutable columnar batch — the cache read path.

    Duck-types the consumer surface of :class:`SumBatch` (``len``,
    iteration, :meth:`intensity_matrix`, :meth:`sensibility_matrix`) over
    *captured* row slices, so the Advice stage takes the same column-slice
    path on cached snapshots as on a live store, and the capture is
    bit-stable no matter how many batches land afterwards.  ``versions``
    records each user's published version at capture time: the batch
    serves old state at the old version or batch-applied state at the new
    one — never a torn read.
    """

    __slots__ = ("user_ids", "emotional", "sensibility", "subjective",
                 "evidence", "_stamps", "_versions", "_resolve")

    def __init__(
        self,
        user_ids: Sequence[int],
        versions: Mapping[int, int],
        emotional: _FrozenFamily,
        sensibility: _FrozenFamily,
        resolve: Callable[[int], "SmartUserModel"] | None = None,
        subjective: _FrozenFamily | None = None,
        evidence: _FrozenFamily | None = None,
    ) -> None:
        self.user_ids = list(user_ids)
        # ``versions`` maps uid -> stamp at capture (absent means 0); the
        # per-user dict is built lazily so the hot read path never pays a
        # Python loop over the whole batch for stamps nobody asked about.
        self._stamps = versions
        self._versions: dict[int, int] | None = None
        self.emotional = emotional
        self.sensibility = sensibility
        # only staged when the owning mirror opted in (mirror scope):
        # batch consumers beyond the Advice stage — feature extraction,
        # evidence analytics — then get the same snapshot isolation
        self.subjective = subjective
        self.evidence = evidence
        self._resolve = resolve

    @property
    def versions(self) -> dict[int, int]:
        """Each user's published version at capture time."""
        if self._versions is None:
            get = self._stamps.get
            self._versions = {uid: int(get(uid, 0)) for uid in self.user_ids}
        return self._versions

    def __len__(self) -> int:
        return len(self.user_ids)

    def __iter__(self) -> Iterator["SmartUserModel"]:
        """Per-model fallback for scalar consumers.

        Yields each user's *current* frozen snapshot from the resolver —
        at least as fresh as this batch's version stamps, possibly
        fresher if batches landed since the capture.  Only the matrix
        reads (:meth:`intensity_matrix` / :meth:`sensibility_matrix`)
        are pinned to the capture itself; consumers that need per-model
        state at exactly the stamped versions should capture before
        writers publish, or read the matrices.
        """
        if self._resolve is None:
            raise TypeError(
                "this frozen batch has no per-model resolver; read it "
                "through intensity_matrix/sensibility_matrix"
            )
        for uid in self.user_ids:
            yield self._resolve(uid)

    def intensity_matrix(self, order: Sequence[str]) -> np.ndarray:
        """``(n_users, len(order))`` emotional intensities at capture."""
        cols = [self.emotional.ensure_column(name) for name in order]
        return self.emotional.values[:, cols]

    def sensibility_matrix(
        self, order: Sequence[str], default: float = 1.0
    ) -> np.ndarray:
        """``(n_users, len(order))`` sensibilities; absent → ``default``."""
        rows = np.arange(len(self.user_ids), dtype=np.intp)
        return self.sensibility.read_matrix(rows, order, default)

    def subjective_matrix(
        self, order: Sequence[str], default: float = 0.5
    ) -> np.ndarray:
        """``(n_users, len(order))`` subjective tendencies at capture.

        Requires a mirror built with ``families=("subjective",)`` — the
        default mirror stages only what the Advice stage reads.
        """
        if self.subjective is None:
            raise TypeError(
                "subjective columns were not staged in this capture; "
                "build the mirror/cache with families=('subjective',)"
            )
        rows = np.arange(len(self.user_ids), dtype=np.intp)
        return self.subjective.read_matrix(rows, order, default)

    def evidence_matrix(
        self, order: Sequence[str], default: float = 0.0
    ) -> np.ndarray:
        """``(n_users, len(order))`` observation counters (as float64)."""
        if self.evidence is None:
            raise TypeError(
                "evidence columns were not staged in this capture; "
                "build the mirror/cache with families=('evidence',)"
            )
        rows = np.arange(len(self.user_ids), dtype=np.intp)
        return self.evidence.read_matrix(rows, order, default)


class _MirrorFamily:
    """Writable staging copy of one live family's columns (reader-owned).

    Grows to track the live arrays; row content is only ever written by
    :meth:`copy_row` under the owning user's write lock, so a row holds
    exactly one published version at a time.
    """

    __slots__ = ("live", "values", "mask")

    def __init__(self, live: _ColumnFamily) -> None:
        self.live = live
        self.values = np.zeros((0, 0), dtype=live.values.dtype)
        self.mask = np.zeros((0, 0), dtype=bool)

    def sync_shape(self) -> None:
        # Growth replaces the live values and mask in two separate
        # attribute stores, so a reader can observe a torn pair (new
        # values, old mask).  Re-fetch until the pair agrees, and grow
        # *both* mirror arrays to that consistent shape — comparing only
        # one of them could leave the mirror permanently divergent.
        while True:
            live_values, live_mask = self.live.values, self.live.mask
            if live_values.shape != live_mask.shape:
                continue  # caught mid-growth; the writer is about to fix it
            if (self.values.shape == live_values.shape
                    and self.mask.shape == live_mask.shape):
                return
            # Copy only the overlapping region: growth is the common case,
            # but vocabulary compaction can *shrink* the live column count,
            # and a mirror must follow either way (compacted stores require
            # an invalidate before the next capture — see compact_vocab).
            rows = min(self.values.shape[0], live_values.shape[0])
            cols = min(self.values.shape[1], live_values.shape[1])
            grown_values = np.zeros(live_values.shape, dtype=live_values.dtype)
            grown_values[:rows, :cols] = self.values[:rows, :cols]
            mask_rows = min(self.mask.shape[0], live_mask.shape[0])
            mask_cols = min(self.mask.shape[1], live_mask.shape[1])
            grown_mask = np.zeros(live_mask.shape, dtype=bool)
            grown_mask[:mask_rows, :mask_cols] = self.mask[:mask_rows, :mask_cols]
            self.values, self.mask = grown_values, grown_mask
            return

    def copy_row(self, row: int) -> None:
        # The live arrays can be replaced (capacity growth) between the
        # shape check and the copy; loop until one consistent pair copies.
        while True:
            live_values, live_mask = self.live.values, self.live.mask
            if (live_values.shape != live_mask.shape
                    or live_values.shape != self.values.shape
                    or self.mask.shape != self.values.shape):
                self.sync_shape()
                continue
            self.values[row] = live_values[row]
            self.mask[row] = live_mask[row]
            return


class ColumnMirror:
    """Copy-on-write staging columns for published reads.

    The streaming cache refreshes a user's mirror row (under that user's
    write lock) on the first read after a publish; captures then slice
    the mirror, which writers never touch — so a capture cannot observe
    a half-applied batch even while writers stream into the live arrays.
    By default only the families the Advice-stage batch read path
    consumes (emotional intensities and sensibilities) are mirrored;
    pass extra ``families`` (``"subjective"``, ``"evidence"``) to give
    batch consumers beyond the Advice stage the same snapshot isolation.
    Scalar snapshot reads go through :meth:`ColumnarSumStore.freeze_view`
    instead.
    """

    #: always staged: the two families the serving read path slices
    REQUIRED_FAMILIES = ("emotional", "sensibility")

    __slots__ = ("store", "families")

    def __init__(
        self,
        store: "ColumnarSumStore",
        families: Sequence[str] | None = None,
    ) -> None:
        extras = tuple(families or ())
        allowed = set(ColumnarSumStore._FAMILY_NAMES)
        unknown = sorted(set(extras) - allowed)
        if unknown:
            raise ValueError(
                f"unknown mirror families {unknown}; have {sorted(allowed)}"
            )
        staged = list(self.REQUIRED_FAMILIES) + [
            name for name in extras if name not in self.REQUIRED_FAMILIES
        ]
        live = dict(store._named_families())
        self.store = store
        self.families: dict[str, _MirrorFamily] = {
            name: _MirrorFamily(live[name]) for name in staged
        }

    @property
    def emotional(self) -> _MirrorFamily:
        return self.families["emotional"]

    @property
    def sensibility(self) -> _MirrorFamily:
        return self.families["sensibility"]

    def sync_shape(self) -> None:
        for family in self.families.values():
            family.sync_shape()

    def refresh_row(self, row: int) -> None:
        """Copy one user's live row slices into the mirror.

        Caller must hold the user's write lock: the copy races nothing,
        so the mirrored row is exactly one published version.
        """
        for family in self.families.values():
            family.copy_row(row)

    def capture(
        self,
        user_ids: Sequence[int],
        rows: np.ndarray,
        versions: Mapping[int, int],
        resolve: Callable[[int], "SmartUserModel"] | None = None,
    ) -> FrozenSumBatch:
        """Freeze ``rows`` of the mirror into a bit-stable batch."""
        rows = np.asarray(rows, dtype=np.intp)
        frozen: dict[str, _FrozenFamily] = {}
        for name, family in self.families.items():
            live = family.live
            frozen[name] = _FrozenFamily(
                live.index, live.order,
                family.values[rows], family.mask[rows],
            )
        return FrozenSumBatch(
            user_ids, versions, frozen["emotional"], frozen["sensibility"],
            resolve,
            subjective=frozen.get("subjective"),
            evidence=frozen.get("evidence"),
        )


class _RowMapView(MutableMapping):
    """Dict-compatible view of one family row (presence-mask aware)."""

    __slots__ = ("_family", "_row", "_cast")

    def __init__(
        self, family: _ColumnFamily, row: int,
        cast: Callable[[Any], Any] = float,
    ) -> None:
        self._family = family
        self._row = row
        self._cast = cast

    def __getitem__(self, name: str) -> Any:
        j = self._family.column_of(name)
        if j is None or not self._family.mask[self._row, j]:
            raise KeyError(name)
        return self._cast(self._family.values[self._row, j])

    def __setitem__(self, name: str, value: float) -> None:
        family = self._family
        # Under the lock: a concurrent capacity growth replaces the
        # arrays, and a write to the replaced one would be lost.
        with family.lock:
            j = family.ensure_column(name)
            family.clock.bump()
            family.row_gen.begin(self._row)
            try:
                family.values[self._row, j] = value
                family.mask[self._row, j] = True
            finally:
                family.row_gen.end(self._row)

    def __delitem__(self, name: str) -> None:
        family = self._family
        with family.lock:
            j = family.column_of(name)
            if j is None or not family.mask[self._row, j]:
                raise KeyError(name)
            family.clock.bump()
            family.row_gen.begin(self._row)
            try:
                family.values[self._row, j] = 0
                family.mask[self._row, j] = False
            finally:
                family.row_gen.end(self._row)

    def __iter__(self) -> Iterator[str]:
        mask = self._family.mask[self._row]
        order = self._family.order
        for j in np.flatnonzero(mask[: len(order)]):
            yield order[j]

    def __len__(self) -> int:
        return int(self._family.mask[self._row, : self._family.width].sum())

    def __repr__(self) -> str:
        return repr(dict(self))


class _BranchScoresView(MutableMapping):
    """``dict[Branch, float]`` view over one row of the EI block."""

    __slots__ = ("_store", "_row")

    _COLUMN = {branch: j for j, branch in enumerate(BRANCH_ORDER)}

    def __init__(self, store: "ColumnarSumStore", row: int) -> None:
        self._store = store
        self._row = row

    def __getitem__(self, branch: Branch) -> float:
        return float(self._store._ei[self._row, self._COLUMN[branch]])

    def __setitem__(self, branch: Branch, value: float) -> None:
        with self._store._lock:  # row growth replaces the EI block
            self._store._clock.bump()
            self._store._ei[self._row, self._COLUMN[branch]] = value

    def __delitem__(self, branch: Branch) -> None:
        raise TypeError("Four-Branch scores are always present")

    def __iter__(self) -> Iterator[Branch]:
        return iter(BRANCH_ORDER)

    def __len__(self) -> int:
        return len(BRANCH_ORDER)

    def __repr__(self) -> str:
        return repr(dict(self))


class _EmotionalStateView(EmotionalState):
    """:class:`EmotionalState` whose intensities live in store columns."""

    def __init__(self, store: "ColumnarSumStore", row: int) -> None:
        # Deliberately skip the dataclass __init__: intensities is a live
        # mapping view, not an owned dict, and needs no re-validation.
        self.intensities = _RowMapView(store._emotional, row)
        self.catalog = EMOTION_CATALOG
        self._store = store
        self._row = row

    def as_vector(self, order: Iterable[str] | None = None) -> np.ndarray:
        names = tuple(order) if order is not None else EMOTION_NAMES
        if names == EMOTION_NAMES:
            width = len(EMOTION_NAMES)
            return self._store._emotional.values[self._row, :width].astype(
                np.float64, copy=True
            )
        return super().as_vector(names)


class _FourBranchProfileView(FourBranchProfile):
    """:class:`FourBranchProfile` whose scores live in store columns."""

    def __init__(self, store: "ColumnarSumStore", row: int) -> None:
        self.scores = _BranchScoresView(store, row)


class SumRowView(SmartUserModel):
    """One user's SUM as a thin view over the columnar store.

    Subclasses :class:`SmartUserModel` so every behaviour — reward,
    sensibility analysis, the Gradual EIT, feature extraction,
    ``to_dict`` — runs unchanged; only the storage underneath differs.
    """

    # Instance attributes of SmartUserModel are replaced by properties
    # reading through to the store, so views stay valid across array
    # growth (families are stable objects; their arrays are looked up on
    # every access).

    def __init__(self, store: "ColumnarSumStore", user_id: int, row: int) -> None:
        self.user_id = int(user_id)
        self._store = store
        self._row = row
        self.emotional = _EmotionalStateView(store, row)
        self.ei_profile = _FourBranchProfileView(store, row)
        self.subjective = _RowMapView(store._subjective, row)
        self.sensibility = _RowMapView(store._sensibility, row)
        self.evidence = _RowMapView(store._evidence, row, cast=int)

    # -- cold, per-row Python state ----------------------------------------

    @property
    def objective(self) -> dict[str, Any]:
        return self._store._objective[self._row]

    @objective.setter
    def objective(self, value: dict[str, Any]) -> None:
        # Under the store lock: a concurrent first-contact row creation
        # appends to these cold-state lists, and a list seen mid-append
        # could route this write into a stale slot after compaction.
        with self._store._lock:
            self._store._clock.bump()
            self._store._objective[self._row] = dict(value)

    @property
    def asked_questions(self) -> set[str]:
        return self._store._asked[self._row]

    @asked_questions.setter
    def asked_questions(self, value: Iterable[str]) -> None:
        with self._store._lock:
            self._store._clock.bump()
            self._store._asked[self._row] = set(value)

    @property
    def answered_questions(self) -> set[str]:
        return self._store._answered[self._row]

    @answered_questions.setter
    def answered_questions(self, value: Iterable[str]) -> None:
        with self._store._lock:
            self._store._clock.bump()
            self._store._answered[self._row] = set(value)


class SumBatch:
    """A resolved batch of users: row indices + column-sliced reads.

    Behaves like a sequence of models (``len``, iteration) so existing
    per-model code keeps working, while batch consumers — the Advice
    stage, feature extraction — slice whole columns instead of looping.
    """

    __slots__ = ("store", "user_ids", "rows")

    def __init__(
        self, store: "ColumnarSumStore", user_ids: Sequence[int], rows: np.ndarray
    ) -> None:
        self.store = store
        self.user_ids = [int(uid) for uid in user_ids]
        self.rows = rows

    def __len__(self) -> int:
        return len(self.user_ids)

    def __iter__(self) -> Iterator[SumRowView]:
        for uid in self.user_ids:
            yield self.store.get(uid)

    def intensity_matrix(self, order: Sequence[str]) -> np.ndarray:
        """``(n_users, len(order))`` emotional intensities."""
        family = self.store._emotional
        cols = [family.ensure_column(name) for name in order]
        return family.values[np.ix_(self.rows, cols)]

    def sensibility_matrix(
        self, order: Sequence[str], default: float = 1.0
    ) -> np.ndarray:
        """``(n_users, len(order))`` sensibilities; absent → ``default``."""
        return self.store._sensibility.read_matrix(self.rows, order, default)

    def subjective_matrix(
        self, order: Sequence[str], default: float = 0.5
    ) -> np.ndarray:
        """``(n_users, len(order))`` subjective tendencies; absent → default."""
        return self.store._subjective.read_matrix(self.rows, order, default)

    def evidence_matrix(
        self, order: Sequence[str], default: float = 0.0
    ) -> np.ndarray:
        """``(n_users, len(order))`` observation counters (as float64)."""
        return self.store._evidence.read_matrix(self.rows, order, default)


@guarded_by(
    "_lock",
    "_row_of",
    "_user_ids",
    "_n",
    "_capacity",
    "_ei",
    "_objective",
    "_asked",
    "_answered",
    "_views",
)
class ColumnarSumStore:
    """Struct-of-arrays SUM backend for the whole population.

    Duck-types :class:`~repro.core.sum_model.SumRepository` (``get``,
    ``get_or_create``, ``user_ids``, ``feature_matrix``, ``dumps`` /
    ``loads``, iteration) so every existing layer — serving, streaming,
    campaigns — can run on top of it unchanged, while batch consumers
    get true columnar access (:meth:`batch`, :meth:`batch_apply_ops`).
    """

    def __init__(
        self,
        initial_capacity: int = _INITIAL_ROWS,
        *,
        alloc: Callable[[tuple[int, ...], Any], np.ndarray] | None = None,
    ) -> None:
        capacity = max(1, int(initial_capacity))
        #: serializes every mutation: rows share arrays and capacity
        #: growth replaces them, so concurrent shard workers must not
        #: interleave writes with structural changes (reads stay
        #: lock-free — per-user read consistency comes from the
        #: streaming cache's user locks, as with the object backend)
        self._lock = make_lock("ColumnarSumStore._lock", reentrant=True)
        #: ``alloc(shape, dtype) -> zeroed writable array`` — every dense
        #: block (family values/masks, user ids, EI) goes through it, so
        #: a subclass/factory can back the store with shared memory
        #: (:mod:`repro.core.shm_store`) without touching any write path
        self._alloc = alloc if alloc is not None else _zeros
        self._clock = _MutationClock()
        #: per-row seqlock counters: every mutation path bumps the
        #: touched rows odd before writing and even after (under _lock),
        #: so lock-free captures retry instead of taking the write lock
        self._row_gen = _RowGenerations(capacity, self._alloc)
        #: column-layout seqlock epoch: odd while compact_vocab() swaps
        #: family registries/arrays; captures compare it before and after
        #: and restage their mirrors on any change, so compaction no
        #: longer requires quiesced readers or a manual invalidate()
        self._layout_epoch = 0
        self._row_of: dict[int, int] = {}
        self._user_ids = self._alloc((capacity,), np.int64)
        self._n = 0
        self._capacity = capacity
        self._emotional = _ColumnFamily(
            np.float64, capacity, self._lock,
            seed_names=EMOTION_NAMES, frozen=True,
            alloc=self._alloc, clock=self._clock, row_gen=self._row_gen,
        )
        self._sensibility = _ColumnFamily(
            np.float64, capacity, self._lock, seed_names=EMOTION_NAMES,
            alloc=self._alloc, clock=self._clock, row_gen=self._row_gen,
        )
        self._subjective = _ColumnFamily(
            np.float64, capacity, self._lock,
            alloc=self._alloc, clock=self._clock, row_gen=self._row_gen,
        )
        self._evidence = _ColumnFamily(
            np.int64, capacity, self._lock, seed_names=EMOTION_NAMES,
            alloc=self._alloc, clock=self._clock, row_gen=self._row_gen,
        )
        ei = self._alloc((capacity, len(BRANCH_ORDER)), np.float64)
        ei[:] = 0.5
        self._ei = ei
        self._objective: list[dict[str, Any]] = []
        self._asked: list[set[str]] = []
        self._answered: list[set[str]] = []
        self._views: dict[int, SumRowView] = {}
        #: set by :meth:`load` with ``mmap=True``: the column pages are
        #: read-only memory maps shared across replica processes, and
        #: every write path raises instead of faulting or forking pages
        self._readonly = False
        #: refresh-protocol floors, set by :meth:`load` from the catalog
        #: meta a generation-stamped :meth:`save` wrote: the snapshot
        #: generation this store was loaded from, the persisted per-user
        #: version map (the cache's counters at checkpoint time) and the
        #: persisted global version — all ``None`` on a live store
        self._snapshot_generation: int | None = None
        self._version_floors: dict[int, int] | None = None
        self._global_floor: int | None = None

    @property
    def readonly(self) -> bool:
        """Whether this store is a read-only (mmap-loaded) replica."""
        return self._readonly

    @property
    def mutation_count(self) -> int:
        """Monotonic write-counter value (see :class:`_MutationClock`).

        Equal values across two observations with writers quiesced mean
        *no* mutation happened in between — the contract checkpoint
        delta-skipping relies on.
        """
        return self._clock.value

    @property
    def row_generations(self) -> _RowGenerations:
        """The per-row seqlock counters lock-free captures retry on."""
        return self._row_gen

    @property
    def writer_lock(self) -> threading.RLock:
        """The store lock every generation bump happens under.

        The pessimistic fallback for seqlock readers: a capture that has
        spun without ever observing an even generation (a saturated
        writer spends its whole duty cycle inside the odd window, and
        numpy releases the GIL exactly there) may take this lock for one
        row copy — holding it excludes every writer, so no retry is
        needed.  Fallback only; the optimistic retry loop stays the fast
        path.
        """
        return self._lock

    @property
    def layout_epoch(self) -> int:
        """Column-layout seqlock epoch (odd while a compaction swaps).

        Captures read it before and after slicing: an odd value means a
        :meth:`compact_vocab` is mid-swap, a changed value means the
        column layout their mirror was staged under no longer matches
        the live arrays — either way the capture restages and retries.
        """
        return self._layout_epoch

    # -- freshness floors (replica duck-type of the SumCache surface) -------

    @property
    def snapshot_generation(self) -> int | None:
        """Generation of the checkpoint this store was loaded from.

        ``None`` on live stores and on directories written before
        generation stamping existed.  Serving responses carry it so a
        replica's bounded staleness is observable per response.
        """
        return self._snapshot_generation

    def version(self, user_id: int) -> int | None:
        """Persisted per-user version floor for replica-served reads.

        A store loaded from a generation-stamped checkpoint reports the
        version map persisted with it (the streaming cache's counters at
        checkpoint time), falling back to the snapshot generation when no
        map was saved — so ``sum_version`` on responses served from a
        replica is never silently ``None``.  Live stores return ``None``:
        their reads are unversioned unless wrapped in a
        :class:`~repro.streaming.cache.SumCache`.
        """
        if self._version_floors is not None:
            return int(self._version_floors.get(int(user_id), 0))
        if self._snapshot_generation is not None:
            return int(self._snapshot_generation)
        return None

    @property
    def global_version(self) -> int | None:
        """Persisted global version floor (``None`` on live stores)."""
        if self._global_floor is not None:
            return int(self._global_floor)
        return self._snapshot_generation

    # -- row management ----------------------------------------------------

    @requires_lock("_lock")
    def _grow_rows(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        new_capacity = self._capacity
        while new_capacity < needed:
            new_capacity *= _GROWTH_FACTOR
        grown_ids = self._alloc((new_capacity,), np.int64)
        grown_ids[: self._n] = self._user_ids[: self._n]
        self._user_ids = grown_ids
        # replacing the generation array invalidates any in-flight
        # lock-free capture by identity (readers re-check `values is`)
        self._row_gen.grow(new_capacity)
        for family in self._families():
            family.grow_rows(new_capacity)
        grown_ei = self._alloc((new_capacity, len(BRANCH_ORDER)), np.float64)
        grown_ei[:] = 0.5
        grown_ei[: self._n] = self._ei[: self._n]
        self._ei = grown_ei
        self._capacity = new_capacity

    def _families(self) -> tuple[_ColumnFamily, ...]:
        return (self._emotional, self._sensibility, self._subjective, self._evidence)

    def _new_row(self, user_id: int) -> int:
        if self._readonly:
            raise TypeError(
                "store is a read-only mmap replica; cannot create "
                f"user {user_id}"
            )
        with self._lock:
            row = self._row_of.get(user_id)
            if row is not None:  # lost a first-contact race: reuse
                return row
            row = self._n
            self._grow_rows(row + 1)
            self._clock.bump()
            self._user_ids[row] = user_id
            self._objective.append({})
            self._asked.append(set())
            self._answered.append(set())
            self._n += 1
            # published last: once visible, the row is fully initialized
            self._row_of[user_id] = row
            return row

    def row_index(self, user_id: int) -> int:
        """The row backing ``user_id`` (raises for unknown users)."""
        try:
            return self._row_of[int(user_id)]
        except KeyError:
            raise UnknownUserError([user_id]) from None

    def rows_for(
        self, user_ids: Sequence[int], create: bool = False
    ) -> np.ndarray:
        """Row indices for ``user_ids``; optionally creating missing rows.

        Unknown users (with ``create=False``) raise a single
        :class:`~repro.core.sum_model.UnknownUserError` naming them all.
        """
        # C-level bulk lookup: the serving read path resolves the whole
        # population per request, so no per-id Python bytecode here.
        rows_list = list(map(self._row_of.get, user_ids))
        if None in rows_list:
            if create:
                for i, row in enumerate(rows_list):
                    if row is None:
                        rows_list[i] = self._new_row(int(user_ids[i]))
            else:
                raise UnknownUserError(
                    int(uid)
                    for uid, row in zip(user_ids, rows_list)
                    if row is None
                )
        return np.asarray(rows_list, dtype=np.intp)

    # -- repository duck-type ----------------------------------------------

    def get_or_create(self, user_id: int) -> SumRowView:
        """Fetch a user's SUM view, creating an empty row on first contact."""
        user_id = int(user_id)
        row = self._row_of.get(user_id)
        if row is None:
            row = self._new_row(user_id)
        view = self._views.get(user_id)
        if view is None:
            view = self._views.setdefault(user_id, SumRowView(self, user_id, row))
        return view

    def get(self, user_id: int) -> SumRowView:
        """Fetch an existing SUM view; raises for unknown users."""
        user_id = int(user_id)
        if user_id not in self._row_of:
            raise UnknownUserError([user_id])
        return self.get_or_create(user_id)

    def __contains__(self, user_id: object) -> bool:
        return user_id in self._row_of

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[SumRowView]:
        for user_id in sorted(self._row_of):
            yield self.get(user_id)

    def user_ids(self) -> list[int]:
        """Sorted user ids with a SUM."""
        return sorted(self._row_of)

    def batch(
        self, user_ids: Sequence[int] | None = None, create: bool = False
    ) -> SumBatch:
        """Resolve a batch of users for columnar reads (default: all)."""
        ids = (
            [int(uid) for uid in user_ids]
            if user_ids is not None
            else self.user_ids()
        )
        return SumBatch(self, ids, self.rows_for(ids, create=create))

    def freeze_view(self, user_id: int) -> SumRowView:
        """An immutable point-in-time copy of one user's SUM.

        Captures the row's column slices directly — no ``to_dict()`` /
        ``from_dict()`` object rebuild — and returns a full
        :class:`SmartUserModel` view whose every write raises (item
        writes via the frozen arrays/families, attribute rebinding via
        :func:`seal_attributes`).  The caller is responsible for
        quiescing the user's writers during the capture (the streaming
        cache holds the user's write lock); a concurrent
        :meth:`compact_vocab` is tolerated via the layout-epoch retry.
        """
        user_id = int(user_id)
        row = self.row_index(user_id)
        while True:
            epoch = self._layout_epoch
            if epoch & 1:  # compaction mid-swap; wait for the new layout
                time.sleep(0)
                continue
            frozen = _FrozenRowStore(self, row)
            if self._layout_epoch == epoch:
                break
        view = SumRowView(frozen, user_id, 0)
        seal_attributes(view.emotional)
        seal_attributes(view.ei_profile)
        seal_attributes(view)
        return view

    def mirror(self, families: Sequence[str] | None = None) -> ColumnMirror:
        """A fresh copy-on-write read mirror over this store's columns.

        ``families`` names extra column families (``"subjective"``,
        ``"evidence"``) to stage beyond the Advice-stage defaults.
        """
        return ColumnMirror(self, families)

    # -- vocabulary compaction ----------------------------------------------

    def compact_vocab(self) -> int:
        """Drop dynamically interned columns whose presence is all-absent.

        Campaigns retire attributes but interned columns lived forever
        (the ROADMAP compaction item): every ``pref[...]`` or sensibility
        name ever written kept a column for the whole population.  This
        pass rebuilds the sensibility/subjective/evidence families keeping
        only seed columns (the emotion vocabulary — pinned so the shared
        intensity/sensibility/evidence column indices the scatter-add
        path relies on survive unchanged) and columns some live row still
        marks present.  Returns how many columns were dropped.

        Safe under live captures: the swap runs inside a layout-epoch
        seqlock window (odd while columns move, even once the new layout
        is published), and every capture path compares the epoch before
        and after slicing — a capture that raced the swap restages its
        mirror and retries, so no quiescing or manual ``invalidate()`` is
        needed.  Writers are excluded the ordinary way (the store lock).
        Frozen captures taken earlier stay valid — they hold the
        pre-compaction registries and arrays.
        """
        if self._readonly:
            raise TypeError(
                "store is a read-only mmap replica; compact the writable "
                "primary and re-checkpoint instead"
            )
        with self._lock:
            dropped = 0
            self._layout_epoch += 1  # odd: captures stall and restage
            try:
                for family in (
                    self._sensibility, self._subjective, self._evidence
                ):
                    dropped += self._compact_family(family)
            finally:
                self._layout_epoch += 1  # even: new layout published
            if dropped:
                self._clock.bump()
            return dropped

    @requires_lock("_lock")
    def _compact_family(self, family: _ColumnFamily) -> int:
        n = self._n
        seed = set(family.seed)
        keep = [
            name
            for j, name in enumerate(family.order)
            if name in seed or bool(family.mask[:n, j].any())
        ]
        dropped = len(family.order) - len(keep)
        if not dropped:
            return 0
        cols = np.asarray([family.index[name] for name in keep], dtype=np.intp)
        col_capacity = max(_INITIAL_COLS, len(keep))
        values = family._alloc(
            (family.values.shape[0], col_capacity), family.values.dtype
        )
        mask = family._alloc((family.mask.shape[0], col_capacity), np.bool_)
        if len(cols):
            values[:, : len(cols)] = family.values[:, cols]
            mask[:, : len(cols)] = family.mask[:, cols]
        # fresh registries, not in-place mutation: frozen captures share
        # the old index dict/order list by reference and must keep seeing
        # the layout their arrays were sliced under
        family.index = {name: j for j, name in enumerate(keep)}
        family.order = list(keep)
        family.values, family.mask = values, mask
        return dropped

    # -- columnar reads ----------------------------------------------------

    def feature_matrix(
        self,
        user_ids: Iterable[int] | None = None,
        subjective_order: Iterable[str] = (),
        include_ei: bool = True,
    ) -> tuple[np.ndarray, list[int]]:
        """Columnar :meth:`SumRepository.feature_matrix`: slices, no loops.

        Bit-equal to stacking ``feature_vector`` per model — the columns
        *are* the per-model values.
        """
        ids = (
            [int(uid) for uid in user_ids]
            if user_ids is not None
            else self.user_ids()
        )
        subjective_order = tuple(subjective_order)
        width = len(EMOTION_NAMES) + len(subjective_order) + (
            len(BRANCH_ORDER) if include_ei else 0
        )
        if not ids:
            return np.zeros((0, width)), []
        rows = self.rows_for(ids)
        parts = [self._emotional.values[rows][:, : len(EMOTION_NAMES)]]
        parts.append(
            self._subjective.read_matrix(rows, subjective_order, default=0.5)
        )
        if include_ei:
            parts.append(self._ei[rows])
        return np.hstack(parts), ids

    # -- vectorized update path --------------------------------------------

    def batch_apply_ops(
        self, items: Iterable[tuple[int, Sequence[Any]]], policy: Any
    ) -> list[int]:
        """Apply per-user op sequences vectorized across the population.

        ``items`` is a sequence of ``(user_id, ops)`` pairs; each user's
        ops apply in order, and different users' sequences commute (they
        touch disjoint rows), so op index ``k`` of every user is applied
        as one vectorized "round": decays are one array multiply over
        the decaying rows, rewards/punishes are scatter-adds through the
        same :class:`~repro.core.reward.ReinforcementPolicy` clamps as
        the scalar path — bit-equal results, population-at-once speed.

        All ops are validated *before* any mutation (unknown ops,
        unknown attributes or non-finite strengths raise with the store
        untouched), unlike the scalar path which fails mid-sequence.
        Returns per-item applied-op counts, aligned with ``items``.
        """
        if self._readonly:
            raise TypeError(
                "store is a read-only mmap replica; updates must run "
                "against the writable primary"
            )
        items = [(int(uid), tuple(ops)) for uid, ops in items]
        validate_batch_ops(items)
        with self._lock:
            return self._batch_apply_ops_locked(items, policy)

    @requires_lock("_lock")
    def _batch_apply_ops_locked(
        self, items: Sequence[tuple[int, tuple[Any, ...]]], policy: Any
    ) -> list[int]:
        """Apply pre-validated, normalized items (caller holds the lock).

        Validation lives in the public entry points — here *and* in the
        sharded router, which validates a whole cross-shard batch once
        before touching any partition — so it never runs twice per op.
        """
        if items:
            self._clock.bump()

        # Rounds vectorize across *distinct* rows; a user listed twice
        # must not have two ops land in the same round, so duplicate ids
        # merge into one ordered sequence (same sequential semantics).
        merged: dict[int, list] = {}
        for uid, ops in items:
            merged.setdefault(uid, []).extend(ops)
        entries = [(uid, tuple(ops)) for uid, ops in merged.items()]

        rows = self.rows_for([uid for uid, __ in entries], create=True)
        n_rounds = max((len(ops) for __, ops in entries), default=0)
        # One odd window for the whole commit: a lock-free capture must
        # observe a row before the first round or after the last, never a
        # half-applied op sequence (rows are unique after the merge, so
        # the fancy-indexed bump is one increment per row).
        if n_rounds:
            self._row_gen.begin(rows)
        try:
            self._apply_rounds(entries, rows, n_rounds, policy)
        finally:
            if n_rounds:
                self._row_gen.end(rows)
        return [len(ops) for __, ops in items]

    @requires_lock("_lock")
    def _apply_rounds(
        self,
        entries: Sequence[tuple[int, tuple[Any, ...]]],
        rows: np.ndarray,
        n_rounds: int,
        policy: Any,
    ) -> None:
        emotion_col = self._emotional.index
        for k in range(n_rounds):
            decay_rows: list[int] = []
            # Per *entry*, not per attribute: the column/occurrence layout
            # of an op's attribute tuple is memoized (streams repeat the
            # same few tuples endlessly), so building a round is O(ops)
            # Python work and the per-attribute fan-out happens in numpy
            # (np.repeat / concatenate).  This keeps the GIL-holding
            # fraction of a commit small — which is what lets sharded
            # writers actually overlap their vectorized sections.
            touch_rows: list[int] = []
            touch_steps: list[float] = []
            touch_cols: list[np.ndarray] = []
            touch_occs: list[np.ndarray] = []
            touch_widths: list[int] = []
            for i, (__, ops) in enumerate(entries):
                if k >= len(ops):
                    continue
                op = ops[k]
                if isinstance(op, DecayOp):
                    decay_rows.append(rows[i])
                    continue
                if isinstance(op, RewardOp):
                    step = policy.learning_rate * clamp01(op.strength)
                else:
                    step = (
                        policy.learning_rate
                        * policy.punish_ratio
                        * clamp01(op.strength)
                    )
                    step = -step
                cols, occs = self._op_layout(op.attributes, emotion_col)
                touch_rows.append(rows[i])
                touch_steps.append(step)
                touch_cols.append(cols)
                touch_occs.append(occs)
                touch_widths.append(len(cols))
            if decay_rows:
                self._decay_rows(np.asarray(decay_rows, dtype=np.intp), policy)
            if touch_rows:
                self._apply_touches(
                    np.repeat(
                        np.asarray(touch_rows, dtype=np.intp), touch_widths
                    ),
                    np.concatenate(touch_cols),
                    np.repeat(np.asarray(touch_steps), touch_widths),
                    np.concatenate(touch_occs),
                )

    #: memoized attribute-tuple layouts, shared by every store instance
    #: (column indices come from the frozen emotion catalog, identical
    #: for all stores and all shards forever)
    _OP_LAYOUTS: dict[tuple[str, ...], tuple[np.ndarray, np.ndarray]] = {}

    @classmethod
    def _op_layout(
        cls, attributes: tuple[str, ...], emotion_col: Mapping[str, int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(column indices, within-op occurrence indices) for one op's
        attribute tuple — a duplicated attribute gets occurrence 1, 2, …
        so its clamps still apply *between* occurrences, exactly as the
        sequential loop does."""
        layout = cls._OP_LAYOUTS.get(attributes)
        if layout is None:
            seen: dict[str, int] = {}
            occs = []
            for name in attributes:
                occurrence = seen.get(name, 0)
                seen[name] = occurrence + 1
                occs.append(occurrence)
            layout = (
                np.asarray(
                    [emotion_col[name] for name in attributes], dtype=np.intp
                ),
                np.asarray(occs, dtype=np.intp),
            )
            cls._OP_LAYOUTS[attributes] = layout
        return layout

    @requires_lock("_lock")
    def _decay_rows(self, rows: np.ndarray, policy: Any) -> None:
        """One decay tick over ``rows``: two array multiplies.

        Matches ``ReinforcementPolicy.apply_decay`` bit for bit: absent
        entries hold raw 0.0, and ``0.0 * factor == 0.0``, so decaying
        whole rows equals decaying only the present keys (masks are
        untouched — decay never creates attributes).
        """
        factor = 1.0 - policy.decay
        intensity = self._emotional.values
        intensity[rows] = np.clip(intensity[rows] * factor, 0.0, 1.0)
        weights = self._sensibility.values
        weights[rows] = np.clip(weights[rows] * factor, 0.0, 1.0)

    @requires_lock("_lock")
    def _apply_touches(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        steps: np.ndarray,
        occurrences: np.ndarray,
    ) -> None:
        """Scatter reward/punish steps through the scalar-path clamps.

        Touches are grouped by within-op occurrence so a duplicated
        attribute in one op clamps *between* its occurrences, exactly as
        the sequential loop does.  Within one occurrence group every
        (row, column) pair is unique, so plain fancy-index assignment is
        safe (no lost updates).  Duplicates are rare, so the whole-array
        fast path (everything occurrence 0) runs with zero masking.
        """
        intensity = self._emotional.values
        intensity_mask = self._emotional.mask
        weights = self._sensibility.values
        weights_mask = self._sensibility.mask
        evidence = self._evidence.values
        evidence_mask = self._evidence.mask
        max_occurrence = int(occurrences.max())
        for occurrence in range(max_occurrence + 1):
            if max_occurrence:
                group = occurrences == occurrence
                r, c, step = rows[group], cols[group], steps[group]
            else:
                r, c, step = rows, cols, steps
            intensity[r, c] = np.clip(intensity[r, c] + step, 0.0, 1.0)
            intensity_mask[r, c] = True
            evidence[r, c] += 1
            evidence_mask[r, c] = True
            # The emotion vocabulary seeds both families, so the emotion
            # column index is shared between intensity and sensibility.
            weights[r, c] = np.clip(weights[r, c] + step * 0.5, 0.0, 1.0)
            weights_mask[r, c] = True

    def decay_tick(
        self, policy: Any, user_ids: Sequence[int] | None = None
    ) -> int:
        """One population decay tick (default: every user); returns rows hit."""
        if self._readonly:
            raise TypeError(
                "store is a read-only mmap replica; updates must run "
                "against the writable primary"
            )
        with self._lock:
            rows = (
                np.arange(self._n, dtype=np.intp)
                if user_ids is None
                else self.rows_for(list(user_ids))
            )
            if len(rows):
                self._clock.bump()
                self._row_gen.begin(rows)
                try:
                    self._decay_rows(rows, policy)
                finally:
                    self._row_gen.end(rows)
            return int(len(rows))

    # -- JSON import/export (SumRepository-compatible) ----------------------

    def dumps(self) -> str:
        """Serialize to the exact :meth:`SumRepository.dumps` JSON format."""
        return json.dumps([m.to_dict() for m in self], sort_keys=True)

    @classmethod
    def loads(cls, payload: str) -> "ColumnarSumStore":
        """Inverse of :meth:`dumps`; accepts :class:`SumRepository` dumps."""
        store = cls()
        for item in json.loads(payload):
            store._ingest(item)
        return store

    def _ingest(self, payload: dict[str, Any]) -> SumRowView:
        """Load one :meth:`SmartUserModel.to_dict` payload into a row."""
        view = self.get_or_create(payload["user_id"])
        view.objective = dict(payload.get("objective", {}))
        for name, value in payload.get("subjective", {}).items():
            view.subjective[name] = clamp01(value)
        # Route through EmotionalState validation (unknown names raise).
        validated = EmotionalState(dict(payload.get("emotional", {})))
        for name, value in validated.intensities.items():
            view.emotional.intensities[name] = value
        for key, score in payload.get("ei_profile", {}).items():
            view.ei_profile.scores[Branch(key)] = clamp01(score)
        for name, weight in payload.get("sensibility", {}).items():
            view.sensibility[name] = clamp01(weight)
        for name, count in payload.get("evidence", {}).items():
            view.evidence[name] = int(count)
        view.asked_questions = set(payload.get("asked_questions", ()))
        view.answered_questions = set(payload.get("answered_questions", ()))
        return view

    @classmethod
    def from_repository(cls, repository: Any) -> "ColumnarSumStore":
        """Convert any SUM collection (object or columnar) to a new store."""
        store = cls()
        for model in repository:
            store._ingest(model.to_dict())
        return store

    def to_repository(self) -> SumRepository:
        """Export to an object-backed :class:`SumRepository` (deep copy)."""
        return SumRepository.loads(self.dumps())

    # -- Catalog persistence (.npz column pages) -----------------------------

    _PRESENT_SUFFIX = "__present"
    _FAMILY_NAMES = ("emotional", "sensibility", "subjective", "evidence")

    def _named_families(self) -> tuple[tuple[str, _ColumnFamily], ...]:
        return tuple(zip(self._FAMILY_NAMES, self._families()))

    def save(
        self,
        directory: str | Path,
        *,
        generation: int | None = None,
        versions: Mapping[int, int] | None = None,
        global_version: int | None = None,
    ) -> Path:
        """Persist through the :mod:`repro.db` Catalog, two layouts at once.

        * per-family ``.npz`` tables (the PR 3 interchange format: one
          value + ``__present`` column per attribute), still readable by
          any table consumer;
        * dense ``.npy`` column pages per family (``<family>__values`` /
          ``<family>__mask``) plus ``user_ids`` and ``ei`` — the serving
          format :meth:`load` can memory-map read-only, so every replica
          on a host shares one physical copy of the population.

        Neither layout round-trips values through per-element Python
        ``float()``/``int()`` lists anymore: columns are handed to the
        catalog as numpy slices and bulk-cast.

        The refresh protocol's stamps ride in the catalog meta:
        ``generation`` (the checkpoint's monotonic counter, usually
        assigned by :meth:`ShardedSumStore.save
        <repro.core.sharded_store.ShardedSumStore.save>`), ``versions``
        (the streaming cache's per-user counters at checkpoint time) and
        ``global_version``.  A replica :meth:`load`-ed from the pages
        reports them as its version floors.
        """
        from repro.db.catalog import Catalog
        from repro.db.schema import Column, ColumnType, Schema
        from repro.db.table import Table

        live = np.asarray(
            [self._row_of[uid] for uid in self.user_ids()], dtype=np.intp
        )
        ids = self._user_ids[live]
        catalog = Catalog()

        users_schema = Schema(
            [
                Column("user_id", ColumnType.INT64),
                Column("objective", ColumnType.STRING),
                Column("asked_questions", ColumnType.STRING),
                Column("answered_questions", ColumnType.STRING),
            ]
        )
        catalog.register(
            Table.from_columns(
                users_schema,
                {
                    "user_id": ids,
                    # dict() unwraps the MappingProxyType rows of a
                    # read-only replica — save() is a pure read and must
                    # work there (e.g. re-snapshotting a served state)
                    "objective": [
                        json.dumps(dict(self._objective[row]), sort_keys=True)
                        for row in live
                    ],
                    "asked_questions": [
                        json.dumps(sorted(self._asked[row])) for row in live
                    ],
                    "answered_questions": [
                        json.dumps(sorted(self._answered[row])) for row in live
                    ],
                },
                name="users",
            )
        )

        ei_schema = Schema(
            [Column("user_id", ColumnType.INT64)]
            + [Column(b.value, ColumnType.FLOAT64) for b in BRANCH_ORDER]
        )
        ei_columns: dict[str, Sequence[Any]] = {"user_id": ids}
        for j, branch in enumerate(BRANCH_ORDER):
            ei_columns[branch.value] = self._ei[live, j]
        catalog.register(Table.from_columns(ei_schema, ei_columns, name="ei"))

        for table_name, family in self._named_families():
            ctype = (
                ColumnType.INT64 if family is self._evidence
                else ColumnType.FLOAT64
            )
            columns: dict[str, Sequence[Any]] = {"user_id": ids}
            schema_columns = [Column("user_id", ColumnType.INT64)]
            for name in family.order:
                j = family.index[name]
                schema_columns.append(Column(name, ctype))
                schema_columns.append(
                    Column(name + self._PRESENT_SUFFIX, ColumnType.BOOL)
                )
                columns[name] = family.values[live, j]
                columns[name + self._PRESENT_SUFFIX] = family.mask[live, j]
            catalog.register(
                Table.from_columns(Schema(schema_columns), columns, name=table_name)
            )

        # -- dense pages: the mmap-able serving layout ---------------------
        catalog.put_array("user_ids", ids.astype(np.int64, copy=False))
        catalog.put_array("ei", self._ei[live])
        orders: dict[str, list[str]] = {}
        for page_name, family in self._named_families():
            width = family.width
            orders[page_name] = list(family.order)
            catalog.put_array(
                f"{page_name}__values", family.values[live][:, :width]
            )
            catalog.put_array(
                f"{page_name}__mask", family.mask[live][:, :width]
            )
        meta: dict[str, Any] = {"n_users": len(ids), "orders": orders}
        if generation is not None:
            meta["generation"] = int(generation)
        if versions is not None:
            # JSON object keys must be strings; load() restores the ints
            meta["versions"] = {
                str(int(uid)): int(v) for uid, v in versions.items()
            }
        if global_version is not None:
            meta["global_version"] = int(global_version)
        catalog.meta["sum_store"] = meta
        return catalog.save(directory)

    @classmethod
    def load(
        cls, directory: str | Path, mmap: bool = False
    ) -> "ColumnarSumStore":
        """Inverse of :meth:`save`.

        With ``mmap=True`` the dense column pages are memory-mapped
        read-only instead of copied: serving replicas on one host share a
        single page-cache copy of the population, and every write path on
        the returned store raises (``readonly`` is ``True``).  Requires
        the dense pages — directories written before they existed load
        copy-wise from the ``.npz`` tables and cannot be mmapped.
        """
        from repro.db.catalog import Catalog
        from repro.db.storage import StorageError

        catalog = Catalog.load(directory, mmap_arrays=mmap)
        meta = catalog.meta.get("sum_store")
        if meta is None or "user_ids" not in catalog.arrays:
            if mmap:
                raise StorageError(
                    f"{directory} has no dense column pages to mmap; "
                    "re-save the store with this version first"
                )
            return cls._load_from_tables(catalog)
        return cls._load_from_pages(catalog, meta, mmap=mmap)

    @classmethod
    def _load_from_pages(
        cls, catalog: Any, meta: dict[str, Any], mmap: bool
    ) -> "ColumnarSumStore":
        ids = catalog.array("user_ids")
        n = len(ids)
        users = catalog.get("users")
        if not np.array_equal(
            np.asarray(users.column("user_id"), dtype=np.int64),
            np.asarray(ids, dtype=np.int64),
        ):
            raise ValueError(
                "users table does not match the user_ids page; catalog "
                "directory is corrupt"
            )
        store = cls(initial_capacity=max(n, 1))
        rows = store.rows_for([int(u) for u in ids], create=True)
        for row, objective, asked, answered in zip(
            rows,
            users.column("objective"),
            users.column("asked_questions"),
            users.column("answered_questions"),
        ):
            store._objective[row] = json.loads(objective)
            store._asked[row] = set(json.loads(asked))
            store._answered[row] = set(json.loads(answered))

        # Version floors (the refresh protocol's stamps): restored for
        # copy loads too — a warm standby promoted to primary still knows
        # which checkpoint it came from.
        generation = meta.get("generation")
        store._snapshot_generation = (
            int(generation) if generation is not None else None
        )
        floors = meta.get("versions")
        store._version_floors = (
            {int(uid): int(v) for uid, v in floors.items()}
            if floors is not None else None
        )
        global_floor = meta.get("global_version")
        store._global_floor = (
            int(global_floor) if global_floor is not None else None
        )

        orders = meta["orders"]
        if mmap:
            # Adopt the mapped pages as the live arrays: zero copies, and
            # the read-only maps make every array write raise.
            for page_name, family in store._named_families():
                order = [str(name) for name in orders[page_name]]
                family.index = {name: j for j, name in enumerate(order)}
                family.order = order
                family.values = catalog.array(f"{page_name}__values")
                family.mask = catalog.array(f"{page_name}__mask")
                # a replica never interns columns, whatever the family
                family.frozen = True
            store._ei = catalog.array("ei")
            # The cold per-row state lives in process memory, not pages —
            # freeze it too, or replica writes there would silently
            # diverge from the maps ("every write path raises").
            store._objective = tuple(
                MappingProxyType(objective) for objective in store._objective
            )
            store._asked = tuple(frozenset(s) for s in store._asked)
            store._answered = tuple(frozenset(s) for s in store._answered)
            store._capacity = max(n, 1)
            store._readonly = True
            return store
        for page_name, family in store._named_families():
            order = [str(name) for name in orders[page_name]]
            cols = np.asarray(
                [family.ensure_column(name) for name in order], dtype=np.intp
            )
            if len(cols):
                family.values[np.ix_(rows, cols)] = catalog.array(
                    f"{page_name}__values"
                )
                family.mask[np.ix_(rows, cols)] = catalog.array(
                    f"{page_name}__mask"
                )
        store._ei[rows] = catalog.array("ei")
        return store

    @classmethod
    def _load_from_tables(cls, catalog: Any) -> "ColumnarSumStore":
        """Copy-wise load from the per-family ``.npz`` tables (legacy dirs)."""
        users = catalog.get("users")
        ids = [int(uid) for uid in users.column("user_id")]
        store = cls(initial_capacity=max(len(ids), 1))
        rows = store.rows_for(ids, create=True)
        for row, objective, asked, answered in zip(
            rows,
            users.column("objective"),
            users.column("asked_questions"),
            users.column("answered_questions"),
        ):
            store._objective[row] = json.loads(objective)
            store._asked[row] = set(json.loads(asked))
            store._answered[row] = set(json.loads(answered))

        def check_alignment(table: Any) -> None:
            # A data-integrity check, not a debug assert: misaligned
            # pages would scatter every user's values into wrong rows.
            if [int(u) for u in table.column("user_id")] != ids:
                raise ValueError(
                    f"table {table.name!r} user_id column does not match "
                    "the users table; catalog directory is corrupt"
                )

        ei = catalog.get("ei")
        check_alignment(ei)
        for j, branch in enumerate(BRANCH_ORDER):
            store._ei[rows, j] = np.asarray(ei.column(branch.value), dtype=np.float64)

        for table_name, family in store._named_families():
            table = catalog.get(table_name)
            check_alignment(table)
            for name in table.schema.names:
                if name == "user_id" or name.endswith(cls._PRESENT_SUFFIX):
                    continue
                j = family.ensure_column(name)
                family.values[rows, j] = table.column(name)
                family.mask[rows, j] = np.asarray(
                    table.column(name + cls._PRESENT_SUFFIX), dtype=bool
                )
        return store
