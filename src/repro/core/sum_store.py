"""Columnar Smart User Model store — struct-of-arrays for the population.

The paper's SPA "exploits heterogeneous, multi-dimensional and massive
databases" to maintain 75-attribute SUMs for the whole population.  The
object backend (:class:`~repro.core.sum_model.SumRepository`) keeps one
Python object per user, so every batch read rebuilds arrays the hardware
could slice directly.  :class:`ColumnarSumStore` flips the layout: the
*population* owns contiguous numpy columns, and each user is a row.

Layout (struct of arrays, row = user):

* ``emotional``   — ``(n, 10)`` float64 intensities in catalog order,
  plus a presence mask (a dict distinguishes "absent" from "0.0");
* ``ei``          — ``(n, 4)`` float64 Four-Branch scores (dense, the
  profile always has all four branches, neutral 0.5);
* ``sensibility`` — dynamically column-interned vocabulary (seeded with
  the ten emotions) of float64 weights + presence mask.  Presence
  matters: the Advice stage reads absent sensibilities as 1.0 while the
  reward loop reads them as 0.0;
* ``subjective``  — column-interned float64 tendencies + mask (absent
  reads as the neutral 0.5);
* ``evidence``    — column-interned int64 observation counters + mask;
* ``objective`` / EIT question sets — cold per-row Python objects (rarely
  touched, arbitrary values).

:class:`SumRowView` subclasses :class:`~repro.core.sum_model.SmartUserModel`
and re-expresses its attribute families as mapping *views* over one row,
so the entire existing scalar API — ``model.emotional[e]``,
``model.sensibility.get``, ``pipeline.apply_event``, the Gradual EIT —
keeps working unchanged on top of the columns.  Scalar mutations through
a view and vectorized mutations through :meth:`ColumnarSumStore.
batch_apply_ops` are bit-equal by construction: both run the same IEEE
double operations, just batched differently (the property suite in
``tests/properties/test_columnar_batch.py`` pins this down).

Persistence is columnar too: :meth:`ColumnarSumStore.save` writes the
population as ``.npz`` column pages through the :mod:`repro.db` Catalog,
and :meth:`dumps`/:meth:`loads` keep the :class:`SumRepository` JSON
format as a compatible import/export path.
"""

from __future__ import annotations

import json
import math
import threading
from collections.abc import MutableMapping
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.core.emotions import (
    EMOTION_CATALOG,
    EMOTION_NAMES,
    EmotionalState,
    clamp01,
)
from repro.core.four_branch import BRANCH_ORDER, Branch, FourBranchProfile
from repro.core.sum_model import SmartUserModel, SumRepository, UnknownUserError
from repro.core.updates import DecayOp, PunishOp, RewardOp

_GROWTH_FACTOR = 2
_INITIAL_ROWS = 1024
_INITIAL_COLS = 16


class _ColumnFamily:
    """One attribute family: named columns of values + presence masks.

    Columns are interned on first write ("dynamic column-interned
    vocabulary"): a new attribute name becomes a new column for the whole
    population, so reads stay contiguous slices.  ``frozen`` families
    (the fixed emotion catalog) reject unknown names instead.

    Thread-safety: unlike the object backend — where every user owns
    independent dicts — rows share arrays, and capacity growth *replaces*
    them, so an unsynchronized write could land in a just-discarded
    array and vanish.  All mutation therefore serializes on the owning
    store's ``lock`` (reads stay lock-free: a stale array holds the same
    committed values for any row whose writer is quiesced, which is the
    same per-user contract the streaming cache's locks already provide).
    """

    __slots__ = ("index", "order", "values", "mask", "frozen", "lock",
                 "_dtype")

    def __init__(
        self,
        dtype: np.dtype,
        row_capacity: int,
        lock: threading.RLock,
        seed_names: Sequence[str] = (),
        frozen: bool = False,
    ) -> None:
        self.lock = lock
        self._dtype = np.dtype(dtype)
        self.index: dict[str, int] = {name: j for j, name in enumerate(seed_names)}
        self.order: list[str] = list(seed_names)
        col_capacity = max(_INITIAL_COLS, len(self.order))
        self.values = np.zeros((row_capacity, col_capacity), dtype=self._dtype)
        self.mask = np.zeros((row_capacity, col_capacity), dtype=bool)
        self.frozen = frozen

    @property
    def width(self) -> int:
        return len(self.order)

    def column_of(self, name: str) -> int | None:
        """Column index of ``name`` (``None`` if never interned)."""
        return self.index.get(name)

    def ensure_column(self, name: str) -> int:
        """Intern ``name``; returns its column index."""
        j = self.index.get(name)  # GIL-atomic fast path
        if j is not None:
            return j
        if self.frozen:
            raise KeyError(
                f"unknown attribute {name!r}; have {sorted(self.index)}"
            )
        with self.lock:
            j = self.index.get(name)
            if j is not None:
                return j
            j = len(self.order)
            if j >= self.values.shape[1]:
                new_cols = max(
                    _INITIAL_COLS, self.values.shape[1] * _GROWTH_FACTOR
                )
                grown_v = np.zeros(
                    (self.values.shape[0], new_cols), dtype=self._dtype
                )
                grown_v[:, : self.values.shape[1]] = self.values
                grown_m = np.zeros((self.mask.shape[0], new_cols), dtype=bool)
                grown_m[:, : self.mask.shape[1]] = self.mask
                self.values, self.mask = grown_v, grown_m
            self.index[name] = j
            self.order.append(name)
            return j

    def read_matrix(
        self, rows: np.ndarray, names: Sequence[str], default: float
    ) -> np.ndarray:
        """``(len(rows), len(names))`` values; absent entries → ``default``."""
        out = np.full((len(rows), len(names)), float(default))
        for k, name in enumerate(names):
            j = self.column_of(name)
            if j is None:
                continue
            out[:, k] = np.where(
                self.mask[rows, j], self.values[rows, j], float(default)
            )
        return out

    def grow_rows(self, new_capacity: int) -> None:
        grown_v = np.zeros((new_capacity, self.values.shape[1]), dtype=self._dtype)
        grown_v[: self.values.shape[0]] = self.values
        grown_m = np.zeros((new_capacity, self.mask.shape[1]), dtype=bool)
        grown_m[: self.mask.shape[0]] = self.mask
        self.values, self.mask = grown_v, grown_m

    def clear_row(self, row: int) -> None:
        self.values[row, :] = 0
        self.mask[row, :] = False


class _RowMapView(MutableMapping):
    """Dict-compatible view of one family row (presence-mask aware)."""

    __slots__ = ("_family", "_row", "_cast")

    def __init__(self, family: _ColumnFamily, row: int, cast=float) -> None:
        self._family = family
        self._row = row
        self._cast = cast

    def __getitem__(self, name: str):
        j = self._family.column_of(name)
        if j is None or not self._family.mask[self._row, j]:
            raise KeyError(name)
        return self._cast(self._family.values[self._row, j])

    def __setitem__(self, name: str, value) -> None:
        family = self._family
        # Under the lock: a concurrent capacity growth replaces the
        # arrays, and a write to the replaced one would be lost.
        with family.lock:
            j = family.ensure_column(name)
            family.values[self._row, j] = value
            family.mask[self._row, j] = True

    def __delitem__(self, name: str) -> None:
        family = self._family
        with family.lock:
            j = family.column_of(name)
            if j is None or not family.mask[self._row, j]:
                raise KeyError(name)
            family.values[self._row, j] = 0
            family.mask[self._row, j] = False

    def __iter__(self) -> Iterator[str]:
        mask = self._family.mask[self._row]
        order = self._family.order
        for j in np.flatnonzero(mask[: len(order)]):
            yield order[j]

    def __len__(self) -> int:
        return int(self._family.mask[self._row, : self._family.width].sum())

    def __repr__(self) -> str:
        return repr(dict(self))


class _BranchScoresView(MutableMapping):
    """``dict[Branch, float]`` view over one row of the EI block."""

    __slots__ = ("_store", "_row")

    _COLUMN = {branch: j for j, branch in enumerate(BRANCH_ORDER)}

    def __init__(self, store: "ColumnarSumStore", row: int) -> None:
        self._store = store
        self._row = row

    def __getitem__(self, branch: Branch) -> float:
        return float(self._store._ei[self._row, self._COLUMN[branch]])

    def __setitem__(self, branch: Branch, value: float) -> None:
        with self._store._lock:  # row growth replaces the EI block
            self._store._ei[self._row, self._COLUMN[branch]] = value

    def __delitem__(self, branch: Branch) -> None:
        raise TypeError("Four-Branch scores are always present")

    def __iter__(self) -> Iterator[Branch]:
        return iter(BRANCH_ORDER)

    def __len__(self) -> int:
        return len(BRANCH_ORDER)

    def __repr__(self) -> str:
        return repr(dict(self))


class _EmotionalStateView(EmotionalState):
    """:class:`EmotionalState` whose intensities live in store columns."""

    def __init__(self, store: "ColumnarSumStore", row: int) -> None:
        # Deliberately skip the dataclass __init__: intensities is a live
        # mapping view, not an owned dict, and needs no re-validation.
        self.intensities = _RowMapView(store._emotional, row)
        self.catalog = EMOTION_CATALOG
        self._store = store
        self._row = row

    def as_vector(self, order: Iterable[str] | None = None) -> np.ndarray:
        names = tuple(order) if order is not None else EMOTION_NAMES
        if names == EMOTION_NAMES:
            width = len(EMOTION_NAMES)
            return self._store._emotional.values[self._row, :width].astype(
                np.float64, copy=True
            )
        return super().as_vector(names)


class _FourBranchProfileView(FourBranchProfile):
    """:class:`FourBranchProfile` whose scores live in store columns."""

    def __init__(self, store: "ColumnarSumStore", row: int) -> None:
        self.scores = _BranchScoresView(store, row)


class SumRowView(SmartUserModel):
    """One user's SUM as a thin view over the columnar store.

    Subclasses :class:`SmartUserModel` so every behaviour — reward,
    sensibility analysis, the Gradual EIT, feature extraction,
    ``to_dict`` — runs unchanged; only the storage underneath differs.
    """

    # Instance attributes of SmartUserModel are replaced by properties
    # reading through to the store, so views stay valid across array
    # growth (families are stable objects; their arrays are looked up on
    # every access).

    def __init__(self, store: "ColumnarSumStore", user_id: int, row: int) -> None:
        self.user_id = int(user_id)
        self._store = store
        self._row = row
        self.emotional = _EmotionalStateView(store, row)
        self.ei_profile = _FourBranchProfileView(store, row)
        self.subjective = _RowMapView(store._subjective, row)
        self.sensibility = _RowMapView(store._sensibility, row)
        self.evidence = _RowMapView(store._evidence, row, cast=int)

    # -- cold, per-row Python state ----------------------------------------

    @property
    def objective(self) -> dict[str, Any]:
        return self._store._objective[self._row]

    @objective.setter
    def objective(self, value: dict[str, Any]) -> None:
        self._store._objective[self._row] = dict(value)

    @property
    def asked_questions(self) -> set[str]:
        return self._store._asked[self._row]

    @asked_questions.setter
    def asked_questions(self, value: Iterable[str]) -> None:
        self._store._asked[self._row] = set(value)

    @property
    def answered_questions(self) -> set[str]:
        return self._store._answered[self._row]

    @answered_questions.setter
    def answered_questions(self, value: Iterable[str]) -> None:
        self._store._answered[self._row] = set(value)


class SumBatch:
    """A resolved batch of users: row indices + column-sliced reads.

    Behaves like a sequence of models (``len``, iteration) so existing
    per-model code keeps working, while batch consumers — the Advice
    stage, feature extraction — slice whole columns instead of looping.
    """

    __slots__ = ("store", "user_ids", "rows")

    def __init__(
        self, store: "ColumnarSumStore", user_ids: Sequence[int], rows: np.ndarray
    ) -> None:
        self.store = store
        self.user_ids = [int(uid) for uid in user_ids]
        self.rows = rows

    def __len__(self) -> int:
        return len(self.user_ids)

    def __iter__(self) -> Iterator[SumRowView]:
        for uid in self.user_ids:
            yield self.store.get(uid)

    def intensity_matrix(self, order: Sequence[str]) -> np.ndarray:
        """``(n_users, len(order))`` emotional intensities."""
        family = self.store._emotional
        cols = [family.ensure_column(name) for name in order]
        return family.values[np.ix_(self.rows, cols)]

    def sensibility_matrix(
        self, order: Sequence[str], default: float = 1.0
    ) -> np.ndarray:
        """``(n_users, len(order))`` sensibilities; absent → ``default``."""
        return self.store._sensibility.read_matrix(self.rows, order, default)


class ColumnarSumStore:
    """Struct-of-arrays SUM backend for the whole population.

    Duck-types :class:`~repro.core.sum_model.SumRepository` (``get``,
    ``get_or_create``, ``user_ids``, ``feature_matrix``, ``dumps`` /
    ``loads``, iteration) so every existing layer — serving, streaming,
    campaigns — can run on top of it unchanged, while batch consumers
    get true columnar access (:meth:`batch`, :meth:`batch_apply_ops`).
    """

    def __init__(self, initial_capacity: int = _INITIAL_ROWS) -> None:
        capacity = max(1, int(initial_capacity))
        #: serializes every mutation: rows share arrays and capacity
        #: growth replaces them, so concurrent shard workers must not
        #: interleave writes with structural changes (reads stay
        #: lock-free — per-user read consistency comes from the
        #: streaming cache's user locks, as with the object backend)
        self._lock = threading.RLock()
        self._row_of: dict[int, int] = {}
        self._user_ids = np.zeros(capacity, dtype=np.int64)
        self._n = 0
        self._capacity = capacity
        self._emotional = _ColumnFamily(
            np.float64, capacity, self._lock,
            seed_names=EMOTION_NAMES, frozen=True,
        )
        self._sensibility = _ColumnFamily(
            np.float64, capacity, self._lock, seed_names=EMOTION_NAMES
        )
        self._subjective = _ColumnFamily(np.float64, capacity, self._lock)
        self._evidence = _ColumnFamily(
            np.int64, capacity, self._lock, seed_names=EMOTION_NAMES
        )
        self._ei = np.full((capacity, len(BRANCH_ORDER)), 0.5)
        self._objective: list[dict[str, Any]] = []
        self._asked: list[set[str]] = []
        self._answered: list[set[str]] = []
        self._views: dict[int, SumRowView] = {}

    # -- row management ----------------------------------------------------

    def _grow_rows(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        new_capacity = self._capacity
        while new_capacity < needed:
            new_capacity *= _GROWTH_FACTOR
        grown_ids = np.zeros(new_capacity, dtype=np.int64)
        grown_ids[: self._n] = self._user_ids[: self._n]
        self._user_ids = grown_ids
        for family in self._families():
            family.grow_rows(new_capacity)
        grown_ei = np.full((new_capacity, len(BRANCH_ORDER)), 0.5)
        grown_ei[: self._n] = self._ei[: self._n]
        self._ei = grown_ei
        self._capacity = new_capacity

    def _families(self) -> tuple[_ColumnFamily, ...]:
        return (self._emotional, self._sensibility, self._subjective, self._evidence)

    def _new_row(self, user_id: int) -> int:
        with self._lock:
            row = self._row_of.get(user_id)
            if row is not None:  # lost a first-contact race: reuse
                return row
            row = self._n
            self._grow_rows(row + 1)
            self._user_ids[row] = user_id
            self._objective.append({})
            self._asked.append(set())
            self._answered.append(set())
            self._n += 1
            # published last: once visible, the row is fully initialized
            self._row_of[user_id] = row
            return row

    def row_index(self, user_id: int) -> int:
        """The row backing ``user_id`` (raises for unknown users)."""
        try:
            return self._row_of[int(user_id)]
        except KeyError:
            raise UnknownUserError([user_id]) from None

    def rows_for(
        self, user_ids: Sequence[int], create: bool = False
    ) -> np.ndarray:
        """Row indices for ``user_ids``; optionally creating missing rows.

        Unknown users (with ``create=False``) raise a single
        :class:`~repro.core.sum_model.UnknownUserError` naming them all.
        """
        rows = np.empty(len(user_ids), dtype=np.intp)
        missing: list[int] = []
        for i, uid in enumerate(user_ids):
            uid = int(uid)
            row = self._row_of.get(uid)
            if row is None:
                if create:
                    row = self._new_row(uid)
                else:
                    missing.append(uid)
                    continue
            rows[i] = row
        if missing:
            raise UnknownUserError(missing)
        return rows

    # -- repository duck-type ----------------------------------------------

    def get_or_create(self, user_id: int) -> SumRowView:
        """Fetch a user's SUM view, creating an empty row on first contact."""
        user_id = int(user_id)
        row = self._row_of.get(user_id)
        if row is None:
            row = self._new_row(user_id)
        view = self._views.get(user_id)
        if view is None:
            view = self._views.setdefault(user_id, SumRowView(self, user_id, row))
        return view

    def get(self, user_id: int) -> SumRowView:
        """Fetch an existing SUM view; raises for unknown users."""
        user_id = int(user_id)
        if user_id not in self._row_of:
            raise UnknownUserError([user_id])
        return self.get_or_create(user_id)

    def __contains__(self, user_id: object) -> bool:
        return user_id in self._row_of

    def __len__(self) -> int:
        return self._n

    def __iter__(self) -> Iterator[SumRowView]:
        for user_id in sorted(self._row_of):
            yield self.get(user_id)

    def user_ids(self) -> list[int]:
        """Sorted user ids with a SUM."""
        return sorted(self._row_of)

    def batch(
        self, user_ids: Sequence[int] | None = None, create: bool = False
    ) -> SumBatch:
        """Resolve a batch of users for columnar reads (default: all)."""
        ids = (
            [int(uid) for uid in user_ids]
            if user_ids is not None
            else self.user_ids()
        )
        return SumBatch(self, ids, self.rows_for(ids, create=create))

    # -- columnar reads ----------------------------------------------------

    def feature_matrix(
        self,
        user_ids: Iterable[int] | None = None,
        subjective_order: Iterable[str] = (),
        include_ei: bool = True,
    ) -> tuple[np.ndarray, list[int]]:
        """Columnar :meth:`SumRepository.feature_matrix`: slices, no loops.

        Bit-equal to stacking ``feature_vector`` per model — the columns
        *are* the per-model values.
        """
        ids = (
            [int(uid) for uid in user_ids]
            if user_ids is not None
            else self.user_ids()
        )
        subjective_order = tuple(subjective_order)
        width = len(EMOTION_NAMES) + len(subjective_order) + (
            len(BRANCH_ORDER) if include_ei else 0
        )
        if not ids:
            return np.zeros((0, width)), []
        rows = self.rows_for(ids)
        parts = [self._emotional.values[rows][:, : len(EMOTION_NAMES)]]
        parts.append(
            self._subjective.read_matrix(rows, subjective_order, default=0.5)
        )
        if include_ei:
            parts.append(self._ei[rows])
        return np.hstack(parts), ids

    # -- vectorized update path --------------------------------------------

    def batch_apply_ops(self, items, policy) -> list[int]:
        """Apply per-user op sequences vectorized across the population.

        ``items`` is a sequence of ``(user_id, ops)`` pairs; each user's
        ops apply in order, and different users' sequences commute (they
        touch disjoint rows), so op index ``k`` of every user is applied
        as one vectorized "round": decays are one array multiply over
        the decaying rows, rewards/punishes are scatter-adds through the
        same :class:`~repro.core.reward.ReinforcementPolicy` clamps as
        the scalar path — bit-equal results, population-at-once speed.

        All ops are validated *before* any mutation (unknown ops,
        unknown attributes or non-finite strengths raise with the store
        untouched), unlike the scalar path which fails mid-sequence.
        Returns per-item applied-op counts, aligned with ``items``.
        """
        with self._lock:
            return self._batch_apply_ops_locked(items, policy)

    def _batch_apply_ops_locked(self, items, policy) -> list[int]:
        items = [(int(uid), tuple(ops)) for uid, ops in items]
        emotion_col = self._emotional.index
        for __, ops in items:
            for op in ops:
                if isinstance(op, DecayOp):
                    continue
                if isinstance(op, (RewardOp, PunishOp)):
                    for name in op.attributes:
                        if name not in emotion_col:
                            raise KeyError(
                                f"unknown emotional attribute {name!r}; "
                                f"have {sorted(emotion_col)}"
                            )
                    if not math.isfinite(float(op.strength)):
                        raise ValueError(
                            f"non-finite op strength {op.strength!r}"
                        )
                else:
                    raise TypeError(f"unknown SUM update op {op!r}")

        # Rounds vectorize across *distinct* rows; a user listed twice
        # must not have two ops land in the same round, so duplicate ids
        # merge into one ordered sequence (same sequential semantics).
        merged: dict[int, list] = {}
        for uid, ops in items:
            merged.setdefault(uid, []).extend(ops)
        entries = [(uid, tuple(ops)) for uid, ops in merged.items()]

        rows = self.rows_for([uid for uid, __ in entries], create=True)
        n_rounds = max((len(ops) for __, ops in entries), default=0)
        for k in range(n_rounds):
            decay_rows: list[int] = []
            # (row, emotion column, signed intensity step, occurrence)
            touches: list[tuple[int, int, float, int]] = []
            for i, (__, ops) in enumerate(entries):
                if k >= len(ops):
                    continue
                op = ops[k]
                if isinstance(op, DecayOp):
                    decay_rows.append(rows[i])
                    continue
                if isinstance(op, RewardOp):
                    step = policy.learning_rate * clamp01(op.strength)
                else:
                    step = (
                        policy.learning_rate
                        * policy.punish_ratio
                        * clamp01(op.strength)
                    )
                    step = -step
                seen: dict[str, int] = {}
                for name in op.attributes:
                    occurrence = seen.get(name, 0)
                    seen[name] = occurrence + 1
                    touches.append(
                        (rows[i], emotion_col[name], step, occurrence)
                    )
            if decay_rows:
                self._decay_rows(np.asarray(decay_rows, dtype=np.intp), policy)
            if touches:
                self._apply_touches(touches)
        return [len(ops) for __, ops in items]

    def _decay_rows(self, rows: np.ndarray, policy) -> None:
        """One decay tick over ``rows``: two array multiplies.

        Matches ``ReinforcementPolicy.apply_decay`` bit for bit: absent
        entries hold raw 0.0, and ``0.0 * factor == 0.0``, so decaying
        whole rows equals decaying only the present keys (masks are
        untouched — decay never creates attributes).
        """
        factor = 1.0 - policy.decay
        intensity = self._emotional.values
        intensity[rows] = np.clip(intensity[rows] * factor, 0.0, 1.0)
        weights = self._sensibility.values
        weights[rows] = np.clip(weights[rows] * factor, 0.0, 1.0)

    def _apply_touches(
        self, touches: Sequence[tuple[int, int, float, int]]
    ) -> None:
        """Scatter reward/punish steps through the scalar-path clamps.

        Touches are grouped by within-op occurrence so a duplicated
        attribute in one op clamps *between* its occurrences, exactly as
        the sequential loop does.  Within one occurrence group every
        (row, column) pair is unique, so plain fancy-index assignment is
        safe (no lost updates).
        """
        max_occurrence = max(t[3] for t in touches)
        intensity = self._emotional.values
        intensity_mask = self._emotional.mask
        weights = self._sensibility.values
        weights_mask = self._sensibility.mask
        evidence = self._evidence.values
        evidence_mask = self._evidence.mask
        for occurrence in range(max_occurrence + 1):
            group = [t for t in touches if t[3] == occurrence]
            r = np.asarray([t[0] for t in group], dtype=np.intp)
            c = np.asarray([t[1] for t in group], dtype=np.intp)
            step = np.asarray([t[2] for t in group])
            intensity[r, c] = np.clip(intensity[r, c] + step, 0.0, 1.0)
            intensity_mask[r, c] = True
            evidence[r, c] += 1
            evidence_mask[r, c] = True
            # The emotion vocabulary seeds both families, so the emotion
            # column index is shared between intensity and sensibility.
            weights[r, c] = np.clip(weights[r, c] + step * 0.5, 0.0, 1.0)
            weights_mask[r, c] = True

    def decay_tick(self, policy, user_ids: Sequence[int] | None = None) -> int:
        """One population decay tick (default: every user); returns rows hit."""
        with self._lock:
            rows = (
                np.arange(self._n, dtype=np.intp)
                if user_ids is None
                else self.rows_for(list(user_ids))
            )
            if len(rows):
                self._decay_rows(rows, policy)
            return int(len(rows))

    # -- JSON import/export (SumRepository-compatible) ----------------------

    def dumps(self) -> str:
        """Serialize to the exact :meth:`SumRepository.dumps` JSON format."""
        return json.dumps([m.to_dict() for m in self], sort_keys=True)

    @classmethod
    def loads(cls, payload: str) -> "ColumnarSumStore":
        """Inverse of :meth:`dumps`; accepts :class:`SumRepository` dumps."""
        store = cls()
        for item in json.loads(payload):
            store._ingest(item)
        return store

    def _ingest(self, payload: dict[str, Any]) -> SumRowView:
        """Load one :meth:`SmartUserModel.to_dict` payload into a row."""
        view = self.get_or_create(payload["user_id"])
        view.objective = dict(payload.get("objective", {}))
        for name, value in payload.get("subjective", {}).items():
            view.subjective[name] = clamp01(value)
        # Route through EmotionalState validation (unknown names raise).
        validated = EmotionalState(dict(payload.get("emotional", {})))
        for name, value in validated.intensities.items():
            view.emotional.intensities[name] = value
        for key, score in payload.get("ei_profile", {}).items():
            view.ei_profile.scores[Branch(key)] = clamp01(score)
        for name, weight in payload.get("sensibility", {}).items():
            view.sensibility[name] = clamp01(weight)
        for name, count in payload.get("evidence", {}).items():
            view.evidence[name] = int(count)
        view.asked_questions = set(payload.get("asked_questions", ()))
        view.answered_questions = set(payload.get("answered_questions", ()))
        return view

    @classmethod
    def from_repository(cls, repository) -> "ColumnarSumStore":
        """Convert any SUM collection (object or columnar) to a new store."""
        store = cls()
        for model in repository:
            store._ingest(model.to_dict())
        return store

    def to_repository(self) -> SumRepository:
        """Export to an object-backed :class:`SumRepository` (deep copy)."""
        return SumRepository.loads(self.dumps())

    # -- Catalog persistence (.npz column pages) -----------------------------

    _PRESENT_SUFFIX = "__present"

    def save(self, directory: str | Path) -> Path:
        """Persist as ``.npz`` column pages via the :mod:`repro.db` Catalog.

        One table per attribute family; dynamic vocabularies become
        columns (value + ``__present`` mask), cold per-row state is
        JSON-encoded strings in the ``users`` table.
        """
        from repro.db.catalog import Catalog
        from repro.db.schema import Column, ColumnType, Schema
        from repro.db.table import Table

        live = np.asarray(
            [self._row_of[uid] for uid in self.user_ids()], dtype=np.intp
        )
        ids = [int(self._user_ids[row]) for row in live]
        catalog = Catalog()

        users_schema = Schema(
            [
                Column("user_id", ColumnType.INT64),
                Column("objective", ColumnType.STRING),
                Column("asked_questions", ColumnType.STRING),
                Column("answered_questions", ColumnType.STRING),
            ]
        )
        catalog.register(
            Table.from_columns(
                users_schema,
                {
                    "user_id": ids,
                    "objective": [
                        json.dumps(self._objective[row], sort_keys=True)
                        for row in live
                    ],
                    "asked_questions": [
                        json.dumps(sorted(self._asked[row])) for row in live
                    ],
                    "answered_questions": [
                        json.dumps(sorted(self._answered[row])) for row in live
                    ],
                },
                name="users",
            )
        )

        ei_schema = Schema(
            [Column("user_id", ColumnType.INT64)]
            + [Column(b.value, ColumnType.FLOAT64) for b in BRANCH_ORDER]
        )
        ei_columns: dict[str, Sequence[Any]] = {"user_id": ids}
        for j, branch in enumerate(BRANCH_ORDER):
            ei_columns[branch.value] = [float(v) for v in self._ei[live, j]]
        catalog.register(Table.from_columns(ei_schema, ei_columns, name="ei"))

        for table_name, family, ctype, cast in (
            ("emotional", self._emotional, ColumnType.FLOAT64, float),
            ("sensibility", self._sensibility, ColumnType.FLOAT64, float),
            ("subjective", self._subjective, ColumnType.FLOAT64, float),
            ("evidence", self._evidence, ColumnType.INT64, int),
        ):
            columns: dict[str, Sequence[Any]] = {"user_id": ids}
            schema_columns = [Column("user_id", ColumnType.INT64)]
            for name in family.order:
                j = family.index[name]
                schema_columns.append(Column(name, ctype))
                schema_columns.append(
                    Column(name + self._PRESENT_SUFFIX, ColumnType.BOOL)
                )
                columns[name] = [cast(v) for v in family.values[live, j]]
                columns[name + self._PRESENT_SUFFIX] = [
                    bool(v) for v in family.mask[live, j]
                ]
            catalog.register(
                Table.from_columns(Schema(schema_columns), columns, name=table_name)
            )
        return catalog.save(directory)

    @classmethod
    def load(cls, directory: str | Path) -> "ColumnarSumStore":
        """Inverse of :meth:`save`."""
        from repro.db.catalog import Catalog

        catalog = Catalog.load(directory)
        users = catalog.get("users")
        ids = [int(uid) for uid in users.column("user_id")]
        store = cls(initial_capacity=max(len(ids), 1))
        rows = store.rows_for(ids, create=True)
        for row, objective, asked, answered in zip(
            rows,
            users.column("objective"),
            users.column("asked_questions"),
            users.column("answered_questions"),
        ):
            store._objective[row] = json.loads(objective)
            store._asked[row] = set(json.loads(asked))
            store._answered[row] = set(json.loads(answered))

        def check_alignment(table) -> None:
            # A data-integrity check, not a debug assert: misaligned
            # pages would scatter every user's values into wrong rows.
            if [int(u) for u in table.column("user_id")] != ids:
                raise ValueError(
                    f"table {table.name!r} user_id column does not match "
                    "the users table; catalog directory is corrupt"
                )

        ei = catalog.get("ei")
        check_alignment(ei)
        for j, branch in enumerate(BRANCH_ORDER):
            store._ei[rows, j] = np.asarray(ei.column(branch.value), dtype=np.float64)

        for table_name, family in (
            ("emotional", store._emotional),
            ("sensibility", store._sensibility),
            ("subjective", store._subjective),
            ("evidence", store._evidence),
        ):
            table = catalog.get(table_name)
            check_alignment(table)
            for name in table.schema.names:
                if name == "user_id" or name.endswith(cls._PRESENT_SUFFIX):
                    continue
                j = family.ensure_column(name)
                family.values[rows, j] = table.column(name)
                family.mask[rows, j] = np.asarray(
                    table.column(name + cls._PRESENT_SUFFIX), dtype=bool
                )
        return store
