"""The emotion catalog and valence algebra.

Section 5.1 of the paper fixes the emotional vocabulary of the business
case: "we have ten suitable emotional attributes with different kind of
valence for this business case: enthusiastic, motivated, empathic, hopeful,
lively, stimulated, impatient, frightened, shy and apathetic".

Section 3 defines valence: "a valence is the degree of attraction or
aversion that a person feels toward a specific object or event".  We encode
valence in [-1, +1] and add a circumplex-style *arousal* coordinate in
[0, 1] (used by the physiological mapping of :mod:`repro.physio`).

:class:`EmotionalState` is the per-user emotional snapshot: a bounded
intensity per attribute, with blending, decay and summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

import numpy as np


def clamp01(value: float) -> float:
    """Clamp to the closed unit interval."""
    return min(1.0, max(0.0, float(value)))


def clamp_valence(value: float) -> float:
    """Clamp to [-1, +1]."""
    return min(1.0, max(-1.0, float(value)))


@dataclass(frozen=True)
class EmotionalAttribute:
    """One labelled emotional attribute.

    Parameters
    ----------
    name:
        Lower-case attribute label (as in Section 5.1).
    valence:
        Attraction (+) / aversion (−) in [-1, +1].
    arousal:
        Activation level in [0, 1] (0 = deactivated, 1 = highly activated).
    description:
        Human-readable gloss.
    """

    name: str
    valence: float
    arousal: float
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("emotional attribute needs a name")
        if not -1.0 <= self.valence <= 1.0:
            raise ValueError(f"valence {self.valence} outside [-1, 1]")
        if not 0.0 <= self.arousal <= 1.0:
            raise ValueError(f"arousal {self.arousal} outside [0, 1]")

    @property
    def is_positive(self) -> bool:
        """Whether this attribute attracts (valence > 0)."""
        return self.valence > 0.0


#: The ten emotional attributes of the emagister.com business case (§5.1),
#: with valence signs implied by the paper's usage and circumplex-informed
#: arousal coordinates.
EMOTION_CATALOG: dict[str, EmotionalAttribute] = {
    attribute.name: attribute
    for attribute in (
        EmotionalAttribute("enthusiastic", +0.9, 0.85, "eager, excited engagement"),
        EmotionalAttribute("motivated", +0.8, 0.70, "goal-directed drive"),
        EmotionalAttribute("empathic", +0.6, 0.40, "felt connection with others"),
        EmotionalAttribute("hopeful", +0.7, 0.45, "positive expectation"),
        EmotionalAttribute("lively", +0.8, 0.90, "energetic, vivacious"),
        EmotionalAttribute("stimulated", +0.7, 0.80, "aroused curiosity"),
        EmotionalAttribute("impatient", -0.5, 0.75, "frustrated urgency"),
        EmotionalAttribute("frightened", -0.9, 0.85, "fearful aversion"),
        EmotionalAttribute("shy", -0.4, 0.25, "withdrawn reluctance"),
        EmotionalAttribute("apathetic", -0.7, 0.10, "disengaged indifference"),
    )
}

#: Catalog order used everywhere a vector layout is needed.
EMOTION_NAMES: tuple[str, ...] = tuple(EMOTION_CATALOG)

POSITIVE_EMOTIONS: tuple[str, ...] = tuple(
    name for name, attr in EMOTION_CATALOG.items() if attr.valence > 0
)
NEGATIVE_EMOTIONS: tuple[str, ...] = tuple(
    name for name, attr in EMOTION_CATALOG.items() if attr.valence < 0
)


@dataclass
class EmotionalState:
    """Bounded intensities over the emotion catalog.

    Intensities live in [0, 1]; missing attributes read as 0.  All update
    operations clamp, so states remain valid under arbitrary call orders —
    a property the hypothesis suite exercises.
    """

    intensities: dict[str, float] = field(default_factory=dict)
    catalog: Mapping[str, EmotionalAttribute] = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.catalog is None:
            self.catalog = EMOTION_CATALOG
        for name, value in list(self.intensities.items()):
            self._check_name(name)
            self.intensities[name] = clamp01(value)

    def _check_name(self, name: str) -> None:
        if name not in self.catalog:
            raise KeyError(
                f"unknown emotional attribute {name!r}; "
                f"have {sorted(self.catalog)}"
            )

    # -- reads -------------------------------------------------------------

    def __getitem__(self, name: str) -> float:
        self._check_name(name)
        return self.intensities.get(name, 0.0)

    def __iter__(self) -> Iterator[str]:
        return iter(self.catalog)

    def top(self, n: int = 3) -> list[tuple[str, float]]:
        """The ``n`` most intense attributes, strongest first."""
        ranked = sorted(
            ((name, self[name]) for name in self.catalog),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[:n]

    def mood(self) -> float:
        """Intensity-weighted mean valence in [-1, 1] (0 when flat)."""
        total = sum(self[name] for name in self.catalog)
        if total == 0.0:
            return 0.0
        weighted = sum(
            self[name] * self.catalog[name].valence for name in self.catalog
        )
        return clamp_valence(weighted / total)

    def arousal(self) -> float:
        """Intensity-weighted mean arousal in [0, 1]."""
        total = sum(self[name] for name in self.catalog)
        if total == 0.0:
            return 0.0
        weighted = sum(
            self[name] * self.catalog[name].arousal for name in self.catalog
        )
        return clamp01(weighted / total)

    def as_vector(self, order: Iterable[str] | None = None) -> np.ndarray:
        """Intensities as a dense vector in ``order`` (catalog order default)."""
        names = tuple(order) if order is not None else tuple(self.catalog)
        return np.asarray([self[name] for name in names], dtype=np.float64)

    # -- writes ------------------------------------------------------------

    def activate(self, name: str, delta: float) -> float:
        """Add ``delta`` to one attribute (clamped); returns new intensity."""
        self._check_name(name)
        updated = clamp01(self.intensities.get(name, 0.0) + delta)
        self.intensities[name] = updated
        return updated

    def blend(self, other: "EmotionalState", weight: float = 0.5) -> None:
        """Move this state toward ``other`` by ``weight`` ∈ [0, 1]."""
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"weight {weight} outside [0, 1]")
        for name in self.catalog:
            mixed = (1.0 - weight) * self[name] + weight * other[name]
            self.intensities[name] = clamp01(mixed)

    def decay(self, rate: float) -> None:
        """Multiplicative decay toward zero: ``i ← i * (1 - rate)``."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate {rate} outside [0, 1]")
        for name in list(self.intensities):
            self.intensities[name] = clamp01(self.intensities[name] * (1.0 - rate))

    def copy(self) -> "EmotionalState":
        """Deep copy sharing the (immutable) catalog."""
        return EmotionalState(dict(self.intensities), catalog=self.catalog)

    @classmethod
    def from_vector(
        cls,
        vector: np.ndarray,
        order: Iterable[str] | None = None,
        catalog: Mapping[str, EmotionalAttribute] | None = None,
    ) -> "EmotionalState":
        """Inverse of :meth:`as_vector`."""
        catalog = catalog or EMOTION_CATALOG
        names = tuple(order) if order is not None else tuple(catalog)
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (len(names),):
            raise ValueError(f"vector shape {vector.shape} != ({len(names)},)")
        return cls(
            {name: clamp01(v) for name, v in zip(names, vector)},
            catalog=catalog,
        )
