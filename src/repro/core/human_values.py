"""The Human Values Scale — SPA component 5 (Intelligent User Interface).

Section 4: "It is an add-on component to manage an individualized and
personalized Human Values Scale of each user in his/her life cycles. It
embeds an intelligent feedback mechanism that enables: (a) the analysis of
diverse values from the individualized scale of each user in real time;
(b) the definition of the coherence function between a user's actions and
his/her implicit and explicit preferences."

The paper defers the methodology to Guzmán et al. (2005).  We implement a
faithful-in-spirit version: a bounded per-user scale over a fixed value
vocabulary, exponentially updated from valued actions, plus the coherence
function as rank agreement between *stated* preferences (explicit) and
*acted* value weights (implicit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.emotions import clamp01

#: Default value vocabulary, Schwartz-inspired, trimmed to the e-learning
#: domain the paper deploys in.
DEFAULT_VALUES: tuple[str, ...] = (
    "achievement",
    "self-direction",
    "security",
    "benevolence",
    "hedonism",
    "tradition",
    "stimulation",
    "universalism",
)


@dataclass
class HumanValuesScale:
    """An individualized, bounded scale over human values."""

    weights: dict[str, float] = field(default_factory=dict)
    vocabulary: tuple[str, ...] = DEFAULT_VALUES
    learning_rate: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError(f"learning_rate {self.learning_rate} outside (0, 1]")
        unknown = set(self.weights) - set(self.vocabulary)
        if unknown:
            raise KeyError(f"unknown values: {sorted(unknown)}")
        for name in self.vocabulary:
            self.weights[name] = clamp01(self.weights.get(name, 0.5))

    def __getitem__(self, name: str) -> float:
        if name not in self.vocabulary:
            raise KeyError(f"unknown value {name!r}")
        return self.weights[name]

    def observe_action(self, value_signals: Mapping[str, float]) -> None:
        """Fold one action's value signals into the scale.

        ``value_signals[value] = strength`` in [0, 1]; each touched value
        moves toward the observed strength by ``learning_rate``.
        """
        for name, strength in value_signals.items():
            if name not in self.vocabulary:
                raise KeyError(f"unknown value {name!r}")
            current = self.weights[name]
            target = clamp01(strength)
            self.weights[name] = clamp01(
                (1.0 - self.learning_rate) * current + self.learning_rate * target
            )

    def ranking(self) -> list[str]:
        """Values sorted by current weight, strongest first."""
        return [
            name
            for name, __ in sorted(
                self.weights.items(), key=lambda item: (-item[1], item[0])
            )
        ]

    def coherence(self, stated_preferences: Mapping[str, float]) -> float:
        """Agreement between stated preferences and the acted scale, in [0, 1].

        Implemented as a normalized Spearman footrule distance between the
        two rankings over the shared vocabulary: 1 means identical order,
        0 means maximally reversed.  This is the paper's "coherence
        function between a user's actions and his/her implicit and explicit
        preferences".
        """
        names = [name for name in self.vocabulary if name in stated_preferences]
        if len(names) < 2:
            return 1.0
        acted_rank = {
            name: position
            for position, name in enumerate(
                sorted(names, key=lambda n: (-self.weights[n], n))
            )
        }
        stated_rank = {
            name: position
            for position, name in enumerate(
                sorted(names, key=lambda n: (-clamp01(stated_preferences[n]), n))
            )
        }
        n = len(names)
        footrule = sum(abs(acted_rank[x] - stated_rank[x]) for x in names)
        # Exact maximum of the footrule distance is floor(n^2 / 2).
        max_footrule = (n * n) // 2
        return 1.0 - (footrule / max_footrule if max_footrule else 0.0)
