"""The two campaign functions of Section 5.4 (legacy entry points).

"SPA delivered more empathic recommendations through two well differenced
functions:

1. The recommendation function: to send in an individualized manner the
   action with most probabilities of execution by the user.
2. The selection function: to choose the user with greater propensity to
   follow a course in the recommender system."

.. deprecated::
    :class:`EmotionAwareRecommender` is now a thin shim over the
    batch-first serving layer (:mod:`repro.serving`): every call routes
    through :class:`~repro.serving.service.RecommendationService` and the
    vectorized Advice stage.  New code should build a
    ``RecommendationService`` directly and register scorers through the
    :class:`~repro.serving.scorer.Scorer` protocol; the signatures here
    are kept for compatibility with existing call sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.advice import AdviceEngine, DomainProfile
from repro.core.sum_model import SmartUserModel, SumRepository

#: ``base_scorer(model, item) -> float`` — higher means more appealing.
BaseScorer = Callable[[SmartUserModel, str], float]


@dataclass(frozen=True)
class RankedItem:
    """One recommendation: item id, base score, emotionally adjusted score."""

    item: str
    base_score: float
    adjusted_score: float


class _SingleModelResolver:
    """Resolver serving one in-hand SUM regardless of the requested id.

    The legacy ``recommend(model, items)`` signature hands the model in
    directly, so the serving layer's id-based resolution short-circuits
    here.
    """

    def __init__(self, model: SmartUserModel) -> None:
        self._model = model

    def get(self, user_id: int) -> SmartUserModel:
        return self._model

    def user_ids(self) -> list[int]:
        return [self._model.user_id]


class _SwappableResolver:
    """Indirection letting one cached service serve varying resolvers.

    The legacy API takes the repository (or a bare model) per *call*, so
    the shim retargets this resolver instead of rebuilding the service
    and its adapter for every invocation.
    """

    def __init__(self) -> None:
        self._target: object | None = None

    def retarget(self, target: object) -> None:
        self._target = target

    def get(self, user_id: int) -> SmartUserModel:
        return self._target.get(user_id)

    def user_ids(self) -> list[int]:
        return self._target.user_ids()


class EmotionAwareRecommender:
    """Emotion-adjusted ranking over items and users (compatibility shim).

    Parameters
    ----------
    base_scorer:
        Emotion-free appeal estimate per (user model, item).
    domain_profile:
        Excitatory links of the interaction domain.
    item_attributes:
        ``item -> {item_attribute: presence}`` metadata used by the
        Advice stage.
    advice:
        The advice engine (default configuration if omitted).
    """

    def __init__(
        self,
        base_scorer: BaseScorer,
        domain_profile: DomainProfile,
        item_attributes: Mapping[str, Mapping[str, float]],
        advice: AdviceEngine | None = None,
    ) -> None:
        self.base_scorer = base_scorer
        self.domain_profile = domain_profile
        self.item_attributes = dict(item_attributes)
        self.advice = advice or AdviceEngine()
        self._resolver = _SwappableResolver()
        self._cached_service = None

    def _service(self, resolver: object):
        """The cached serving facade, retargeted to ``resolver``."""
        if self._cached_service is None:
            # Imported lazily: repro.serving depends on repro.core.advice,
            # and this module is imported by repro.core's own __init__.
            from repro.serving.adapters import LegacyScorerAdapter
            from repro.serving.service import RecommendationService

            service = RecommendationService(
                sums=self._resolver,
                domain_profile=self.domain_profile,
                item_attributes=self.item_attributes,
                advice=self.advice,
            )
            # Share (not copy) the attribute dict so post-construction
            # mutation of self.item_attributes keeps the seed's semantics.
            service.item_attributes = self.item_attributes
            service.register(
                "base", LegacyScorerAdapter(self.base_scorer, self._resolver)
            )
            self._cached_service = service
        self._resolver.retarget(resolver)
        return self._cached_service

    # -- recommendation function ------------------------------------------

    def recommend(
        self, model: SmartUserModel, items: Sequence[str], k: int = 5
    ) -> list[RankedItem]:
        """Top-``k`` items for one user, emotionally adjusted.

        This is the paper's *recommendation function*: the action/item with
        the highest probability of execution by the user goes first.
        """
        from repro.serving.requests import RecommendationRequest
        from repro.serving.scorer import validate_k

        validate_k(k)
        if len(items) == 0:
            return []
        response = self._service(_SingleModelResolver(model)).recommend(
            RecommendationRequest(
                user_id=model.user_id, items=list(items), k=k
            )
        )
        return [
            RankedItem(entry.item, entry.base_score, entry.adjusted_score)
            for entry in response.ranked
        ]

    def best_action(
        self, model: SmartUserModel, items: Sequence[str]
    ) -> RankedItem:
        """The single most-probable item (recommendation function, k=1)."""
        if not items:
            raise ValueError("no items to recommend from")
        return self.recommend(model, items, k=1)[0]

    # -- selection function --------------------------------------------------

    def select_users(
        self,
        repository: SumRepository,
        item: str,
        user_ids: Sequence[int] | None = None,
        k: int | None = None,
    ) -> list[tuple[int, float]]:
        """Users ranked by adjusted propensity for ``item``.

        This is the paper's *selection function*: "to choose the user with
        greater propensity to follow a course".  Returns ``(user_id,
        adjusted_score)`` pairs, best first, truncated to ``k`` if given
        (``k`` is validated uniformly with :meth:`recommend`: 0 or a
        negative ``k`` raises instead of silently mis-truncating).
        """
        from repro.serving.requests import SelectionRequest
        from repro.serving.scorer import validate_k

        validate_k(k, allow_none=True)
        if user_ids is not None and len(user_ids) == 0:
            return []
        response = self._service(repository).select_users(
            SelectionRequest(item=item, user_ids=user_ids, k=k)
        )
        return response.pairs()

    def score_matrix(
        self,
        repository: SumRepository,
        items: Sequence[str],
        user_ids: Sequence[int] | None = None,
    ) -> tuple[np.ndarray, list[int]]:
        """Adjusted scores for every (user, item) pair, in one batch pass.

        Returns ``(matrix, row_user_ids)`` with items in column order.
        """
        ids = list(user_ids) if user_ids is not None else repository.user_ids()
        matrix = self._service(repository).score_matrix(ids, list(items))
        return matrix, ids
