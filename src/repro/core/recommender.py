"""The two campaign functions of Section 5.4.

"SPA delivered more empathic recommendations through two well differenced
functions:

1. The recommendation function: to send in an individualized manner the
   action with most probabilities of execution by the user.
2. The selection function: to choose the user with greater propensity to
   follow a course in the recommender system."

:class:`EmotionAwareRecommender` implements both on top of any base scorer
(propensity model, CF model, popularity prior), with the Advice stage's
emotional boosts applied on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.advice import AdviceEngine, DomainProfile
from repro.core.sum_model import SmartUserModel, SumRepository

#: ``base_scorer(model, item) -> float`` — higher means more appealing.
BaseScorer = Callable[[SmartUserModel, str], float]


@dataclass(frozen=True)
class RankedItem:
    """One recommendation: item id, base score, emotionally adjusted score."""

    item: str
    base_score: float
    adjusted_score: float


class EmotionAwareRecommender:
    """Emotion-adjusted ranking over items and users.

    Parameters
    ----------
    base_scorer:
        Emotion-free appeal estimate per (user model, item).
    domain_profile:
        Excitatory links of the interaction domain.
    item_attributes:
        ``item -> {item_attribute: presence}`` metadata used by the
        Advice stage.
    advice:
        The advice engine (default configuration if omitted).
    """

    def __init__(
        self,
        base_scorer: BaseScorer,
        domain_profile: DomainProfile,
        item_attributes: Mapping[str, Mapping[str, float]],
        advice: AdviceEngine | None = None,
    ) -> None:
        self.base_scorer = base_scorer
        self.domain_profile = domain_profile
        self.item_attributes = dict(item_attributes)
        self.advice = advice or AdviceEngine()

    # -- recommendation function ------------------------------------------

    def recommend(
        self, model: SmartUserModel, items: Sequence[str], k: int = 5
    ) -> list[RankedItem]:
        """Top-``k`` items for one user, emotionally adjusted.

        This is the paper's *recommendation function*: the action/item with
        the highest probability of execution by the user goes first.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        base_scores = {item: float(self.base_scorer(model, item)) for item in items}
        adjusted = self.advice.adjust_scores(
            base_scores, self.item_attributes, model, self.domain_profile
        )
        ranked = sorted(
            (
                RankedItem(item, base_scores[item], adjusted[item])
                for item in items
            ),
            key=lambda r: (-r.adjusted_score, r.item),
        )
        return ranked[:k]

    def best_action(
        self, model: SmartUserModel, items: Sequence[str]
    ) -> RankedItem:
        """The single most-probable item (recommendation function, k=1)."""
        if not items:
            raise ValueError("no items to recommend from")
        return self.recommend(model, items, k=1)[0]

    # -- selection function --------------------------------------------------

    def select_users(
        self,
        repository: SumRepository,
        item: str,
        user_ids: Sequence[int] | None = None,
        k: int | None = None,
    ) -> list[tuple[int, float]]:
        """Users ranked by adjusted propensity for ``item``.

        This is the paper's *selection function*: "to choose the user with
        greater propensity to follow a course".  Returns ``(user_id,
        adjusted_score)`` pairs, best first, truncated to ``k`` if given.
        """
        ids = list(user_ids) if user_ids is not None else repository.user_ids()
        scored: list[tuple[int, float]] = []
        for user_id in ids:
            model = repository.get(user_id)
            base = {item: float(self.base_scorer(model, item))}
            adjusted = self.advice.adjust_scores(
                base, self.item_attributes, model, self.domain_profile
            )
            scored.append((user_id, adjusted[item]))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored if k is None else scored[:k]

    def score_matrix(
        self,
        repository: SumRepository,
        items: Sequence[str],
        user_ids: Sequence[int] | None = None,
    ) -> tuple[np.ndarray, list[int]]:
        """Adjusted scores for every (user, item) pair.

        Returns ``(matrix, row_user_ids)`` with items in column order.
        """
        ids = list(user_ids) if user_ids is not None else repository.user_ids()
        matrix = np.zeros((len(ids), len(items)), dtype=np.float64)
        for row, user_id in enumerate(ids):
            model = repository.get(user_id)
            base_scores = {
                item: float(self.base_scorer(model, item)) for item in items
            }
            adjusted = self.advice.adjust_scores(
                base_scores, self.item_attributes, model, self.domain_profile
            )
            for col, item in enumerate(items):
                matrix[row, col] = adjusted[item]
        return matrix, ids
