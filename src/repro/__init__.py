"""repro — a reproduction of "Embedding Emotional Context in Recommender
Systems" (González, de la Rosa, Montaner, Delfin; ICDE 2007 Workshops).

The package rebuilds the paper's Smart Prediction Assistant (SPA) platform
end to end on a calibrated synthetic stand-in for its proprietary
emagister.com deployment:

* :mod:`repro.core` — Smart User Models, the Four-Branch Model of
  Emotional Intelligence (Table 1), the Gradual EIT, the three-stage
  Initialization/Advice/Update methodology and the emotion-aware
  recommendation/selection functions;
* :mod:`repro.agents` — the five-agent SPA architecture of Fig. 3;
* :mod:`repro.lifelog` / :mod:`repro.db` — the LifeLog substrate and the
  embedded columnar database under it;
* :mod:`repro.ml` — from-scratch SVMs, calibration, SVD and baselines;
* :mod:`repro.campaigns` / :mod:`repro.messaging` — the Section 5
  campaign engine and the Fig. 5 messaging cases;
* :mod:`repro.datagen` — the synthetic population/catalog/behaviour
  generators (the documented substitution for the proprietary data);
* :mod:`repro.cf` — classical and emotion-context-aware collaborative
  filtering baselines;
* :mod:`repro.serving` — the batch-first serving layer: the
  :class:`~repro.serving.scorer.Scorer` protocol, adapters for every
  scorer family, typed request/response envelopes and the
  :class:`~repro.serving.service.RecommendationService` facade serving
  the paper's recommendation and selection functions as matrix ops;
* :mod:`repro.streaming` — the live Fig. 4 loop: an in-process
  partitioned event bus, hash-sharded consumer workers applying
  incremental SUM updates, a versioned
  :class:`~repro.streaming.cache.SumCache` the serving path reads from,
  write-behind persistence and a replay/load-generator driver;
* :mod:`repro.physio` — the wearIT@work future-work extension
  (physiological signals → emotional context).

Quickstart::

    from repro import SimulatedWorld, SmartPredictionAssistant

    world = SimulatedWorld.generate(n_users=2000, seed=7)
    spa = SmartPredictionAssistant(world)
    spa.bootstrap()
    results = spa.run_default_plan()
    print(spa.summary(results).average_performance)   # ≈ 0.21 (Fig. 6b)
    print(spa.redemption_chart(results))              # Fig. 6a

Serving (the two paper functions, batch-first)::

    response = spa.recommend_courses(user_id=42, k=3)
    for entry in response.ranked:   # base score, emotional multiplier, total
        print(entry.item, entry.base_score, entry.multiplier)
    selected = spa.select_users_for(course_id=7, k=100)
"""

from repro.campaigns.delivery import EngineConfig
from repro.core import (
    ColumnarSumStore,
    EmotionalState,
    EmotionAwareRecommender,
    FourBranchProfile,
    GradualEIT,
    QuestionBank,
    SmartUserModel,
    SumRepository,
    UnknownUserError,
)
from repro.serving import (
    RecommendationRequest,
    RecommendationResponse,
    RecommendationService,
    Scorer,
    ScorerBase,
    SelectionRequest,
    SelectionResponse,
)
from repro.spa import SimulatedWorld, SmartPredictionAssistant
from repro.streaming import ReplayDriver, StreamingUpdater, SumCache

__version__ = "1.2.0"

__all__ = [
    "ColumnarSumStore",
    "EmotionAwareRecommender",
    "EmotionalState",
    "EngineConfig",
    "FourBranchProfile",
    "GradualEIT",
    "QuestionBank",
    "RecommendationRequest",
    "RecommendationResponse",
    "RecommendationService",
    "ReplayDriver",
    "Scorer",
    "ScorerBase",
    "SelectionRequest",
    "SelectionResponse",
    "SimulatedWorld",
    "SmartPredictionAssistant",
    "SmartUserModel",
    "StreamingUpdater",
    "SumCache",
    "SumRepository",
    "UnknownUserError",
    "__version__",
]
