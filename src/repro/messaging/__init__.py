"""Individualized emotional messaging (Fig. 5, Section 5.3).

"Outstanding salesmen use a different sales talk depending on the
customer ... What the Messaging Agent tries to do is to simulate this
salesmen behavior."

* :mod:`repro.messaging.templates` — the per-product-attribute sales-talk
  bank ("this generation is carried out once and then is saved in a
  database of messages").
* :mod:`repro.messaging.assigner` — the case logic of Section 5.3 step 3:
  standard message (3.a), single matching sensibility (3.b), several
  matches resolved by priority (3.c.i) or by strongest sensibility
  (3.c.ii).
"""

from repro.messaging.assigner import (
    AssignmentCase,
    MessageAssignment,
    MessageAssigner,
    TieBreak,
)
from repro.messaging.templates import (
    STANDARD_MESSAGE,
    MessageTemplate,
    TemplateBank,
    default_template_bank,
)

__all__ = [
    "AssignmentCase",
    "MessageAssignment",
    "MessageAssigner",
    "MessageTemplate",
    "STANDARD_MESSAGE",
    "TemplateBank",
    "TieBreak",
    "default_template_bank",
]
