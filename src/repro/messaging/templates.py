"""The sales-talk template bank.

Section 5.3 step 2: "Generate a message (sales talk) for each product
attribute: this generation is carried out once and then is saved in a
database of messages."

Templates are parameterized by course title; each one leans on exactly one
product attribute, phrased to resonate with the emotional attributes that
attribute excites (see :data:`repro.datagen.catalog.AFFINITY_LINKS`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.catalog import PRODUCT_ATTRIBUTES


@dataclass(frozen=True)
class MessageTemplate:
    """One sales-talk template keyed to a product attribute."""

    attribute: str
    text: str

    def __post_init__(self) -> None:
        if "{course}" not in self.text:
            raise ValueError("template must reference {course}")

    def render(self, course_title: str) -> str:
        """Instantiate the template for one course."""
        return self.text.format(course=course_title)


#: The non-personalized fallback of case 3.a.
STANDARD_MESSAGE = MessageTemplate(
    attribute="",
    text="Discover {course} — a course selected for you by our learning guide.",
)

_DEFAULT_TEXTS: dict[str, str] = {
    "practical": (
        "Learn by doing: {course} is packed with hands-on practice you can "
        "apply from day one."
    ),
    "certified": (
        "Earn a recognized certificate: {course} gives you credentials "
        "employers trust."
    ),
    "job-oriented": (
        "Boost your career: {course} is designed around the skills the job "
        "market is asking for right now."
    ),
    "flexible-schedule": (
        "Learn at your own pace: {course} adapts to your schedule, not the "
        "other way round."
    ),
    "online": (
        "Study from anywhere: {course} is fully online — no commuting, no "
        "classrooms, just progress."
    ),
    "prestigious": (
        "Join the best: {course} is taught by a center with a reputation "
        "that opens doors."
    ),
    "affordable": (
        "Quality within reach: {course} offers top training at a price that "
        "respects your budget."
    ),
    "innovative": (
        "Be the first: {course} covers the newest techniques before everyone "
        "else catches up."
    ),
    "supportive-community": (
        "Never learn alone: {course} comes with tutors and classmates who "
        "back you every step."
    ),
    "challenging": (
        "Push your limits: {course} will stretch you — and that is exactly "
        "why it is worth it."
    ),
}


class TemplateBank:
    """The message database: one template per product attribute."""

    def __init__(self, templates: dict[str, MessageTemplate]) -> None:
        unknown = set(templates) - set(PRODUCT_ATTRIBUTES)
        if unknown:
            raise KeyError(f"templates for unknown attributes: {sorted(unknown)}")
        self._templates = dict(templates)

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._templates

    def __len__(self) -> int:
        return len(self._templates)

    def get(self, attribute: str) -> MessageTemplate:
        """Template for one product attribute."""
        try:
            return self._templates[attribute]
        except KeyError:
            raise KeyError(f"no template for attribute {attribute!r}") from None

    def attributes(self) -> list[str]:
        """Attributes with a template, sorted."""
        return sorted(self._templates)


def default_template_bank() -> TemplateBank:
    """The built-in bank covering every product attribute."""
    return TemplateBank(
        {
            attribute: MessageTemplate(attribute, text)
            for attribute, text in _DEFAULT_TEXTS.items()
        }
    )
