"""The message-assignment case law of Section 5.3.

Step 3: "Assign a message to each user depending on his/her sensibilities:
that is, the attributes of his/her user model that exceed a sensibility
threshold.  Then, we match these sensibilities with the attributes selected
for the training course":

* **case 3.a** — no matching sensibility → standard message;
* **case 3.b** — exactly one match → that attribute's message;
* **case 3.c.i** — several matches → highest *priority* attribute
  (priority = the course's attribute presence: what the course most *is*);
* **case 3.c.ii** — several matches → the attribute the user is most
  *sensible* to (Fig. 5c's "message with most sensibility").

The user's sensibility to a *product* attribute is derived from their
emotional sensibilities through the domain's excitatory links:
``s(a) = Σ_e max(0, gain[e→a]) · sensibility(e)`` — only positive links
count, because sales talk exploits attraction, not aversion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping

from repro.core.sum_model import SmartUserModel
from repro.datagen.catalog import AFFINITY_LINKS, Course
from repro.messaging.templates import STANDARD_MESSAGE, TemplateBank


class AssignmentCase(enum.Enum):
    """Which branch of Section 5.3 step 3 fired."""

    STANDARD = "3.a"
    SINGLE = "3.b"
    PRIORITY = "3.c.i"
    MAX_SENSIBILITY = "3.c.ii"


class TieBreak(enum.Enum):
    """Strategy for case 3.c (several matching sensibilities)."""

    PRIORITY = "priority"
    MAX_SENSIBILITY = "max_sensibility"


@dataclass(frozen=True)
class MessageAssignment:
    """The outcome of assigning a message to one user for one course."""

    user_id: int
    course_id: int
    case: AssignmentCase
    attribute: str | None  # None ⇔ standard message
    text: str
    matched: tuple[str, ...] = ()  # all product attributes that matched


class MessageAssigner:
    """Implements the Messaging Agent's assignment logic."""

    def __init__(
        self,
        bank: TemplateBank,
        links: Mapping[str, Mapping[str, float]] | None = None,
        threshold: float = 0.30,
        tie_break: TieBreak = TieBreak.MAX_SENSIBILITY,
    ) -> None:
        if not 0.0 <= threshold < 1.0:
            raise ValueError(f"threshold {threshold} outside [0, 1)")
        self.bank = bank
        self.links = links if links is not None else AFFINITY_LINKS
        self.threshold = threshold
        self.tie_break = tie_break

    def product_sensibilities(self, model: SmartUserModel) -> dict[str, float]:
        """User sensibility per product attribute (positive links only)."""
        scores: dict[str, float] = {}
        for emotion, targets in self.links.items():
            sensibility = model.sensibility.get(emotion, 0.0)
            if sensibility <= 0.0:
                continue
            for attribute, gain in targets.items():
                if gain <= 0.0:
                    continue
                scores[attribute] = scores.get(attribute, 0.0) + gain * sensibility
        return scores

    def assign(self, model: SmartUserModel, course: Course) -> MessageAssignment:
        """Pick the message for one (user, course) pair."""
        sensibilities = self.product_sensibilities(model)
        matches = sorted(
            attribute
            for attribute in course.attributes
            if sensibilities.get(attribute, 0.0) > self.threshold
            and attribute in self.bank
        )
        if not matches:
            return MessageAssignment(
                user_id=model.user_id,
                course_id=course.course_id,
                case=AssignmentCase.STANDARD,
                attribute=None,
                text=STANDARD_MESSAGE.render(course.title),
            )
        if len(matches) == 1:
            attribute = matches[0]
            return MessageAssignment(
                user_id=model.user_id,
                course_id=course.course_id,
                case=AssignmentCase.SINGLE,
                attribute=attribute,
                text=self.bank.get(attribute).render(course.title),
                matched=(attribute,),
            )
        if self.tie_break is TieBreak.PRIORITY:
            # Priority = the course's own attribute presence, i.e. what the
            # course most strongly is (Fig. 5b's ordered list).
            attribute = max(
                matches, key=lambda a: (course.attributes.get(a, 0.0), a)
            )
            case = AssignmentCase.PRIORITY
        else:
            attribute = max(
                matches, key=lambda a: (sensibilities.get(a, 0.0), a)
            )
            case = AssignmentCase.MAX_SENSIBILITY
        return MessageAssignment(
            user_id=model.user_id,
            course_id=course.course_id,
            case=case,
            attribute=attribute,
            text=self.bank.get(attribute).render(course.title),
            matched=tuple(matches),
        )

    def case_distribution(
        self, assignments: list[MessageAssignment]
    ) -> dict[str, int]:
        """How many assignments fell into each case (Fig. 5 bench)."""
        counts: dict[str, int] = {}
        for assignment in assignments:
            counts[assignment.case.value] = counts.get(assignment.case.value, 0) + 1
        return counts
