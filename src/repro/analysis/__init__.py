"""Concurrency contracts + static analysis for the SUM plane.

This package has two faces:

* **runtime contracts** (:mod:`repro.analysis.contracts`) — the
  ``@guarded_by`` / ``@requires_lock`` / ``@manual_guard`` decorators,
  ``declare_lock`` / ``declare_order`` registry, and the env-gated
  :class:`ContractLock` witness.  Imported by the production modules,
  so only those light, stdlib-only names are re-exported here.
* **the analyzer** (:mod:`repro.analysis.cli` and friends) — the
  AST-based checker behind ``python -m repro.analysis``.  Never
  imported by production code; import it explicitly.
"""

from repro.analysis.contracts import (
    REGISTRY,
    WITNESS,
    WITNESS_ENV,
    ContractError,
    ContractLock,
    LockWitness,
    contracts_of,
    declare_lock,
    declare_order,
    guarded_by,
    make_lock,
    manual_guard,
    requires_lock,
    witness_enabled,
)

__all__ = [
    "REGISTRY",
    "WITNESS",
    "WITNESS_ENV",
    "ContractError",
    "ContractLock",
    "LockWitness",
    "contracts_of",
    "declare_lock",
    "declare_order",
    "guarded_by",
    "make_lock",
    "manual_guard",
    "requires_lock",
    "witness_enabled",
]
