"""Rule LO — the static lock-acquisition graph.

Builds the cross-module graph of "lock *u* held while acquiring lock
*v*" edges from three sources:

1. lexically nested ``with`` statements;
2. call propagation — if ``f`` acquires ``L`` (directly or through
   calls, computed to a fixed point) and ``g`` calls ``f`` while holding
   ``H``, the graph gains ``H → L``;
3. explicit :func:`repro.analysis.contracts.declare_order` declarations
   for orderings the AST cannot see (e.g. a sorted multi-lock hold via
   a loop, or an ordering hidden behind duck-typed indirection).

* **LO001** — the graph has a cycle: two code paths can acquire the
  same pair of locks in opposite orders, a latent deadlock.
* **LO002** — a lock is re-acquired while already held and its
  declaration permits neither reentrancy nor ordered self-nesting.

:func:`build_lock_graph` is also the source of truth for the runtime
witness: every ordering :class:`~repro.analysis.contracts.LockWitness`
observes must be an edge of this graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.core import (
    ClassInfo,
    Finding,
    LockScopeWalker,
    MethodInfo,
    Module,
    Project,
    iter_functions,
    qualname,
)

_FuncKey = tuple[str, str]


class _OrderWalker(LockScopeWalker):
    """Collects lexical acquisitions, nesting edges and call sites."""

    def __init__(
        self,
        project: Project,
        module: Module,
        cls: ClassInfo | None,
        method: MethodInfo,
    ) -> None:
        super().__init__(project, module, cls, method)
        self.acquired: set[str] = set()
        self.edges: dict[tuple[str, str], tuple[str, int]] = {}
        self.self_acquires: list[tuple[str, int]] = []
        #: (held snapshot, callee key, line) for call propagation
        self.calls: list[tuple[tuple[str, ...], _FuncKey, int]] = []

    def on_acquire(self, node: str, stmt: ast.With, item: ast.expr) -> None:
        self.acquired.add(node)
        for held in self.held:
            if held == "*":
                continue
            if held == node:
                if not self.registry.allows_self_nesting(node):
                    self.self_acquires.append((node, stmt.lineno))
                continue
            self.edges.setdefault(
                (held, node), (self.module.display_path, stmt.lineno)
            )

    def on_call(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        owner = self.env.type_of(func.value)
        if owner is None and isinstance(func.value, ast.Name):
            if func.value.id in self.project.classes:
                owner = func.value.id
        method = self.project.method_info(owner, func.attr)
        if method is None:
            return
        held = tuple(h for h in self.held if h != "*")
        self.calls.append(((held), (owner or "", func.attr), call.lineno))


@dataclass
class LockGraph:
    """The static acquisition-order graph plus any LO findings."""

    edges: dict[tuple[str, str], tuple[str, int]] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)

    def allowed_edges(self) -> set[tuple[str, str]]:
        return set(self.edges)


def build_lock_graph(project: Project) -> LockGraph:
    graph = LockGraph()
    registry = project.registry

    walkers: dict[_FuncKey, _OrderWalker] = {}
    for module, cls, method in iter_functions(project):
        walker = _OrderWalker(project, module, cls, method)
        walker.walk()
        key = (cls.name if cls else f"<{module.display_path}>", method.name)
        walkers[key] = walker
        for edge, src in walker.edges.items():
            graph.edges.setdefault(edge, src)
        for node, line in walker.self_acquires:
            graph.findings.append(
                Finding(
                    rule="LO002",
                    path=module.display_path,
                    line=line,
                    message=(
                        f"{node} re-acquired while already held; declare it "
                        f"reentrant (declare_lock(..., reentrant=True)) or "
                        f"give the family an ordered self-nesting rule"
                    ),
                    symbol=qualname(cls, method),
                    snippet=module.snippet(line),
                )
            )

    # call-propagated acquisitions, to a fixed point
    acquires: dict[_FuncKey, set[str]] = {
        key: set(w.acquired) for key, w in walkers.items()
    }
    changed = True
    while changed:
        changed = False
        for key, walker in walkers.items():
            mine = acquires[key]
            for _, callee, _ in walker.calls:
                extra = acquires.get(callee)
                if extra and not extra <= mine:
                    mine |= extra
                    changed = True

    for key, walker in walkers.items():
        for held, callee, line in walker.calls:
            if not held:
                continue
            inner = acquires.get(callee)
            if not inner:
                continue
            src = (walker.module.display_path, line)
            for h in held:
                for node in inner:
                    if h == node:
                        # benign only if reentrancy/self-order covers it
                        if not registry.allows_self_nesting(node):
                            graph.findings.append(
                                Finding(
                                    rule="LO002",
                                    path=src[0],
                                    line=line,
                                    message=(
                                        f"call into {callee[0]}.{callee[1]}()"
                                        f" may re-acquire held lock {node}"
                                    ),
                                    symbol=f"{key[0]}.{key[1]}",
                                    snippet=walker.module.snippet(line),
                                )
                            )
                        continue
                    graph.edges.setdefault((h, node), src)

    for edge in registry.orders:
        src = registry.order_sources.get(edge, ("<declared>", 0))
        graph.edges.setdefault(edge, src)

    _check_cycles(graph)
    return graph


def _check_cycles(graph: LockGraph) -> None:
    """Tarjan SCC over the edge set; any non-trivial SCC is a deadlock."""
    adjacency: dict[str, list[str]] = {}
    for (u, v) in graph.edges:
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, [])

    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []

    def strongconnect(root: str) -> None:
        # iterative Tarjan: (node, iterator state) frames
        work = [(root, iter(adjacency[root]))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index_of:
                    index_of[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adjacency[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)

    for node in adjacency:
        if node not in index_of:
            strongconnect(node)

    for component in sccs:
        if len(component) < 2:
            continue
        members = sorted(component)
        involved = sorted(
            (edge, src)
            for edge, src in graph.edges.items()
            if edge[0] in component and edge[1] in component
        )
        path, line = involved[0][1] if involved else ("<graph>", 0)
        detail = ", ".join(f"{u}->{v}" for (u, v), _ in involved)
        graph.findings.append(
            Finding(
                rule="LO001",
                path=path,
                line=line,
                message=(
                    "lock-order cycle between "
                    + ", ".join(members)
                    + f" (edges: {detail})"
                ),
                symbol="lock-graph",
            )
        )


def check_lock_order(project: Project) -> list[Finding]:
    return build_lock_graph(project).findings
