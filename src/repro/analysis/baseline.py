"""The baseline ratchet: grandfathered findings with justifications.

``analysis-baseline.toml`` holds ``[[waiver]]`` tables::

    [[waiver]]
    rule = "LD001"
    path = "src/repro/core/sum_store.py"
    symbol = "ColumnarSumStore.get_or_create"   # optional
    contains = "_views.setdefault"              # optional substring of the line
    justification = "dict.setdefault is GIL-atomic; benign last-wins race"

Every waiver **must** carry a non-empty justification — the point of
the baseline is that each accepted risk is written down.  A waiver that
matches no current finding is *stale* and fails the run: the ratchet
only moves toward zero.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.core import Finding


class BaselineError(Exception):
    """The baseline file itself is invalid."""


@dataclass(frozen=True)
class Waiver:
    rule: str
    path: str
    justification: str
    symbol: str = ""
    contains: str = ""

    def matches(self, finding: Finding) -> bool:
        if self.rule != finding.rule:
            return False
        if self.path != finding.path:
            return False
        if self.symbol and self.symbol != finding.symbol:
            return False
        if self.contains and self.contains not in finding.snippet:
            return False
        return True

    def describe(self) -> str:
        extra = ""
        if self.symbol:
            extra += f" symbol={self.symbol}"
        if self.contains:
            extra += f" contains={self.contains!r}"
        return f"{self.rule} @ {self.path}{extra}"


def load_baseline(path: str | Path) -> list[Waiver]:
    path = Path(path)
    try:
        data = tomllib.loads(path.read_text(encoding="utf-8"))
    except (OSError, tomllib.TOMLDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    waivers: list[Waiver] = []
    for i, entry in enumerate(data.get("waiver", [])):
        if not isinstance(entry, dict):
            raise BaselineError(f"waiver #{i + 1} is not a table")
        rule = str(entry.get("rule", "")).strip()
        wpath = str(entry.get("path", "")).strip()
        justification = str(entry.get("justification", "")).strip()
        if not rule or not wpath:
            raise BaselineError(
                f"waiver #{i + 1} needs both 'rule' and 'path'"
            )
        if not justification:
            raise BaselineError(
                f"waiver #{i + 1} ({rule} @ {wpath}) has no justification; "
                f"every grandfathered finding must explain why it is safe"
            )
        waivers.append(
            Waiver(
                rule=rule,
                path=wpath,
                justification=justification,
                symbol=str(entry.get("symbol", "")).strip(),
                contains=str(entry.get("contains", "")).strip(),
            )
        )
    return waivers


@dataclass
class BaselineResult:
    unwaived: list[Finding]
    waived: list[tuple[Finding, Waiver]]
    stale: list[Waiver]


def apply_baseline(
    findings: list[Finding], waivers: list[Waiver]
) -> BaselineResult:
    unwaived: list[Finding] = []
    waived: list[tuple[Finding, Waiver]] = []
    used: set[int] = set()
    for finding in findings:
        for idx, waiver in enumerate(waivers):
            if waiver.matches(finding):
                used.add(idx)
                waived.append((finding, waiver))
                break
        else:
            unwaived.append(finding)
    stale = [w for i, w in enumerate(waivers) if i not in used]
    return BaselineResult(unwaived=unwaived, waived=waived, stale=stale)
