"""Declarative concurrency contracts: the annotations the analyzer checks.

The repo's locking conventions were prose ("writers flag stale rows under
their user lock", "sorted multi-user lock hold") until this module: here
they become *declarations* that live next to the code, are introspectable
at runtime, and are machine-checked by :mod:`repro.analysis` in CI.

Three decorator families:

* :func:`guarded_by` — a class decorator naming a lock and the mutable
  attributes it guards.  The static lock-discipline rule (``LD001``)
  flags any write to a guarded attribute outside a ``with`` scope of the
  declared lock (constructors exempt — an object under construction has
  no concurrent readers).
* :func:`requires_lock` — a method decorator asserting "the caller holds
  this lock".  The method body is treated as lock-held; every *call* to
  the method must itself happen under the lock (``LD002``).
* :func:`manual_guard` — an auditable escape hatch for methods that
  manage lock acquisition imperatively (e.g. the sorted multi-user lock
  hold in ``SumCache.apply_batch_and_publish``).  A non-empty
  justification is required (``LD003``).

* :func:`seqlock_reader` — marks a function as an approved *lock-free*
  reader of a declared seqlock generation source; the seqlock rules
  (``SQ001``/``SQ002``) check the retry protocol at those sites.

Module-level declaration calls:

* :func:`declare_lock` — names a lock node in the global lock-order
  graph, marks it reentrant and/or a *family* (many lock objects, one
  node — the per-user locks), and merges aliases (two attributes that
  hold the *same* underlying lock object, like the column families
  sharing their owning store's RLock).
* :func:`declare_order` — asserts a permitted "outer acquires inner"
  edge that the lexical analysis cannot see (acquisitions hidden behind
  untyped indirection).  Declared edges join the extracted graph before
  the cycle check, and bound what the runtime witness may observe.
* :func:`declare_seqlock` — names a per-row generation source (the
  seqlock pattern: writers bump odd/even under their lock, readers
  copy between two equal even observations) and the copy primitives it
  protects, so lock-free captures are machine-checked too.

The runtime half: :func:`make_lock` returns plain :mod:`threading` locks
normally, and :class:`ContractLock` wrappers when ``REPRO_LOCK_WITNESS``
is set — every acquisition is then recorded into the process-wide
:data:`WITNESS`, whose :meth:`LockWitness.check` verifies that no
observed ordering falls outside the static graph (TSan-lite for a GIL'd
codebase; the threaded tier-1 tests run under it).

This module must stay dependency-free (stdlib only): it is imported by
every concurrent module in ``repro`` and by the analyzer itself.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Iterable, Mapping, TypeVar

_T = TypeVar("_T")
_F = TypeVar("_F", bound=Callable[..., Any])

#: class attribute the decorators stash contract metadata under
CONTRACTS_ATTR = "__concurrency_contracts__"
#: function attribute set by :func:`requires_lock`
REQUIRES_ATTR = "__requires_lock__"
#: function attribute set by :func:`manual_guard`
MANUAL_ATTR = "__manual_guard__"
#: function attribute set by :func:`seqlock_reader`
SEQLOCK_READER_ATTR = "__seqlock_reader__"

#: environment switch for the runtime witness (checked at lock creation)
WITNESS_ENV = "REPRO_LOCK_WITNESS"


class ContractError(ValueError):
    """A malformed contract declaration (empty guard, missing reason)."""


# ---------------------------------------------------------------------------
# decorators
# ---------------------------------------------------------------------------


def guarded_by(
    lock: str, *attrs: str, aliases: Iterable[str] = ()
) -> Callable[[type], type]:
    """Declare that writes to ``attrs`` require holding ``lock``.

    ``lock`` is either an attribute name on the same object (``"_lock"``,
    matching ``with self._lock:``), a call form (``"_lock_for()"``,
    matching ``with self._lock_for(...):``) or a fully qualified node of
    another class (``"SumCache._lock_for()"`` — for reader-owned state
    guarded by a different object's lock).  ``aliases`` names sibling
    attributes that acquire the *same* underlying lock (condition
    variables built on it, for example), so ``with self._not_full:``
    counts as holding ``self._lock``.

    Stacks: decorate once per lock.  The declaration is stored on the
    class (:data:`CONTRACTS_ATTR`) for runtime introspection and read
    from the AST by the static analyzer — keep every argument a literal.
    """
    if not lock:
        raise ContractError("guarded_by needs a lock name")
    if not attrs:
        raise ContractError(f"guarded_by({lock!r}) guards no attributes")
    spec = {
        "lock": str(lock),
        "attrs": tuple(str(a) for a in attrs),
        "aliases": tuple(str(a) for a in aliases),
    }

    def decorate(cls: type) -> type:
        existing = list(cls.__dict__.get(CONTRACTS_ATTR, ()))
        existing.append(spec)
        setattr(cls, CONTRACTS_ATTR, tuple(existing))
        return cls

    return decorate


def requires_lock(lock: str) -> Callable[[_F], _F]:
    """Declare "the caller holds ``lock``" on a helper method.

    The analyzer treats the decorated body as lock-held and checks every
    call site instead (``LD002``).  Zero runtime cost.
    """
    if not lock:
        raise ContractError("requires_lock needs a lock name")

    def decorate(func: _F) -> _F:
        setattr(func, REQUIRES_ATTR, str(lock))
        return func

    return decorate


def seqlock_reader(node: str) -> Callable[[_F], _F]:
    """Mark a function as an approved lock-free seqlock reader of ``node``.

    ``node`` names a generation source declared with
    :func:`declare_seqlock`.  The decorated function is the *only* kind
    of place allowed to call that seqlock's protected copy primitives
    without holding the writer lock — and it must implement the retry
    protocol (read the generation, copy, re-read and compare inside a
    retry loop).  The static rules: a marked reader whose protected call
    sits outside any retry loop is ``SQ001``; a protected call from an
    unmarked, lock-free call site is ``SQ002``.  Zero runtime cost.
    """
    if not node:
        raise ContractError("seqlock_reader needs a seqlock node name")

    def decorate(func: _F) -> _F:
        setattr(func, SEQLOCK_READER_ATTR, str(node))
        return func

    return decorate


def manual_guard(reason: str) -> Callable[[_F], _F]:
    """Exempt a method from lexical lock-discipline checking.

    For imperative acquisition patterns a ``with`` scope cannot express
    (loop-acquired sorted lock sets).  ``reason`` must say why — it is
    what a reviewer greps for, and an empty one is itself a finding
    (``LD003``).
    """
    if not reason or not reason.strip():
        raise ContractError("manual_guard needs a non-empty justification")

    def decorate(func: _F) -> _F:
        setattr(func, MANUAL_ATTR, reason)
        return func

    return decorate


# ---------------------------------------------------------------------------
# lock graph declarations
# ---------------------------------------------------------------------------


class LockDecl:
    """One declared lock node of the global acquisition graph."""

    __slots__ = ("node", "reentrant", "family", "self_order", "aliases")

    def __init__(
        self,
        node: str,
        reentrant: bool = False,
        family: bool = False,
        self_order: str | None = None,
        aliases: tuple[str, ...] = (),
    ) -> None:
        self.node = node
        self.reentrant = reentrant
        #: a *family* is many lock objects sharing one node (per-user
        #: locks); acquiring two members nests the node inside itself
        self.family = family
        #: how same-node nesting of distinct family members is permitted:
        #: ``"sorted"`` means members are only ever taken in sorted key
        #: order (so no cycle among members is possible)
        self.self_order = self_order
        self.aliases = aliases


class SeqlockDecl:
    """One declared seqlock generation source (lock-free reader protocol).

    ``node`` names the generation counters (``"Class.attr"``),
    ``protects`` the copy primitives whose lock-free call sites must be
    :func:`seqlock_reader`-marked retry loops, and ``writer_lock`` the
    lock under which writers bump the generations (call sites holding it
    need no retry — they exclude every writer).
    """

    __slots__ = ("node", "protects", "writer_lock")

    def __init__(
        self,
        node: str,
        protects: tuple[str, ...] = (),
        writer_lock: str | None = None,
    ) -> None:
        self.node = node
        self.protects = protects
        self.writer_lock = writer_lock


class QueueClassDecl:
    """One declared multi-class queue (priority-aware shedding).

    ``node`` names the queue type (``"Class"``), ``classes`` the service
    classes it distinguishes (first entry is the protected, never-shed
    class), and ``shed_counters`` the exact-count attributes that account
    for every dropped message — shedding that is not counted is a
    correctness bug, not a tuning knob.
    """

    __slots__ = ("node", "classes", "shed_counters")

    def __init__(
        self,
        node: str,
        classes: tuple[str, ...] = (),
        shed_counters: tuple[str, ...] = (),
    ) -> None:
        self.node = node
        self.classes = classes
        self.shed_counters = shed_counters


class ContractRegistry:
    """Process-wide registry of declared locks and permitted orderings."""

    def __init__(self) -> None:
        self.locks: dict[str, LockDecl] = {}
        #: alias node -> canonical node
        self.alias_of: dict[str, str] = {}
        #: declared permitted (outer, inner) edges
        self.orders: set[tuple[str, str]] = set()
        #: declared seqlock generation sources
        self.seqlocks: dict[str, SeqlockDecl] = {}
        #: declared multi-class shedding queues
        self.queue_classes: dict[str, QueueClassDecl] = {}

    def declare_lock(
        self,
        node: str,
        *,
        reentrant: bool = False,
        family: bool = False,
        self_order: str | None = None,
        aliases: Iterable[str] = (),
    ) -> LockDecl:
        if not node:
            raise ContractError("declare_lock needs a node name")
        alias_tuple = tuple(str(a) for a in aliases)
        decl = LockDecl(str(node), bool(reentrant), bool(family),
                        self_order, alias_tuple)
        self.locks[decl.node] = decl
        for alias in alias_tuple:
            self.alias_of[alias] = decl.node
        return decl

    def declare_order(self, outer: str, inner: str) -> None:
        if not outer or not inner:
            raise ContractError("declare_order needs two node names")
        self.orders.add((self.canonical(outer), self.canonical(inner)))

    def declare_seqlock(
        self,
        node: str,
        *,
        protects: Iterable[str] = (),
        writer_lock: str | None = None,
    ) -> SeqlockDecl:
        if not node:
            raise ContractError("declare_seqlock needs a node name")
        decl = SeqlockDecl(
            str(node),
            tuple(str(p) for p in protects),
            str(writer_lock) if writer_lock else None,
        )
        self.seqlocks[decl.node] = decl
        return decl

    def declare_queue_classes(
        self,
        node: str,
        *,
        classes: Iterable[str] = (),
        shed_counters: Iterable[str] = (),
    ) -> QueueClassDecl:
        if not node:
            raise ContractError("declare_queue_classes needs a node name")
        class_tuple = tuple(str(c) for c in classes)
        if len(class_tuple) < 2:
            raise ContractError(
                "declare_queue_classes needs at least two service classes"
            )
        decl = QueueClassDecl(
            str(node), class_tuple, tuple(str(c) for c in shed_counters)
        )
        self.queue_classes[decl.node] = decl
        return decl

    def canonical(self, node: str) -> str:
        return self.alias_of.get(node, node)

    def decl_for(self, node: str) -> LockDecl | None:
        return self.locks.get(self.canonical(node))


#: the process-wide registry every ``declare_*`` call below feeds
REGISTRY = ContractRegistry()


def declare_lock(
    node: str,
    *,
    reentrant: bool = False,
    family: bool = False,
    self_order: str | None = None,
    aliases: Iterable[str] = (),
) -> LockDecl:
    """Module-level lock-node declaration (see :class:`LockDecl`).

    Keep every argument a literal: the static analyzer reads these calls
    from the AST, without importing the module.
    """
    return REGISTRY.declare_lock(
        node,
        reentrant=reentrant,
        family=family,
        self_order=self_order,
        aliases=aliases,
    )


def declare_order(outer: str, inner: str) -> None:
    """Assert a permitted ``outer`` → ``inner`` acquisition edge."""
    REGISTRY.declare_order(outer, inner)


def declare_seqlock(
    node: str,
    *,
    protects: Iterable[str] = (),
    writer_lock: str | None = None,
) -> SeqlockDecl:
    """Module-level seqlock declaration (see :class:`SeqlockDecl`).

    Keep every argument a literal: the static analyzer reads these calls
    from the AST, without importing the module.
    """
    return REGISTRY.declare_seqlock(
        node, protects=protects, writer_lock=writer_lock
    )


def declare_queue_classes(
    node: str,
    *,
    classes: Iterable[str] = (),
    shed_counters: Iterable[str] = (),
) -> QueueClassDecl:
    """Module-level multi-class queue declaration (see
    :class:`QueueClassDecl`).

    Keep every argument a literal: the static analyzer reads these calls
    from the AST, without importing the module.
    """
    return REGISTRY.declare_queue_classes(
        node, classes=classes, shed_counters=shed_counters
    )


# ---------------------------------------------------------------------------
# runtime witness
# ---------------------------------------------------------------------------


class LockWitness:
    """Records actual lock-acquisition order, per thread, process-wide.

    Every :class:`ContractLock` acquisition pushes its node onto the
    acquiring thread's stack; holding node A while acquiring node B
    records the edge ``A → B``.  Pure reentrancy (re-acquiring the same
    *object*) records nothing; acquiring a different member of the same
    lock *family* records a self-edge, which :meth:`check` permits only
    for families declaring a ``self_order``.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._mutex = threading.Lock()
        #: observed (outer, inner) node pairs -> a sample stack trace note
        self.edges: dict[tuple[str, str], str] = {}
        self.acquisitions = 0

    def _stack(self) -> list[tuple[str, int]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def on_acquire(self, node: str, lock_id: int) -> None:
        stack = self._stack()
        if stack:
            top_node, top_id = stack[-1]
            if top_id != lock_id:  # reentrancy on the same object is silent
                edge = (top_node, node)
                if edge not in self.edges:
                    with self._mutex:
                        self.edges.setdefault(
                            edge, threading.current_thread().name
                        )
        stack.append((node, lock_id))
        self.acquisitions += 1

    def on_release(self, node: str, lock_id: int) -> None:
        stack = self._stack()
        # Locks are released LIFO in this codebase, but tolerate FIFO:
        # drop the innermost matching entry.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][1] == lock_id:
                del stack[i]
                return

    def reset(self) -> None:
        with self._mutex:
            self.edges.clear()
            self.acquisitions = 0

    def check(
        self,
        allowed_edges: Iterable[tuple[str, str]],
        registry: ContractRegistry | None = None,
    ) -> list[str]:
        """Violations: observed orderings absent from the static graph.

        ``allowed_edges`` is the static graph (extracted + declared) in
        canonical node names.  Self-edges are permitted for reentrant
        locks and for families with a declared ``self_order``.  Returns
        human-readable violation strings (empty means consistent).
        """
        reg = registry if registry is not None else REGISTRY
        allowed = {
            (reg.canonical(a), reg.canonical(b)) for a, b in allowed_edges
        }
        problems: list[str] = []
        for (outer, inner), thread in sorted(self.edges.items()):
            outer_c, inner_c = reg.canonical(outer), reg.canonical(inner)
            if outer_c == inner_c:
                decl = reg.decl_for(outer_c)
                if decl is not None and (
                    decl.reentrant or (decl.family and decl.self_order)
                ):
                    continue
            if (outer_c, inner_c) in allowed:
                continue
            problems.append(
                f"observed lock order {outer_c} -> {inner_c} "
                f"(thread {thread}) is not in the static lock graph"
            )
        return problems


#: the process-wide witness :class:`ContractLock` records into
WITNESS = LockWitness()


class ContractLock:
    """A :mod:`threading` lock that reports acquisitions to the witness.

    Wraps a plain ``Lock`` (or ``RLock`` when ``reentrant``) and mirrors
    the context-manager/acquire/release surface the codebase uses.  Only
    constructed when :data:`WITNESS_ENV` is set — production paths get
    bare stdlib locks with zero indirection.
    """

    __slots__ = ("node", "_inner")

    def __init__(self, node: str, reentrant: bool = False) -> None:
        self.node = node
        self._inner = threading.RLock() if reentrant else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            WITNESS.on_acquire(self.node, id(self))
        return acquired

    def release(self) -> None:
        WITNESS.on_release(self.node, id(self))
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        # RLock has no locked() before 3.12; probe non-blocking instead.
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    # -- Condition support -------------------------------------------------
    #
    # ``threading.Condition(lock)`` forwards to these when present, so a
    # ContractLock can sit under condition variables (the bus's
    # ``PartitionQueue``) without the witness losing track: ``wait()``
    # releases through ``_release_save`` (popping the node off the
    # thread's stack) and reacquires through ``_acquire_restore``
    # (pushing it back) — exactly mirroring what the real lock does.

    def _release_save(self) -> Any:
        WITNESS.on_release(self.node, id(self))
        inner_save = getattr(self._inner, "_release_save", None)
        if inner_save is not None:
            return inner_save()
        self._inner.release()
        return None

    def _acquire_restore(self, state: Any) -> None:
        inner_restore = getattr(self._inner, "_acquire_restore", None)
        if inner_restore is not None:
            inner_restore(state)
        else:
            self._inner.acquire()
        WITNESS.on_acquire(self.node, id(self))

    def _is_owned(self) -> bool:
        # Probe the *inner* lock directly: routing the probe through
        # acquire()/release() would record phantom witness events.
        inner_owned = getattr(self._inner, "_is_owned", None)
        if inner_owned is not None:
            return bool(inner_owned())
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True


def witness_enabled() -> bool:
    """Whether new locks should be witness-wrapped (env-gated)."""
    return os.environ.get(WITNESS_ENV, "") not in ("", "0")


def make_lock(node: str, reentrant: bool = False) -> Any:
    """A lock for ``node``: stdlib normally, witnessed under the env gate.

    ``node`` must match the static graph's node naming
    (``"ClassName._lock"`` / ``"ClassName._lock_for()"``) or the witness
    cross-check would compare apples to oranges.
    """
    if witness_enabled():
        return ContractLock(node, reentrant=reentrant)
    return threading.RLock() if reentrant else threading.Lock()


def contracts_of(cls: type) -> tuple[Mapping[str, Any], ...]:
    """The :func:`guarded_by` declarations of ``cls`` (own, not inherited)."""
    return tuple(cls.__dict__.get(CONTRACTS_ATTR, ()))
