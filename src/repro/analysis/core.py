"""Analyzer core: AST loading, contract extraction, best-effort types.

The rule modules (:mod:`repro.analysis.lock_discipline`,
:mod:`repro.analysis.lock_order`, :mod:`repro.analysis.snapshots`,
:mod:`repro.analysis.seqlock`, :mod:`repro.analysis.hygiene`) share
this infrastructure:

* :class:`Project` — every parsed module, a cross-module class index,
  and the *static* contract registry (``guarded_by`` decorators plus
  ``declare_lock``/``declare_order``/``declare_seqlock``/
  ``declare_queue_classes`` calls read from the AST, never by
  importing — so deliberately-broken fixture files are analyzable);
* :class:`TypeEnv` — best-effort local type resolution (parameter
  annotations, ``self`` attributes assigned from annotated parameters,
  method return annotations, container element types).  Unresolvable
  expressions resolve to ``None`` and rules skip them: the analyzer
  prefers a missed finding over a false positive;
* :class:`LockScopeWalker` — a visitor that tracks which lock *nodes*
  (canonical ``"ClassName._lock"`` names) are held at every statement,
  honoring ``with`` scopes, guard aliases (condition variables built on
  a lock), ``requires_lock`` and ``manual_guard``.

Everything here is purely static: no analyzed module is ever imported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

#: method names that mutate their receiver in place
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert",
    "add", "discard", "remove", "pop", "popleft", "popitem", "clear",
    "update", "setdefault", "sort", "reverse",
    "fill", "resize", "setflags", "put", "partial_fit",
})

#: substrings that make an attribute name "look like a lock"
_LOCKISH = ("lock", "mutex")

#: sync-primitive factories on the threading/multiprocessing modules and
#: on multiprocessing *context* objects — ``mp.RLock()``, ``ctx.Lock()``.
#: Without typing these, an mp lock stored under a non-lock-ish name is
#: invisible to LD/LO: acquisitions don't resolve to a node and the lock
#: graph silently drops the edges.
_SYNC_LOCK_FACTORIES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)
#: cross-process channel factories — typed so alias tracking works, but
#: never treated as locks (queues serialize data, not critical sections)
_SYNC_CHANNEL_FACTORIES = frozenset({"Queue", "JoinableQueue", "SimpleQueue"})
#: module aliases whose factory calls we accept (``import
#: multiprocessing as mp`` is the idiomatic spelling)
_SYNC_MODULE_NAMES = frozenset({"threading", "multiprocessing", "mp"})
#: conventional names for multiprocessing context objects
#: (``ctx = multiprocessing.get_context("fork")``)
_SYNC_CONTEXT_NAMES = frozenset({"ctx", "_ctx", "mp_context", "_mp_context"})

#: attribute types that mean "this attribute IS a lock object"
_SYNC_LOCK_TYPES = frozenset(
    f"{module}.{factory}"
    for module in ("threading", "multiprocessing")
    for factory in _SYNC_LOCK_FACTORIES
)


def sync_primitive_type(value: ast.expr) -> str | None:
    """``"multiprocessing.Lock"``-style type for sync-factory calls.

    Recognizes ``threading.X()`` / ``multiprocessing.X()`` / ``mp.X()``
    and multiprocessing-context receivers (``ctx.X()``,
    ``self._ctx.X()``) for the lock and channel factory sets; anything
    else is ``None``.
    """
    if not (
        isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute)
    ):
        return None
    attr = value.func.attr
    if attr not in _SYNC_LOCK_FACTORIES and attr not in _SYNC_CHANNEL_FACTORIES:
        return None
    recv = value.func.value
    if isinstance(recv, ast.Name):
        if recv.id == "threading":
            return f"threading.{attr}"
        if recv.id in _SYNC_MODULE_NAMES or recv.id in _SYNC_CONTEXT_NAMES:
            return f"multiprocessing.{attr}"
    if isinstance(recv, ast.Attribute) and recv.attr in _SYNC_CONTEXT_NAMES:
        return f"multiprocessing.{attr}"
    return None


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, pointing at a rule violation."""

    rule: str
    path: str
    line: int
    message: str
    symbol: str = ""
    #: stripped source text of the offending line (baseline matching)
    snippet: str = ""

    def render(self) -> str:
        where = f"{self.path}:{self.line}"
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {self.rule}{sym}: {self.message}"


@dataclass(frozen=True)
class GuardSpec:
    """One ``guarded_by`` declaration on a class."""

    lock: str
    attrs: tuple[str, ...]
    aliases: tuple[str, ...] = ()

    def node_for(self, cls_name: str) -> str:
        """The lock-graph node this guard corresponds to."""
        if "." in self.lock:
            return self.lock
        return f"{cls_name}.{self.lock}"


@dataclass
class MethodInfo:
    """One method of an analyzed class."""

    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    requires: str | None = None
    manual: str | None = None
    #: whether @manual_guard was present but with a non-literal or empty
    #: reason (surfaced as LD003)
    manual_invalid: bool = False
    is_classmethod: bool = False
    is_staticmethod: bool = False

    @property
    def returns(self) -> str | None:
        if self.node.returns is None:
            return None
        return clean_annotation(ast.unparse(self.node.returns))


@dataclass
class ClassInfo:
    """One analyzed class: contracts, methods, attribute types."""

    name: str
    module: "Module"
    node: ast.ClassDef
    guards: list[GuardSpec] = field(default_factory=list)
    methods: dict[str, MethodInfo] = field(default_factory=dict)
    #: best-effort attribute types (from annotations in the class body
    #: and from ``self.x = <annotated parameter>`` in ``__init__``)
    attr_types: dict[str, str] = field(default_factory=dict)

    def guard_for_attr(self, attr: str) -> GuardSpec | None:
        for guard in self.guards:
            if attr in guard.attrs:
                return guard
        return None

    def guard_for_lock_name(self, name: str) -> GuardSpec | None:
        """Match a lock/condition attribute name to its guard (aliases)."""
        for guard in self.guards:
            bare = guard.lock[:-2] if guard.lock.endswith("()") else guard.lock
            if "." in bare:
                continue
            if name == bare or name in guard.aliases:
                return guard
        return None


def clean_annotation(text: str | None) -> str | None:
    """Normalize an unparsed annotation: quotes and ``| None`` stripped."""
    if text is None:
        return None
    text = text.strip()
    if (text.startswith("'") and text.endswith("'")) or (
        text.startswith('"') and text.endswith('"')
    ):
        text = text[1:-1].strip()
    if text.endswith("| None"):
        text = text[: -len("| None")].strip()
    if text.startswith("Optional[") and text.endswith("]"):
        text = text[len("Optional["):-1].strip()
    return text or None


def _split_top_level(text: str) -> list[str]:
    """Split on top-level commas (respecting brackets)."""
    parts, depth, start = [], 0, 0
    for i, ch in enumerate(text):
        if ch in "[(":
            depth += 1
        elif ch in "])":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(text[start:i].strip())
            start = i + 1
    parts.append(text[start:].strip())
    return parts


def element_type(typename: str | None) -> str | None:
    """Element type of ``tuple[X, ...]`` / ``list[X]`` / ``Sequence[X]``."""
    if not typename:
        return None
    for prefix in ("tuple[", "list[", "Sequence[", "Iterable[", "frozenset[",
                   "set[", "Iterator["):
        if typename.startswith(prefix) and typename.endswith("]"):
            inner = typename[len(prefix):-1]
            parts = _split_top_level(inner)
            if not parts:
                return None
            return clean_annotation(parts[0])
    return None


def dict_value_type(typename: str | None) -> str | None:
    """Value type of ``dict[K, V]`` / ``Mapping[K, V]``."""
    if not typename:
        return None
    for prefix in ("dict[", "Mapping[", "MutableMapping[", "defaultdict["):
        if typename.startswith(prefix) and typename.endswith("]"):
            parts = _split_top_level(typename[len(prefix):-1])
            if len(parts) == 2:
                return clean_annotation(parts[1])
    return None


def _literal_str(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _literal_str_tuple(node: ast.expr | None) -> tuple[str, ...]:
    if node is None:
        return ()
    if isinstance(node, (ast.Tuple, ast.List)):
        out = []
        for elt in node.elts:
            text = _literal_str(elt)
            if text is not None:
                out.append(text)
        return tuple(out)
    text = _literal_str(node)
    return (text,) if text is not None else ()


def _decorator_call(dec: ast.expr, name: str) -> ast.Call | None:
    """Match ``@name(...)`` / ``@mod.name(...)`` decorators."""
    if not isinstance(dec, ast.Call):
        return None
    func = dec.func
    if isinstance(func, ast.Name) and func.id == name:
        return dec
    if isinstance(func, ast.Attribute) and func.attr == name:
        return dec
    return None


class StaticRegistry:
    """Lock declarations read from the AST (mirrors the runtime registry)."""

    def __init__(self) -> None:
        self.locks: dict[str, dict[str, object]] = {}
        self.alias_of: dict[str, str] = {}
        self.orders: set[tuple[str, str]] = set()
        #: (outer, inner) -> (path, line) provenance for declared edges
        self.order_sources: dict[tuple[str, str], tuple[str, int]] = {}
        #: seqlock node -> {"protects": (...), "writer_lock": str | None}
        self.seqlocks: dict[str, dict[str, object]] = {}
        #: queue node -> {"classes": (...), "shed_counters": (...)}
        self.queue_classes: dict[str, dict[str, object]] = {}

    def ingest_call(self, call: ast.Call, path: str) -> None:
        func = call.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name == "declare_lock" and call.args:
            node = _literal_str(call.args[0])
            if node is None:
                return
            spec: dict[str, object] = {
                "reentrant": False, "family": False, "self_order": None,
            }
            aliases: tuple[str, ...] = ()
            for kw in call.keywords:
                if kw.arg == "aliases":
                    aliases = _literal_str_tuple(kw.value)
                elif kw.arg in ("reentrant", "family") and isinstance(
                    kw.value, ast.Constant
                ):
                    spec[kw.arg] = bool(kw.value.value)
                elif kw.arg == "self_order":
                    spec["self_order"] = _literal_str(kw.value)
            self.locks[node] = spec
            for alias in aliases:
                self.alias_of[alias] = node
        elif name == "declare_seqlock" and call.args:
            node = _literal_str(call.args[0])
            if node is None:
                return
            protects: tuple[str, ...] = ()
            writer_lock: str | None = None
            for kw in call.keywords:
                if kw.arg == "protects":
                    protects = _literal_str_tuple(kw.value)
                elif kw.arg == "writer_lock":
                    writer_lock = _literal_str(kw.value)
            self.seqlocks[node] = {
                "protects": protects, "writer_lock": writer_lock,
            }
        elif name == "declare_queue_classes" and call.args:
            node = _literal_str(call.args[0])
            if node is None:
                return
            classes: tuple[str, ...] = ()
            shed_counters: tuple[str, ...] = ()
            for kw in call.keywords:
                if kw.arg == "classes":
                    classes = _literal_str_tuple(kw.value)
                elif kw.arg == "shed_counters":
                    shed_counters = _literal_str_tuple(kw.value)
            self.queue_classes[node] = {
                "classes": classes, "shed_counters": shed_counters,
            }
        elif name == "declare_order" and len(call.args) >= 2:
            outer = _literal_str(call.args[0])
            inner = _literal_str(call.args[1])
            if outer is not None and inner is not None:
                edge = (self.canonical(outer), self.canonical(inner))
                self.orders.add(edge)
                self.order_sources.setdefault(edge, (path, call.lineno))

    def canonical(self, node: str) -> str:
        return self.alias_of.get(node, node)

    def is_reentrant(self, node: str) -> bool:
        decl = self.locks.get(self.canonical(node))
        return bool(decl and decl.get("reentrant"))

    def allows_self_nesting(self, node: str) -> bool:
        decl = self.locks.get(self.canonical(node))
        if decl is None:
            return False
        return bool(
            decl.get("reentrant")
            or (decl.get("family") and decl.get("self_order"))
        )


class Module:
    """One parsed source file."""

    def __init__(self, path: Path, display_path: str) -> None:
        self.path = path
        self.display_path = display_path
        source = path.read_text(encoding="utf-8")
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.classes: dict[str, ClassInfo] = {}

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


class Project:
    """Every analyzed module plus the cross-module class/contract index."""

    def __init__(self) -> None:
        self.modules: list[Module] = []
        self.classes: dict[str, ClassInfo] = {}
        self.registry = StaticRegistry()

    # -- loading -----------------------------------------------------------

    @classmethod
    def load(cls, paths: Sequence[str | Path]) -> "Project":
        project = cls()
        for path in iter_python_files(paths):
            project.add_file(path)
        project.index()
        return project

    def add_file(self, path: str | Path, display: str | None = None) -> Module:
        path = Path(path)
        module = Module(path, display or _display_path(path))
        self.modules.append(module)
        return module

    def index(self) -> None:
        """Extract classes, contracts and declarations from every module."""
        for module in self.modules:
            for stmt in ast.walk(module.tree):
                if isinstance(stmt, ast.Expr) and isinstance(
                    stmt.value, ast.Call
                ):
                    self.registry.ingest_call(
                        stmt.value, module.display_path
                    )
            for stmt in module.tree.body:
                if isinstance(stmt, ast.ClassDef):
                    info = self._index_class(module, stmt)
                    module.classes[info.name] = info
                    self.classes.setdefault(info.name, info)

    def _index_class(self, module: Module, node: ast.ClassDef) -> ClassInfo:
        info = ClassInfo(name=node.name, module=module, node=node)
        for dec in node.decorator_list:
            call = _decorator_call(dec, "guarded_by")
            if call is None or not call.args:
                continue
            lock = _literal_str(call.args[0])
            if lock is None:
                continue
            attrs = tuple(
                a for a in (_literal_str(arg) for arg in call.args[1:])
                if a is not None
            )
            aliases: tuple[str, ...] = ()
            for kw in call.keywords:
                if kw.arg == "aliases":
                    aliases = _literal_str_tuple(kw.value)
            info.guards.append(GuardSpec(lock, attrs, aliases))
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                ann = clean_annotation(ast.unparse(stmt.annotation))
                if ann:
                    info.attr_types[stmt.target.id] = ann
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = self._index_method(stmt)
        init = info.methods.get("__init__")
        if init is not None:
            self._infer_init_attr_types(info, init.node)
        return info

    def _index_method(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> MethodInfo:
        method = MethodInfo(name=node.name, node=node)
        for dec in node.decorator_list:
            if isinstance(dec, ast.Name) and dec.id == "classmethod":
                method.is_classmethod = True
            if isinstance(dec, ast.Name) and dec.id == "staticmethod":
                method.is_staticmethod = True
            call = _decorator_call(dec, "requires_lock")
            if call is not None and call.args:
                method.requires = _literal_str(call.args[0])
            call = _decorator_call(dec, "manual_guard")
            if call is not None:
                reason = _literal_str(call.args[0]) if call.args else None
                if reason and reason.strip():
                    method.manual = reason
                else:
                    method.manual_invalid = True
        return method

    def _infer_init_attr_types(
        self, info: ClassInfo, init: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        param_types: dict[str, str] = {}
        args = init.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                ann = clean_annotation(ast.unparse(arg.annotation))
                if ann:
                    param_types[arg.arg] = ann
        for stmt in ast.walk(init):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target = stmt.target
                if isinstance(target, ast.Attribute):
                    ann = clean_annotation(ast.unparse(stmt.annotation))
                    if (
                        ann
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        info.attr_types.setdefault(target.attr, ann)
                continue
            if (
                target is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                inferred = _shallow_value_type(value, param_types, self)
                if inferred:
                    info.attr_types.setdefault(target.attr, inferred)

    # -- resolution --------------------------------------------------------

    def class_info(self, name: str | None) -> ClassInfo | None:
        if not name:
            return None
        return self.classes.get(name)

    def method_info(
        self, cls_name: str | None, method: str
    ) -> MethodInfo | None:
        info = self.class_info(cls_name)
        if info is None:
            return None
        return info.methods.get(method)


def _shallow_value_type(
    value: ast.expr | None,
    param_types: dict[str, str],
    project: Project,
) -> str | None:
    """Type of an ``__init__`` RHS: a parameter name or a constructor."""
    if value is None:
        return None
    if isinstance(value, ast.Name):
        return param_types.get(value.id)
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id in project.classes:
            return value.func.id
    return sync_primitive_type(value)


def _display_path(path: Path) -> str:
    try:
        return str(path.relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(entry.rglob("*.py"))
        elif entry.suffix == ".py":
            yield entry


# ---------------------------------------------------------------------------
# per-function type environment
# ---------------------------------------------------------------------------


#: marker origin for locals bound to a freshly constructed (thread-private)
#: object — guarded-attribute writes through them are exempt
FRESH = "<fresh>"


class TypeEnv:
    """Best-effort types for one function's names.

    ``types[name]`` is a class/annotation string (or :data:`FRESH` for
    objects constructed locally — thread-private until published).
    ``origins[name]`` tracks aliases of guarded attributes:
    ``stale = shard.stale`` records ``("_MirrorShard", "stale")`` so a
    later ``stale.discard(...)`` is still checked against the guard.
    """

    def __init__(
        self,
        project: Project,
        cls: ClassInfo | None,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> None:
        self.project = project
        self.cls = cls
        self.func = func
        self.types: dict[str, str] = {}
        self.origins: dict[str, tuple[str, str]] = {}
        self.fresh: set[str] = set()
        self._collect()

    # -- construction ------------------------------------------------------

    def _collect(self) -> None:
        args = self.func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                ann = clean_annotation(ast.unparse(arg.annotation))
                if ann:
                    self.types[arg.arg] = ann
        for stmt in ast.walk(self.func):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    self._record(target.id, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                ann = clean_annotation(ast.unparse(stmt.annotation))
                if ann:
                    self.types.setdefault(stmt.target.id, ann)
            elif isinstance(stmt, ast.For) and isinstance(
                stmt.target, ast.Name
            ):
                elem = self._iter_elem_type(stmt.iter)
                if elem:
                    self.types.setdefault(stmt.target.id, elem)

    def _record(self, name: str, value: ast.expr) -> None:
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name):
                if func.id == "cls" and self.cls is not None:
                    self.types.setdefault(name, self.cls.name)
                    self.fresh.add(name)
                    return
                if func.id in self.project.classes:
                    self.types.setdefault(name, func.id)
                    self.fresh.add(name)
                    return
            sync = sync_primitive_type(value)
            if sync:
                self.types.setdefault(name, sync)
                return
            inferred = self._call_return_type(value)
            if inferred:
                self.types.setdefault(name, inferred)
            return
        if isinstance(value, ast.Attribute):
            owner = self.type_of(value.value)
            info = self.project.class_info(owner)
            if info is not None:
                if value.attr in info.attr_types:
                    self.types.setdefault(name, info.attr_types[value.attr])
                if info.guard_for_attr(value.attr) is not None:
                    self.origins.setdefault(name, (info.name, value.attr))
            return
        if isinstance(value, ast.Name):
            if value.id in self.types:
                self.types.setdefault(name, self.types[value.id])
            if value.id in self.origins:
                self.origins.setdefault(name, self.origins[value.id])
            if value.id in self.fresh:
                self.fresh.add(name)
            return
        if isinstance(value, ast.Subscript):
            elem = element_type(self.type_of(value.value))
            if elem:
                self.types.setdefault(name, elem)

    def _iter_elem_type(self, it: ast.expr) -> str | None:
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Attribute):
            recv_type = self.type_of(it.func.value)
            if it.func.attr == "values":
                return dict_value_type(recv_type)
            ret = self._call_return_type(it)
            return element_type(ret)
        return element_type(self.type_of(it))

    def _call_return_type(self, call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Attribute):
            recv = func.value
            recv_type = (
                recv.id
                if isinstance(recv, ast.Name) and recv.id in self.project.classes
                else self.type_of(recv)
            )
            method = self.project.method_info(recv_type, func.attr)
            if method is not None:
                return method.returns
        return None

    # -- queries -----------------------------------------------------------

    def type_of(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.cls is not None:
                return self.cls.name
            if expr.id == "cls" and self.cls is not None:
                return self.cls.name
            return self.types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            owner = self.type_of(expr.value)
            info = self.project.class_info(owner)
            if info is not None:
                return info.attr_types.get(expr.attr)
            return None
        if isinstance(expr, ast.Subscript):
            return element_type(self.type_of(expr.value))
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if func.id == "cls" and self.cls is not None:
                    return self.cls.name
                if func.id in self.project.classes:
                    return func.id
            return sync_primitive_type(expr) or self._call_return_type(expr)
        return None

    def is_fresh(self, expr: ast.expr) -> bool:
        """Whether ``expr`` is a locally constructed, unpublished object."""
        return isinstance(expr, ast.Name) and expr.id in self.fresh

    def origin_of(self, expr: ast.expr) -> tuple[str, str] | None:
        """(owner class, guarded attr) when ``expr`` aliases guarded state."""
        if isinstance(expr, ast.Name):
            return self.origins.get(expr.id)
        return None


# ---------------------------------------------------------------------------
# lock-node resolution + scope tracking
# ---------------------------------------------------------------------------


def looks_like_lock(name: str) -> bool:
    lowered = name.lower()
    return any(piece in lowered for piece in _LOCKISH)


def lock_node_of(
    expr: ast.expr, env: TypeEnv, registry: StaticRegistry
) -> str | None:
    """The canonical lock node an expression acquires, or ``None``.

    Recognizes ``recv.attr`` (lock attributes and their declared
    condition aliases) and ``recv.meth(...)`` (lock factories like
    ``_lock_for``).  Unresolvable receivers fall back to ``"?.<name>"``
    nodes only when the name itself looks like a lock.
    """
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        recv, name, suffix = expr.func.value, expr.func.attr, "()"
    elif isinstance(expr, ast.Attribute):
        recv, name, suffix = expr.value, expr.attr, ""
    else:
        return None
    owner = env.type_of(recv)
    info = env.project.class_info(owner)
    if info is not None:
        guard = info.guard_for_lock_name(name)
        if guard is not None:
            return registry.canonical(guard.node_for(info.name))
        node = f"{info.name}.{name}{suffix}"
        if (
            looks_like_lock(name)
            or registry.canonical(node) in registry.locks
            or info.attr_types.get(name) in _SYNC_LOCK_TYPES
        ):
            return registry.canonical(node)
        return None
    if looks_like_lock(name):
        if owner:
            return registry.canonical(f"{owner}.{name}{suffix}")
        return registry.canonical(f"?.{name}{suffix}")
    return None


def guard_node(spec: str, cls_name: str, registry: StaticRegistry) -> str:
    """Canonical node for a guard/requires spec declared on ``cls_name``."""
    if "." in spec:
        return registry.canonical(spec)
    return registry.canonical(f"{cls_name}.{spec}")


class LockScopeWalker(ast.NodeVisitor):
    """Walks one function body tracking the held-lock node stack.

    Subclasses override :meth:`on_acquire`, :meth:`on_statement` and/or
    :meth:`on_call`.  ``self.held`` is the stack of canonical lock nodes
    currently held (``"*"`` means "treat everything as guarded" — the
    ``manual_guard`` escape).  Nested function definitions get a fresh,
    empty scope: a closure may outlive the lock scope it was defined in.
    """

    def __init__(
        self,
        project: Project,
        module: Module,
        cls: ClassInfo | None,
        method: MethodInfo,
    ) -> None:
        self.project = project
        self.module = module
        self.cls = cls
        self.method = method
        self.env = TypeEnv(project, cls, method.node)
        self.registry = project.registry
        self.held: list[str] = []
        if method.manual:
            self.held.append("*")
        elif method.requires and cls is not None:
            self.held.append(guard_node(method.requires, cls.name, self.registry))
        elif method.requires:
            self.held.append(self.registry.canonical(method.requires))

    # -- overridables ------------------------------------------------------

    def on_acquire(self, node: str, stmt: ast.With, item: ast.expr) -> None:
        """Called when a ``with`` item acquires ``node`` (before push)."""

    def on_statement(self, stmt: ast.stmt) -> None:
        """Called for every statement with ``self.held`` current."""

    def on_call(self, call: ast.Call) -> None:
        """Called for every Call expression with ``self.held`` current."""

    # -- driving -----------------------------------------------------------

    def walk(self) -> None:
        for stmt in self.method.node.body:
            self.visit(stmt)

    def holds(self, node: str) -> bool:
        if "*" in self.held:
            return True
        want = self.registry.canonical(node)
        return any(self.registry.canonical(h) == want for h in self.held)

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.stmt):
            self.on_statement(node)
        if isinstance(node, ast.Call):
            self.on_call(node)
        super().generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        self.on_statement(node)
        acquired: list[str] = []
        for item in node.items:
            # The item expression evaluates while the *outer* locks are
            # held (a lock-factory call can itself take a registry lock),
            # so visit it before pushing.
            for call in ast.walk(item.context_expr):
                if isinstance(call, ast.Call):
                    self.on_call(call)
            lock = lock_node_of(item.context_expr, self.env, self.registry)
            if lock is not None:
                self.on_acquire(lock, node, item.context_expr)
                self.held.append(lock)
                acquired.append(lock)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def _visit_nested(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        # A nested def runs later, possibly without the enclosing locks:
        # analyze its body with an empty held stack.
        saved, self.held = self.held, []
        for stmt in node.body:
            self.visit(stmt)
        self.held = saved


def iter_methods(
    project: Project,
) -> Iterator[tuple[Module, ClassInfo, MethodInfo]]:
    """Every (module, class, method) triple across the project."""
    for module in project.modules:
        for info in module.classes.values():
            for method in info.methods.values():
                yield module, info, method


def iter_functions(
    project: Project,
) -> Iterator[tuple[Module, ClassInfo | None, MethodInfo]]:
    """Methods plus module-level functions (wrapped in MethodInfo)."""
    for module, info, method in iter_methods(project):
        yield module, info, method
    for module in project.modules:
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield module, None, MethodInfo(name=stmt.name, node=stmt)


def qualname(cls: ClassInfo | None, method: MethodInfo) -> str:
    if cls is None:
        return method.name
    return f"{cls.name}.{method.name}"
