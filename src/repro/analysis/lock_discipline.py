"""Rule LD — lock discipline for ``guarded_by`` state.

* **LD001** — a write to a guarded attribute (plain assignment, item
  assignment, augmented assignment, ``del``, or an in-place mutator call
  like ``.append``/``.setdefault``) reached without the declared lock
  held.  Aliases count: ``stale = shard.stale; stale.discard(x)`` is
  still a write to ``_MirrorShard.stale``.
* **LD002** — a call to a ``@requires_lock`` method without its lock
  held at the call site.
* **LD003** — a ``@manual_guard`` escape hatch with a missing or empty
  justification.

Constructor writes are exempt (``self.x = ...`` in the owning class's
``__init__``: no concurrent reader can hold a reference yet), as are
writes through objects constructed locally in the same function —
loaders build whole stores before publishing them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    MUTATOR_METHODS,
    ClassInfo,
    Finding,
    LockScopeWalker,
    MethodInfo,
    Module,
    Project,
    TypeEnv,
    guard_node,
    iter_functions,
    qualname,
)

_CTOR_NAMES = frozenset({"__init__", "__new__", "__post_init__", "__set_name__"})


def root_name(expr: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript/call chain, if any."""
    while True:
        if isinstance(expr, (ast.Attribute, ast.Starred)):
            expr = expr.value
        elif isinstance(expr, ast.Subscript):
            expr = expr.value
        elif isinstance(expr, ast.Call):
            expr = expr.func
        elif isinstance(expr, ast.Name):
            return expr.id
        else:
            return None


def guarded_obj(
    expr: ast.expr, env: TypeEnv
) -> tuple[ClassInfo, str] | None:
    """Resolve *the object being mutated* to the guarded state it lives in.

    Walks down attribute/subscript chains (``self._cols[k]``,
    ``self._store._objective``, local aliases recorded by
    :class:`TypeEnv`).  Resolution stops — returning ``None`` — when the
    mutated object is itself an instance of a project class: mutating
    ``self._topics[p]`` through ``PartitionQueue.put`` is that class's
    contract, not a write to the ``_topics`` container.
    """
    project = env.project
    if isinstance(expr, ast.Attribute):
        owner = env.type_of(expr.value)
        info = project.class_info(owner)
        if info is not None and info.guard_for_attr(expr.attr) is not None:
            return info, expr.attr
        if project.class_info(env.type_of(expr)) is not None:
            return None
        if info is not None:
            return None
        return guarded_obj(expr.value, env)
    if isinstance(expr, ast.Subscript):
        if project.class_info(env.type_of(expr)) is not None:
            return None
        return guarded_obj(expr.value, env)
    if isinstance(expr, ast.Name):
        origin = env.origin_of(expr)
        if origin is not None:
            info = project.class_info(origin[0])
            if info is not None:
                return info, origin[1]
    return None


class _DisciplineWalker(LockScopeWalker):
    def __init__(
        self,
        project: Project,
        module: Module,
        cls: ClassInfo | None,
        method: MethodInfo,
        findings: list[Finding],
    ) -> None:
        super().__init__(project, module, cls, method)
        self.findings = findings
        self._reported: set[tuple[str, int]] = set()

    # -- helpers -----------------------------------------------------------

    def _exempt(self, expr: ast.expr, owner: ClassInfo) -> bool:
        root = root_name(expr)
        if root is None:
            return False
        if root in self.env.fresh:
            return True
        return (
            root == "self"
            and self.cls is not None
            and self.cls.name == owner.name
            and self.method.name in _CTOR_NAMES
        )

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", self.method.node.lineno)
        key = (rule, line)
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(
            Finding(
                rule=rule,
                path=self.module.display_path,
                line=line,
                message=message,
                symbol=qualname(self.cls, self.method),
                snippet=self.module.snippet(line),
            )
        )

    def _resolve_target(
        self, target: ast.expr
    ) -> tuple[ClassInfo, str] | None:
        """Guarded state written by an assignment/del target.

        A ``Subscript`` target mutates its container; an ``Attribute``
        target is either a direct guarded-attribute write or a write
        into an object held in guarded state.  A bare ``Name`` target
        only rebinds a local — never a mutation.
        """
        if isinstance(target, ast.Subscript):
            return guarded_obj(target.value, self.env)
        if isinstance(target, ast.Attribute):
            owner = self.env.type_of(target.value)
            info = self.project.class_info(owner)
            if (
                info is not None
                and info.guard_for_attr(target.attr) is not None
            ):
                return info, target.attr
            return guarded_obj(target.value, self.env)
        return None

    def _check_write(self, target: ast.expr, stmt: ast.stmt) -> None:
        ref = self._resolve_target(target)
        if ref is None:
            return
        owner, attr = ref
        if self._exempt(target, owner):
            return
        guard = owner.guard_for_attr(attr)
        if guard is None:
            return
        node = self.registry.canonical(guard.node_for(owner.name))
        if self.holds(node):
            return
        self._report(
            "LD001",
            stmt,
            f"write to {owner.name}.{attr} guarded by {node} "
            f"without holding it",
        )

    # -- hooks -------------------------------------------------------------

    def on_statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for leaf in _write_leaves(target):
                    self._check_write(leaf, stmt)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(stmt, ast.AnnAssign) and stmt.value is None:
                return
            self._check_write(stmt.target, stmt)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._check_write(target, stmt)

    def on_call(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in MUTATOR_METHODS:
            ref = guarded_obj(func.value, self.env)
            if ref is not None:
                owner, attr = ref
                if not self._exempt(func.value, owner):
                    guard = owner.guard_for_attr(attr)
                    if guard is not None:
                        node = self.registry.canonical(
                            guard.node_for(owner.name)
                        )
                        if not self.holds(node):
                            self._report(
                                "LD001",
                                call,
                                f".{func.attr}() on {owner.name}.{attr} "
                                f"guarded by {node} without holding it",
                            )
        self._check_requires(call, func)

    def _check_requires(self, call: ast.Call, func: ast.Attribute) -> None:
        recv = func.value
        owner = self.env.type_of(recv)
        method = self.project.method_info(owner, func.attr)
        if method is None or method.requires is None:
            return
        if self.env.is_fresh(recv):
            return
        node = guard_node(method.requires, owner or "", self.registry)
        if self.holds(node):
            return
        self._report(
            "LD002",
            call,
            f"call to {owner}.{func.attr}() requires {node} "
            f"which is not held here",
        )


def _write_leaves(target: ast.expr) -> Iterator[ast.expr]:
    """Individual written-to expressions inside a (possibly tuple) target."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _write_leaves(elt)
    elif isinstance(target, ast.Starred):
        yield from _write_leaves(target.value)
    else:
        yield target


def check_lock_discipline(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module, cls, method in iter_functions(project):
        if method.manual_invalid:
            findings.append(
                Finding(
                    rule="LD003",
                    path=module.display_path,
                    line=method.node.lineno,
                    message=(
                        "@manual_guard requires a non-empty justification "
                        "string"
                    ),
                    symbol=qualname(cls, method),
                    snippet=module.snippet(method.node.lineno),
                )
            )
        walker = _DisciplineWalker(project, module, cls, method, findings)
        walker.walk()
    return findings
