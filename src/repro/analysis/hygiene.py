"""Rule HY — serving-path hygiene.

* **HY001** — direct mutation of a sharded store's ``shards`` plane
  (``store.shards = ...``, ``store.shards[i] = ...``, mutator calls on
  the tuple) outside the shard router itself and the shard workers.
  Everything else must route through the partitioning API or rebuild
  via the documented refresh protocol.
* **HY002** — bare ``except:`` — swallows ``KeyboardInterrupt`` and
  ``SystemExit`` and hides real faults from the dead-letter accounting.
* **HY003** — mutable default argument values; shared across calls,
  a classic aliasing bug.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    MUTATOR_METHODS,
    Finding,
    Module,
    Project,
)

#: modules allowed to (re)build the shard plane
_SHARD_OWNERS = (
    "core/sharded_store.py",
    "streaming/consumer.py",
    # the multi-process plane swaps crashed shards for checkpoint-rebuilt
    # replacements — that IS the documented refresh protocol
    "core/shm_store.py",
    "streaming/procplane.py",
)

_MUTABLE_FACTORY_NAMES = frozenset({"list", "dict", "set", "bytearray"})


def _shard_owner(module: Module) -> bool:
    path = module.display_path.replace("\\", "/")
    return any(path.endswith(suffix) for suffix in _SHARD_OWNERS)


def _is_shards_access(expr: ast.expr) -> bool:
    """``<anything>.shards`` or ``<anything>.shards[...]``."""
    if isinstance(expr, ast.Subscript):
        expr = expr.value
    return isinstance(expr, ast.Attribute) and expr.attr == "shards"


def _mutable_default(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in _MUTABLE_FACTORY_NAMES
    return False


class _HygieneWalker(ast.NodeVisitor):
    def __init__(self, module: Module, findings: list[Finding]) -> None:
        self.module = module
        self.findings = findings
        self.shard_owner = _shard_owner(module)
        self.symbols: list[str] = []

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                rule=rule,
                path=self.module.display_path,
                line=line,
                message=message,
                symbol=".".join(self.symbols),
                snippet=self.module.snippet(line),
            )
        )

    # -- scoping (for finding symbols only) --------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.symbols.append(node.name)
        self.generic_visit(node)
        self.symbols.pop()

    def _visit_func(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is not None and _mutable_default(default):
                self._report(
                    "HY003",
                    default,
                    f"mutable default argument in {node.name}(); defaults "
                    f"are evaluated once and shared across calls",
                )
        self.symbols.append(node.name)
        self.generic_visit(node)
        self.symbols.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node)

    # -- rules -------------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                "HY002",
                node,
                "bare except: catches KeyboardInterrupt/SystemExit; "
                "catch Exception (or narrower) instead",
            )
        self.generic_visit(node)

    def _check_shards_write(self, target: ast.expr, node: ast.AST) -> None:
        if self.shard_owner:
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_shards_write(elt, node)
            return
        if _is_shards_access(target):
            self._report(
                "HY001",
                node,
                "direct mutation of the shard plane outside "
                "sharded_store/ShardWorker; route through the "
                "partitioning API",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_shards_write(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_shards_write(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_shards_write(target, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            not self.shard_owner
            and isinstance(func, ast.Attribute)
            and func.attr in MUTATOR_METHODS
            and _is_shards_access(func.value)
        ):
            self._report(
                "HY001",
                node,
                f".{func.attr}() mutates the shard plane outside "
                f"sharded_store/ShardWorker",
            )
        self.generic_visit(node)


def check_hygiene(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for module in project.modules:
        walker = _HygieneWalker(module, findings)
        walker.visit(module.tree)
    return findings
